//! Compiler explorer: print the IL of a program at each pipeline stage.
//!
//! Pass a path to a MiniC file, or run with no arguments for a built-in
//! demo. Shows the tagged IL after lowering, after analysis (watch the
//! `{*}` tag sets shrink), after promotion (watch loads/stores become
//! copies and lifts appear in landing pads), and after the full pipeline.
//!
//! Run with: `cargo run --example compiler_explorer [file.c]`

use analysis::AnalysisLevel;

const DEMO: &str = r#"
int hits;
int misses;
void record() { misses = misses + 1; }
int main() {
    int i;
    for (i = 0; i < 1000; i++) {
        hits = hits + 1;
        if (i % 100 == 0) record();
    }
    print_int(hits);
    print_int(misses);
    return 0;
}
"#;

fn banner(title: &str) {
    println!("\n==================== {title} ====================");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO.to_string(),
    };

    banner("1. after lowering (front end output)");
    let module = minic::compile(&source)?;
    println!("{module}");

    banner("2. after MOD/REF analysis (tag sets shrunk)");
    let mut analyzed = module.clone();
    for fi in 0..analyzed.funcs.len() {
        cfg::normalize_loops(&mut analyzed.funcs[fi]);
    }
    analysis::analyze(&mut analyzed, AnalysisLevel::ModRef);
    opt::strengthen(&mut analyzed);
    println!("{analyzed}");

    banner("3. after register promotion (lifts + copies)");
    let mut promoted = analyzed.clone();
    let report = promote::promote_module(&mut promoted, &promote::PromotionOptions::default());
    println!("{promoted}");
    println!(
        "; promoted {} tag(s), rewrote {} reference(s), inserted {} lift op(s)",
        report.scalar.promoted_tags, report.scalar.rewritten_refs, report.scalar.lifts
    );

    banner("4. after the full pipeline (optimized + allocated)");
    let final_module = driver::Session::default().compile(&source)?.module;
    println!("{final_module}");

    banner("execution");
    let out = vm::Vm::run_main(&final_module, vm::VmOptions::default())?;
    println!("output: {:?}", out.output);
    println!("counts: {}", out.counts);
    Ok(())
}
