//! Quickstart: compile a MiniC program with and without register
//! promotion and compare the dynamic memory traffic — the paper's core
//! experiment in thirty lines.
//!
//! Run with: `cargo run --example quickstart`

use analysis::AnalysisLevel;
use driver::prelude::*;

const PROGRAM: &str = r#"
int total;                 // a global: it lives in memory
void audit() { }           // a call that provably touches nothing

int main() {
    int i;
    for (i = 0; i < 100000; i++) {
        total = total + i; // load + store per iteration... until promoted
        audit();
    }
    print_int(total);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("source:\n{PROGRAM}");
    for promote in [false, true] {
        let config = PipelineConfig::paper_variant(AnalysisLevel::ModRef, promote);
        let c = Session::from_config(config).compile_and_run(PROGRAM)?;
        let (outcome, report) = (c.outcome.expect("outcome populated"), c.report);
        println!(
            "promotion {:<3}  output={:?}  total={:>7}  loads={:>7}  stores={:>7}",
            if promote { "on" } else { "off" },
            outcome.output,
            outcome.counts.total,
            outcome.counts.loads,
            outcome.counts.stores,
        );
        if promote {
            println!(
                "              ({} tag promoted, {} references rewritten to copies)",
                report.promotion.scalar.promoted_tags, report.promotion.scalar.rewritten_refs
            );
        }
    }
    println!("\nThe 100000 loads and 100000 stores of `total` collapsed to one of each.");
    Ok(())
}
