/* The paper's Figure 2 shape as a MiniC program — the demo input for
 * optimization remarks:
 *
 *   cargo run -p promo-driver --bin promoc -- run examples/figure2.c --remarks
 *
 * Expected remarks (ModRef analysis, the default):
 *   - C is promoted across the whole outer loop (PROMOTABLE(outer) = {C}).
 *   - A is blocked in the outer loop with reason call-mod-ref
 *     (touch_a() mods it there), but promoted in the middle loop.
 *   - B is blocked in the middle loop with reason call-mod-ref
 *     (read_b() refs it there).
 */

int A;
int B;
int C;

void touch_a(void) { A = A + 1; }

int read_b(void) { return B; }

int main(void) {
    int i;
    int j;
    int k;
    A = 3;
    B = 5;
    for (i = 0; i < 10; i++) {
        C = C + A;
        touch_a();
        for (j = 0; j < 10; j++) {
            B = read_b() - B + 5;
            for (k = 0; k < 10; k++) {
                C = C + A;
            }
        }
    }
    print_int(A);
    print_int(B);
    print_int(C);
    return 0;
}
