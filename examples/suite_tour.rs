//! A guided tour of the 14-program benchmark suite (the paper's Figure 4):
//! what each program is, what the paper measured for it, and a live
//! measurement of one program of your choice.
//!
//! Run with: `cargo run --release --example suite_tour [program]`

use driver::{measure_program, Metric};

fn main() {
    println!("The paper's benchmark suite (Figure 4), as modeled here:\n");
    println!("{:<10} {:<45} paper expectation", "name", "description");
    for b in benchsuite::SUITE {
        println!(
            "{:<10} {:<45} {}",
            b.name, b.description, b.paper_expectation
        );
    }
    let pick = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "clean".to_string());
    let Some(b) = benchsuite::find(&pick) else {
        eprintln!("unknown benchmark {pick}");
        std::process::exit(1);
    };
    println!(
        "\nLive measurement of `{}` (this runs the 2x2 experiment):\n",
        b.name
    );
    let rows = measure_program(b.name, b.source);
    for metric in [Metric::TotalOps, Metric::Stores, Metric::Loads] {
        println!("{}", driver::render_figure(metric, &rows));
    }
    println!("paper expectation: {}", b.paper_expectation);
}
