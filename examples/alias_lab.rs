//! Alias laboratory: how analysis precision changes what promotion may do.
//!
//! One program, four analyses. The program manipulates a global through a
//! single-target pointer; each precision level bounds the pointer
//! differently, and the promotion result follows. This is the paper's §4
//! and its "increased precision did not significantly change the results"
//! finding — except in exactly the aliasing patterns where it does.
//!
//! Run with: `cargo run --example alias_lab`

use analysis::AnalysisLevel;
use driver::prelude::*;

const PROGRAM: &str = r#"
int hot;       // updated every iteration, also reachable through p
int cold;      // address-taken decoy: MOD/REF cannot separate p from it
int main() {
    int *p = &hot;
    int *decoy = &cold;
    *decoy = 1;
    int i;
    for (i = 0; i < 10000; i++) {
        hot = hot + 1;   // explicit reference
        *p = *p + 1;     // pointer reference to the same cell
    }
    print_int(hot);
    print_int(cold);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("source:\n{PROGRAM}");
    println!(
        "{:<12} {:>9} {:>9} {:>9}   note",
        "analysis", "loads", "stores", "promoted"
    );
    for level in AnalysisLevel::ALL {
        let config = PipelineConfig::paper_variant(level, true);
        let c = Session::from_config(config).compile_and_run(PROGRAM)?;
        let (outcome, report) = (c.outcome.expect("outcome populated"), c.report);
        let note = match level {
            AnalysisLevel::AddressTaken => "p may touch anything addressed: hot stays ambiguous",
            AnalysisLevel::ModRef => "address-taken set = {hot, cold}: still ambiguous",
            AnalysisLevel::Steensgaard => "unification may merge hot and cold through the decoy",
            AnalysisLevel::PointsTo => {
                "p = {hot} exactly: strengthened to sload/sstore and promoted"
            }
            AnalysisLevel::PointsToSsa => {
                "the paper's SSA-name formulation: same answer as pointer"
            }
        };
        println!(
            "{:<12} {:>9} {:>9} {:>9}   {note}",
            level.label(),
            outcome.counts.loads,
            outcome.counts.stores,
            report.promotion.scalar.promoted_tags,
        );
    }
    Ok(())
}
