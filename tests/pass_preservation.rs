//! Every optimization pass, applied alone, must preserve program
//! behaviour — checked on real suite programs and on targeted
//! mini-programs with sharp edges (aliasing, recursion, zero-trip loops).

use vm::{Vm, VmOptions};

type Pass = (&'static str, fn(&mut ir::Module));

fn passes() -> Vec<Pass> {
    vec![
        ("normalize", |m| {
            for f in &mut m.funcs {
                cfg::normalize_loops(f);
            }
        }),
        ("analyze-modref", |m| {
            analysis::analyze(m, analysis::AnalysisLevel::ModRef);
        }),
        ("analyze-pointer", |m| {
            analysis::analyze(m, analysis::AnalysisLevel::PointsTo);
        }),
        ("analyze-pointer-ssa", |m| {
            analysis::analyze(m, analysis::AnalysisLevel::PointsToSsa);
        }),
        ("strengthen", |m| {
            analysis::analyze(m, analysis::AnalysisLevel::PointsTo);
            opt::strengthen(m);
        }),
        ("promote", |m| {
            analysis::analyze(m, analysis::AnalysisLevel::ModRef);
            promote::promote_module(m, &promote::PromotionOptions::default());
        }),
        ("promote-pointer", |m| {
            analysis::analyze(m, analysis::AnalysisLevel::PointsTo);
            opt::licm(m);
            promote::promote_module(
                m,
                &promote::PromotionOptions {
                    scalar: true,
                    pointer_based: true,
                    ..Default::default()
                },
            );
        }),
        ("lvn", |m| {
            opt::lvn(m);
        }),
        ("loadelim", |m| {
            analysis::analyze(m, analysis::AnalysisLevel::ModRef);
            opt::loadelim(m);
        }),
        ("constprop", |m| {
            opt::constprop(m);
        }),
        ("licm", |m| {
            analysis::analyze(m, analysis::AnalysisLevel::ModRef);
            opt::licm(m);
        }),
        ("dce", |m| {
            opt::dce(m);
        }),
        ("clean", |m| {
            opt::clean(m);
        }),
        ("regalloc", |m| {
            regalloc::allocate(m, &regalloc::AllocOptions::default());
        }),
        ("regalloc-tight", |m| {
            regalloc::allocate(
                m,
                &regalloc::AllocOptions {
                    num_regs: 6,
                    ..Default::default()
                },
            );
        }),
        ("ssa-roundtrip", |m| {
            for f in &mut m.funcs {
                ssa::construct(f);
                ssa::verify_ssa(f).expect("valid SSA");
                ssa::destruct(f);
            }
        }),
    ]
}

fn check(name: &str, src: &str) {
    let base = minic::compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let expected = Vm::run_main(&base, VmOptions::default())
        .unwrap_or_else(|e| panic!("{name} baseline: {e}"))
        .output;
    for (pass, f) in passes() {
        let mut m = base.clone();
        f(&mut m);
        ir::validate(&m).unwrap_or_else(|e| panic!("{name} after {pass}: invalid IL: {e}"));
        let out = Vm::run_main(&m, VmOptions::default())
            .unwrap_or_else(|e| panic!("{name} after {pass}: {e}"));
        assert_eq!(
            expected, out.output,
            "{name}: pass {pass} changed behaviour"
        );
    }
}

#[test]
fn fast_suite_programs_survive_every_pass() {
    for name in ["allroots", "fft"] {
        let b = benchsuite::find(name).expect("suite");
        check(b.name, b.source);
    }
}

#[test]
fn aliasing_corner_cases_survive_every_pass() {
    check(
        "alias-corners",
        r#"
int a;
int b;
int *pp;
int pick = 3;
int main() {
    pp = &a;
    if (pick > 2) pp = &b;
    int i;
    for (i = 0; i < 30; i++) {
        *pp = *pp + i;
        a = a + 1;
        b = b * 1;
    }
    print_int(a);
    print_int(b);
    return 0;
}
"#,
    );
}

#[test]
fn recursion_survives_every_pass() {
    check(
        "recursion",
        r#"
int count;
int ack(int m, int n) {
    count = count + 1;
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int main() {
    print_int(ack(2, 3));
    print_int(count);
    return 0;
}
"#,
    );
}

#[test]
fn heap_lists_survive_every_pass() {
    check(
        "heap-list",
        r#"
int main() {
    int *head = 0;
    int i;
    for (i = 1; i <= 8; i++) {
        int *node = malloc(2);
        node[0] = i * i;
        node[1] = head;
        head = node;
    }
    int s = 0;
    while (head != 0) {
        s += head[0];
        head = head[1];
    }
    print_int(s);
    return 0;
}
"#,
    );
}

#[test]
fn zero_trip_and_once_loops_survive_every_pass() {
    check(
        "trip-counts",
        r#"
int g = 11;
int n0;
int n1 = 1;
int main() {
    int i;
    for (i = 0; i < n0; i++) { g = g * 7; }
    for (i = 0; i < n1; i++) { g = g + 1; }
    print_int(g);
    return 0;
}
"#,
    );
}

#[test]
fn doubles_survive_every_pass() {
    check(
        "floating",
        r#"
double acc;
int main() {
    int i;
    for (i = 1; i <= 20; i++) {
        acc = acc + 1.0 / i;
    }
    print_float(acc);
    print_float(sqrt(acc));
    return 0;
}
"#,
    );
}
