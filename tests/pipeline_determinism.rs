//! The parallel pipeline is bit-deterministic: any worker count produces
//! byte-identical printed IL and identical report counters.
//!
//! This is the load-bearing guarantee behind the per-function fan-out —
//! per-function passes share only the read-only tag table, and regalloc's
//! spill tags are committed in function-index order — so it is checked
//! across the whole benchmark suite at every figure variant.

use driver::{PipelineConfig, PipelineReport};

fn counters(r: &PipelineReport) -> (usize, String, usize, usize, usize, usize, usize, usize) {
    (
        r.strengthened,
        format!("{:?}{:?}", r.promotion, r.alloc),
        r.lvn_rewrites,
        r.loads_eliminated,
        r.constants_folded,
        r.licm_moved,
        r.dce_removed,
        r.cleaned,
    )
}

#[test]
fn parallel_pipeline_matches_sequential_everywhere() {
    for b in benchsuite::SUITE {
        let base = minic::compile(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        for (label, config) in PipelineConfig::figure_variants() {
            let sequential = PipelineConfig {
                threads: Some(1),
                ..config.clone()
            };
            let mut m_seq = base.clone();
            let r_seq = driver::run_pipeline(&mut m_seq, &sequential);
            for workers in [2usize, 8] {
                let parallel = PipelineConfig {
                    threads: Some(workers),
                    ..config.clone()
                };
                let mut m_par = base.clone();
                let r_par = driver::run_pipeline(&mut m_par, &parallel);
                assert_eq!(
                    m_seq.to_string(),
                    m_par.to_string(),
                    "{}/{label}: printed IL diverged between 1 and {workers} threads",
                    b.name
                );
                assert_eq!(
                    counters(&r_seq),
                    counters(&r_par),
                    "{}/{label}: report counters diverged at {workers} threads",
                    b.name
                );
            }
        }
    }
}

/// The remark stream is part of the determinism contract: with tracing
/// on, every worker count must produce a byte-identical JSONL trace (and
/// the same IL as the untraced pipeline). Events are buffered
/// per-function in the workers and assembled in function-index order, so
/// scheduling must not be observable.
#[test]
fn remark_streams_are_identical_across_worker_counts() {
    let mut suite_records = 0usize;
    for b in benchsuite::SUITE {
        let base = minic::compile(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let mut reference: Option<String> = None;
        for workers in [1usize, 2, 8] {
            let pool = driver::WorkerPool::new(workers);
            let config = PipelineConfig {
                threads: Some(workers),
                trace: true,
                ..Default::default()
            };
            let mut m = base.clone();
            let (_, log) = driver::run_pipeline_traced(&mut m, &config, &pool);
            suite_records += log.len();
            let jsonl = log.to_jsonl();
            match &reference {
                None => reference = Some(jsonl),
                Some(r) => assert_eq!(
                    r, &jsonl,
                    "{}: remark stream diverged between 1 and {workers} workers",
                    b.name
                ),
            }
        }
    }
    assert!(suite_records > 0, "the suite must emit remarks");
}

#[test]
fn env_override_is_equivalent_to_explicit() {
    // PROMO_THREADS only fills in when the config leaves threads unset.
    assert_eq!(driver::resolve_threads(Some(1)), 1);
    assert_eq!(driver::resolve_threads(Some(6)), 6);
    let b = &benchsuite::SUITE[0];
    let base = minic::compile(b.source).expect("compile");
    let mut with_auto = base.clone();
    driver::run_pipeline(
        &mut with_auto,
        &PipelineConfig {
            threads: None,
            ..Default::default()
        },
    );
    let mut with_one = base.clone();
    driver::run_pipeline(
        &mut with_one,
        &PipelineConfig {
            threads: Some(1),
            ..Default::default()
        },
    );
    assert_eq!(with_auto.to_string(), with_one.to_string());
}
