//! Validates the register-granularity substitution for the paper's
//! SSA-based points-to analysis (`DESIGN.md` §8): on every suite program,
//! the default `PointsTo` level and the paper-faithful `PointsToSsa`
//! level must enable exactly the same promotions and produce identical
//! program output.

use analysis::AnalysisLevel;
use driver::prelude::*;

fn promoted_tags(src: &str, level: AnalysisLevel) -> (usize, Vec<String>) {
    let config = PipelineConfig::paper_variant(level, true);
    let c = Session::from_config(config)
        .compile_and_run(src)
        .expect("pipeline");
    let out = c.outcome.expect("outcome populated");
    (c.report.promotion.scalar.promoted_tags, out.output)
}

#[test]
fn ssa_and_register_granularity_promote_identically_on_fast_programs() {
    for name in ["allroots", "fft", "bc", "dhrystone", "gzip_dec"] {
        let b = benchsuite::find(name).expect("suite program");
        let (reg_tags, reg_out) = promoted_tags(b.source, AnalysisLevel::PointsTo);
        let (ssa_tags, ssa_out) = promoted_tags(b.source, AnalysisLevel::PointsToSsa);
        assert_eq!(reg_out, ssa_out, "{name}: outputs agree");
        assert_eq!(
            reg_tags, ssa_tags,
            "{name}: both analyses enable the same promotions"
        );
    }
}

#[test]
fn ssa_granularity_is_at_least_as_precise_on_reassigned_pointers() {
    // p points at x, is dereferenced, then repointed at y and dereferenced
    // again. Register granularity merges both targets into p's one set;
    // SSA granularity distinguishes p1 = &x from p2 = &y. Both must be
    // sound; SSA must leave each store a singleton.
    let src = r#"
int x;
int y;
int main() {
    int *p = &x;
    *p = 1;
    p = &y;
    *p = 2;
    print_int(x);
    print_int(y);
    return 0;
}
"#;
    // Soundness + equivalence of observable behaviour.
    let (_, reg_out) = promoted_tags(src, AnalysisLevel::PointsTo);
    let (_, ssa_out) = promoted_tags(src, AnalysisLevel::PointsToSsa);
    assert_eq!(reg_out, ssa_out);
    assert_eq!(reg_out, vec!["1", "2"]);

    // Inspect precision directly: after SSA-level analysis, both stores
    // carry singleton tag sets.
    let mut m = minic::compile(src).unwrap();
    analysis::analyze(&mut m, AnalysisLevel::PointsToSsa);
    let singles = m
        .funcs
        .iter()
        .flat_map(|f| f.blocks.iter())
        .flat_map(|b| b.instrs.iter())
        .filter(|i| matches!(i, ir::Instr::Store { tags, .. } if tags.as_singleton().is_some()))
        .count();
    assert_eq!(singles, 2, "each store pinned to exactly one target");
}
