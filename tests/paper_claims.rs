//! Direct tests of the paper's prose claims, sentence by sentence.

use analysis::AnalysisLevel;
use driver::prelude::*;

/// Compiles and executes through the Session API, returning the outcome
/// and report pair the old tuple helpers used to.
fn run(src: &str, config: PipelineConfig) -> Result<(Outcome, PipelineReport), Error> {
    let c = Session::from_config(config).compile_and_run(src)?;
    Ok((c.outcome.expect("outcome populated"), c.report))
}

/// §5: "Register promotion's main benefit seems to be transforming
/// multiple stores of a promoted variable in a loop to a single store at
/// the loop's exit, an effect that other optimization passes cannot
/// achieve."
#[test]
fn no_other_pass_can_remove_loop_stores() {
    let src = r#"
int g;
int main() {
    int i;
    for (i = 0; i < 1000; i++) {
        g = g + i;
    }
    print_int(g);
    return 0;
}
"#;
    // The FULL optimizer without promotion: value numbering, load
    // elimination, constant propagation, LICM, DCE, clean, allocation.
    let no_promo = PipelineConfig::paper_variant(AnalysisLevel::PointsTo, false);
    let (base, _) = run(src, no_promo).unwrap();
    assert!(
        base.counts.stores >= 1000,
        "no other pass removes the loop stores: {}",
        base.counts.stores
    );
    // Promotion converts them to one store at the loop exit.
    let promo = PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true);
    let (with, _) = run(src, promo).unwrap();
    assert_eq!(base.output, with.output);
    assert!(
        with.counts.stores <= 2,
        "a single store at the exit: {}",
        with.counts.stores
    );
}

/// §1/§5: "these results are relatively insensitive to the precision of
/// the pointer analysis" — for programs without the aliasing patterns
/// that need points-to, MOD/REF alone recovers the entire benefit.
#[test]
fn modref_matches_pointer_analysis_where_the_paper_says_so() {
    for name in ["mlink", "clean", "indent", "go", "dhrystone"] {
        let b = benchsuite::find(name).unwrap();
        let mut per_level = Vec::new();
        for level in [AnalysisLevel::ModRef, AnalysisLevel::PointsTo] {
            let config = PipelineConfig::paper_variant(level, true);
            let (out, _) = run(b.source, config).unwrap_or_else(|e| panic!("{name}: {e}"));
            per_level.push((out.counts.loads, out.counts.stores));
        }
        assert_eq!(per_level[0], per_level[1], "{name}: modref == pointer");
    }
}

/// §5: "Most of the improvements were the result of global variables
/// which are normally placed in memory being promoted to registers."
#[test]
fn promoted_tags_are_predominantly_globals() {
    let b = benchsuite::find("mlink").unwrap();
    let mut m = minic::compile(b.source).unwrap();
    analysis::analyze(&mut m, AnalysisLevel::ModRef);
    for fi in 0..m.funcs.len() {
        cfg::normalize_loops(&mut m.funcs[fi]);
    }
    let graph = analysis::CallGraph::build(&m, None);
    let sccs = analysis::tarjan_sccs(&graph);
    let mut global_tags = 0;
    let mut other_tags = 0;
    for fi in 0..m.funcs.len() {
        let f = ir::FuncId(fi as u32);
        let rec = graph.is_recursive(f, &sccs);
        for t in promote::promotable_tags(&m, f, rec).iter() {
            match m.tags.info(t).kind {
                ir::TagKind::Global => global_tags += 1,
                _ => other_tags += 1,
            }
        }
    }
    assert!(global_tags > 0);
    assert!(
        global_tags >= other_tags,
        "globals dominate the promoted set: {global_tags} vs {other_tags}"
    );
}

/// §2: "if multiple names exist for a value, it must be stored to memory
/// after every definition and loaded from memory before each use" — and
/// the compiler must keep doing that when analysis cannot prove otherwise.
#[test]
fn aliased_values_keep_their_memory_traffic() {
    let src = r#"
int x;
int y;
int which;
int *p;
int main() {
    if (which) { p = &x; } else { p = &y; }
    int i;
    for (i = 0; i < 100; i++) {
        x = x + 1;
        *p = *p + 1;
    }
    print_int(x);
    print_int(y);
    return 0;
}
"#;
    let config = PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true);
    let (out, report) = run(src, config).unwrap();
    assert_eq!(out.output, vec!["100", "100"]);
    // Neither x nor y may be enregistered (either may be *p)... but the
    // pointer variable p itself is an unaliased global scalar, and
    // promotion correctly claims exactly it.
    assert_eq!(report.promotion.scalar.promoted_tags, 1);
    let mut m = minic::compile(src).unwrap();
    analysis::analyze(&mut m, AnalysisLevel::PointsTo);
    for fi in 0..m.funcs.len() {
        cfg::normalize_loops(&mut m.funcs[fi]);
    }
    let main = m.main().unwrap();
    let promotable = promote::promotable_tags(&m, main, false);
    let names: Vec<&str> = promotable
        .iter()
        .map(|t| m.tags.info(t).name.as_str())
        .collect();
    assert_eq!(names, vec!["g:p"], "only the pointer variable itself");
    // The aliased cells keep their full memory traffic.
    assert!(out.counts.stores >= 200);
}

/// §3.1 equations: "a tag t is only loaded and stored around the
/// outermost loop where it may be promoted" — one lift, not one per loop
/// level.
#[test]
fn lift_happens_at_the_outermost_safe_loop_only() {
    let src = r#"
int g;
int main() {
    int i; int j; int k;
    for (i = 0; i < 10; i++)
        for (j = 0; j < 10; j++)
            for (k = 0; k < 10; k++)
                g = g + 1;
    print_int(g);
    return 0;
}
"#;
    let config = PipelineConfig::paper_variant(AnalysisLevel::ModRef, true);
    let (out, _) = run(src, config).unwrap();
    assert_eq!(out.output, vec!["1000"]);
    // One load before the nest, one store after: not 10 or 100.
    assert!(out.counts.loads <= 5, "loads = {}", out.counts.loads);
    assert!(out.counts.stores <= 5, "stores = {}", out.counts.stores);
}

/// §2 Table 1: the opcode hierarchy is observable end to end — after
/// points-to analysis and strengthening, a provably unambiguous pointer
/// dereference executes as a *scalar* access.
#[test]
fn table1_hierarchy_strengthens_end_to_end() {
    let src = r#"
int cell;
int main() {
    int *p = &cell;
    int i;
    int s = 0;
    for (i = 0; i < 10; i++) {
        *p = i;
        s = s + *p;
    }
    print_int(s);
    return 0;
}
"#;
    // Promotion off so the access class is visible in the counts.
    let config = PipelineConfig::paper_variant(AnalysisLevel::PointsTo, false);
    let (out, _) = run(src, config).unwrap();
    assert_eq!(out.output, vec!["45"]);
    assert_eq!(
        out.counts.ptr_loads, 0,
        "every load strengthened to scalar form"
    );
    assert_eq!(
        out.counts.ptr_stores, 0,
        "every store strengthened to scalar form"
    );
}
