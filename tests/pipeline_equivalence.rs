//! Cross-configuration behavioural equivalence: every pipeline variant
//! must produce bit-identical program output on every suite program.
//!
//! This is the reproduction's master correctness check — the paper's
//! figures are only meaningful if the four measured variants compute the
//! same thing. The heavyweight full-suite sweep is `#[ignore]`d by default
//! (run it with `cargo test --release -- --ignored`); the default run
//! covers the three fastest suite programs plus targeted mini-programs.

use analysis::AnalysisLevel;
use driver::prelude::*;

fn all_variants() -> Vec<(String, PipelineConfig)> {
    let mut v: Vec<(String, PipelineConfig)> =
        PipelineConfig::figure_variants().into_iter().collect();
    // Extra arms beyond the paper: weakest analysis, Steensgaard, pointer
    // promotion, no optimization at all, tiny register file.
    v.push((
        "addrtaken/with".into(),
        PipelineConfig::paper_variant(AnalysisLevel::AddressTaken, true),
    ));
    v.push((
        "steens/with".into(),
        PipelineConfig::paper_variant(AnalysisLevel::Steensgaard, true),
    ));
    v.push((
        "pointer/with+ptrpromo".into(),
        PipelineConfig {
            pointer_promote: true,
            ..PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true)
        },
    ));
    v.push((
        "no-opt".into(),
        PipelineConfig {
            optimize: false,
            promote: false,
            regalloc: None,
            ..Default::default()
        },
    ));
    v.push((
        "tight-registers".into(),
        PipelineConfig {
            regalloc: Some(regalloc::AllocOptions {
                num_regs: 8,
                ..Default::default()
            }),
            ..PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true)
        },
    ));
    v
}

fn check_program(name: &str, src: &str) {
    let mut reference: Option<(String, Vec<String>)> = None;
    for (label, config) in all_variants() {
        let out = Session::from_config(config)
            .compile_and_run(src)
            .unwrap_or_else(|e| panic!("{name} [{label}]: {e}"))
            .outcome
            .expect("outcome populated");
        match &reference {
            None => reference = Some((label, out.output)),
            Some((ref_label, ref_out)) => assert_eq!(
                ref_out, &out.output,
                "{name}: {label} disagrees with {ref_label}"
            ),
        }
    }
}

#[test]
fn fast_suite_programs_agree_across_all_variants() {
    for name in ["allroots", "fft", "tsp"] {
        let b = benchsuite::find(name).expect("suite program");
        check_program(b.name, b.source);
    }
}

#[test]
fn pointer_heavy_program_agrees() {
    check_program(
        "pointer-heavy",
        r#"
int g;
int h;
int pick = 1;
int *alias;
void set_alias(int which) {
    if (which) { alias = &g; } else { alias = &h; }
}
int main() {
    set_alias(pick);
    int i;
    for (i = 0; i < 200; i++) {
        g = g + 1;
        *alias = *alias + 2;
        h = h + 3;
    }
    print_int(g);
    print_int(h);
    return 0;
}
"#,
    );
}

#[test]
fn recursion_and_locals_agree() {
    check_program(
        "recursive-locals",
        r#"
int depth_seen;
int probe(int n, int *up) {
    int local = n;
    int *mine = &local;
    if (n > 0) {
        int got = probe(n - 1, mine);
        *mine = *mine + got;
    }
    if (*up > depth_seen) depth_seen = *up;
    return *mine;
}
int main() {
    int root = 7;
    print_int(probe(6, &root));
    print_int(depth_seen);
    return 0;
}
"#,
    );
}

#[test]
fn function_pointer_dispatch_agrees() {
    check_program(
        "dispatch",
        r#"
int total;
int inc(int v) { total = total + v; return total; }
int dec(int v) { total = total - v; return total; }
func table[2];
int main() {
    table[0] = inc;
    table[1] = dec;
    int i;
    for (i = 0; i < 100; i++) {
        func f = table[i % 2];
        f(i);
    }
    print_int(total);
    return 0;
}
"#,
    );
}

#[test]
fn zero_trip_and_break_paths_agree() {
    check_program(
        "edges",
        r#"
int g = 5;
int limit;
int main() {
    int i;
    for (i = 0; i < limit; i++) { g = g * 2; }
    print_int(g);
    for (i = 0; i < 100; i++) {
        g = g + 1;
        if (g > 20) break;
    }
    print_int(g);
    while (0) { g = 999; }
    print_int(g);
    return 0;
}
"#,
    );
}

/// The full-suite sweep: every program × every variant. Expensive in debug
/// builds, so ignored by default.
#[test]
#[ignore = "full sweep: run with --release -- --ignored"]
fn whole_suite_agrees_across_all_variants() {
    for b in benchsuite::SUITE {
        check_program(b.name, b.source);
    }
}
