//! The paper's three degradation anecdotes, reproduced as assertions.

use analysis::AnalysisLevel;
use driver::prelude::*;

fn run_pair(src: &str, k: Option<usize>) -> (vm::ExecCounts, vm::ExecCounts) {
    let mut counts = Vec::new();
    let mut output: Option<Vec<String>> = None;
    for promote in [false, true] {
        let mut config = PipelineConfig::paper_variant(AnalysisLevel::ModRef, promote);
        if let Some(k) = k {
            config.regalloc = Some(AllocOptions {
                num_regs: k,
                ..Default::default()
            });
        }
        let out = Session::from_config(config)
            .compile_and_run(src)
            .expect("run")
            .outcome
            .expect("outcome populated");
        match &output {
            None => output = Some(out.output.clone()),
            Some(r) => assert_eq!(r, &out.output),
        }
        counts.push(out.counts);
    }
    (counts[0], counts[1])
}

/// "In dhrystone, values were promoted in a loop that always executed
/// once": the landing-pad load and exit store exactly replace the
/// in-loop references, so memory traffic is flat — promotion buys nothing.
#[test]
fn dhrystone_once_loop_is_a_wash() {
    let b = benchsuite::find("dhrystone").unwrap();
    let (without, with) = run_pair(b.source, None);
    assert_eq!(without.loads, with.loads, "loads are flat");
    assert_eq!(without.stores, with.stores, "stores are flat");
}

/// "In bison, values were promoted that were only accessed on an error
/// condition": the lift executes although the guarded access never does,
/// so promotion makes bison very slightly *worse*.
#[test]
fn bison_error_path_promotion_slightly_degrades() {
    let b = benchsuite::find("bison").unwrap();
    let (without, with) = run_pair(b.source, None);
    let before = without.memory_ops() as i64;
    let after = with.memory_ops() as i64;
    let delta = after - before;
    assert!(
        (0..=200).contains(&delta),
        "bison should pay a small lift tax: {before} -> {after}"
    );
}

/// "In water, register promotion was able to promote twenty-eight values
/// for one loop nest. Unfortunately, this caused the register allocator
/// to spill values which resulted in a performance loss": sweeping the
/// register count shows the crossover. Our Briggs-conservative allocator
/// with rematerialization spills later than the paper's 1997 Chaitin
/// allocator, so the give-back appears at a tighter file; the *trend* —
/// promotion's benefit shrinking as K drops — is the paper's story.
#[test]
fn water_pressure_gives_back_savings_as_registers_shrink() {
    let b = benchsuite::find("water").unwrap();
    let (w32_without, w32_with) = run_pair(b.source, Some(32));
    let (w12_without, w12_with) = run_pair(b.source, Some(12));
    let benefit_32 = w32_without.memory_ops() as f64 - w32_with.memory_ops() as f64;
    let benefit_12 = w12_without.memory_ops() as f64 - w12_with.memory_ops() as f64;
    assert!(benefit_32 > 0.0, "with ample registers promotion wins");
    assert!(
        benefit_12 < benefit_32 * 0.8,
        "with 12 registers spills give back a large share: {benefit_32} -> {benefit_12}"
    );
}

/// The promoted-values-compete claim: "the promoted values compete for
/// registers on an equal footing with other values". With promotion on, a
/// tighter register file must still produce correct code.
#[test]
fn promoted_values_spill_correctly_under_pressure() {
    let b = benchsuite::find("water").unwrap();
    for k in [8, 10, 16] {
        let (_, _) = run_pair(b.source, Some(k));
    }
}
