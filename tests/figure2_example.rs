//! The paper's Figure 2 worked example, end to end.
//!
//! Figure 2 shows a triply nested loop (headers B1 ⊃ B3 ⊃ B5) over three
//! tags A, B, C with a call referencing A ambiguously in the outer loop
//! and one referencing B in the middle loop. The paper's table gives:
//!
//! ```text
//! L_PROMOTABLE(B1) = {C}   L_LIFT(B1) = {C}
//! L_PROMOTABLE(B3) = {A}   L_LIFT(B3) = {A}
//! L_PROMOTABLE(B5) = {A}   L_LIFT(B5) = {}
//! ```
//!
//! and describes the rewrite: C loaded in B1's landing pad and stored in
//! its exit; A loaded in B3's landing pad and stored in B3's exit; the
//! inner references become copies.

use ir::DenseTagSet;
use promote::{block_sets, LoopSets};

/// Figure 2 as a runnable program: the "remaining code" the paper leaves
/// implicit is filled in with counted loops so the example executes.
const FIGURE2: &str = r#"
tag "A" global size=1 addressed
tag "B" global size=1 addressed
tag "C" global size=1 addressed
global "A" ints 3
global "B" ints 5
global "C" ints 0
func @ext_a(0) {
B0:
  r0 = sload "A"
  r1 = iconst 1
  r2 = add r0, r1
  sstore r2, "A"
  ret
}
func @ext_b(0) {
B0:
  r0 = sload "B"
  ret
}
func @main(0) result {
B0:
  r0 = sload "C"
  r10 = iconst 0
  jump B1
B1:
  sstore r0, "C"
  call @ext_a() mods{"A"} refs{"A"}
  jump B2
B2:
  r1 = sload "A"
  r11 = iconst 0
  jump B3
B3:
  sstore r1, "B"
  call @ext_b() mods{} refs{"B"}
  r12 = iconst 0
  jump B4
B4:
  jump B5
B5:
  r2 = sload "A"
  r0 = add r0, r2
  jump B6
B6:
  r13 = iconst 1
  r12 = add r12, r13
  r14 = iconst 3
  r15 = cmplt r12, r14
  branch r15, B5, B7
B7:
  r16 = iconst 1
  r11 = add r11, r16
  r17 = iconst 3
  r18 = cmplt r11, r17
  branch r18, B3, B8
B8:
  r19 = iconst 1
  r10 = add r10, r19
  r20 = iconst 3
  r21 = cmplt r10, r20
  branch r21, B1, B9
B9:
  sstore r2, "C"
  r22 = sload "C"
  ret r22
}
"#;

fn tag(m: &ir::Module, name: &str) -> ir::TagId {
    m.tags.lookup(name).unwrap()
}

#[test]
fn equation_sets_match_the_papers_table() {
    let mut m = ir::parse_module(FIGURE2).expect("parse");
    let main = m.lookup_func("main").unwrap();
    cfg::normalize_loops(&mut m.funcs[main.index()]);
    let nest = cfg::LoopNest::compute(m.func(main));
    assert_eq!(nest.forest.len(), 3, "three nested loops");
    let blocks = block_sets(&m.tags, main, m.func(main), false);
    let sets = LoopSets::solve(&blocks, &nest.forest);
    let order = nest.forest.outer_to_inner();
    let (outer, middle, inner) = (order[0], order[1], order[2]);
    let (a, b, c) = (tag(&m, "A"), tag(&m, "B"), tag(&m, "C"));
    // The paper's PROMOTABLE column.
    assert_eq!(sets.promotable[outer.index()], DenseTagSet::singleton(c));
    assert_eq!(sets.promotable[middle.index()], DenseTagSet::singleton(a));
    assert_eq!(sets.promotable[inner.index()], DenseTagSet::singleton(a));
    // The paper's LIFT column.
    assert_eq!(sets.lift[outer.index()], DenseTagSet::singleton(c));
    assert_eq!(sets.lift[middle.index()], DenseTagSet::singleton(a));
    assert!(sets.lift[inner.index()].is_empty());
    // B is explicit but ambiguous in the middle loop.
    assert!(sets.explicit[middle.index()].contains(b));
    assert!(sets.ambiguous[middle.index()].contains(b));
    assert!(!sets.promotable[middle.index()].contains(b));
}

#[test]
fn rewrite_places_lifts_exactly_as_described() {
    let mut m = ir::parse_module(FIGURE2).expect("parse");
    let report = promote::promote_module(&mut m, &promote::PromotionOptions::default());
    ir::validate(&m).expect("valid");
    assert_eq!(report.scalar.promoted_tags, 2, "A and C");
    let nest = cfg::LoopNest::compute(m.func(m.lookup_func("main").unwrap()));
    let func = m.func(m.lookup_func("main").unwrap());
    let (a, c) = (tag(&m, "A"), tag(&m, "C"));
    let order = nest.forest.outer_to_inner();
    let (outer, middle) = (order[0], order[1]);
    // C's load sits in the outer landing pad; its store in the outer exit.
    let outer_pad = nest.landing_pad(outer);
    assert!(
        func.block(outer_pad)
            .instrs
            .iter()
            .any(|i| matches!(i, ir::Instr::SLoad { tag, .. } if *tag == c)),
        "sload C in the outer landing pad"
    );
    for &e in nest.exits(outer) {
        assert!(
            func.block(e)
                .instrs
                .iter()
                .any(|i| matches!(i, ir::Instr::SStore { tag, .. } if *tag == c)),
            "sstore C in the outer exit"
        );
    }
    // A's load sits in the middle loop's landing pad (not the inner one).
    let middle_pad = nest.landing_pad(middle);
    assert!(
        func.block(middle_pad)
            .instrs
            .iter()
            .any(|i| matches!(i, ir::Instr::SLoad { tag, .. } if *tag == a)),
        "sload A in the middle landing pad"
    );
    // No memory reference to A remains inside the inner loop.
    let inner = order[2];
    for &bid in &nest.forest.get(inner).blocks {
        for instr in &func.block(bid).instrs {
            if let ir::Instr::SLoad { tag, .. } | ir::Instr::SStore { tag, .. } = instr {
                assert_ne!(*tag, a, "A is register-resident in the inner loop");
            }
        }
    }
}

#[test]
fn behaviour_is_preserved_and_traffic_drops() {
    let m0 = ir::parse_module(FIGURE2).expect("parse");
    let before = vm::Vm::run_main(&m0, vm::VmOptions::default()).expect("run");
    let mut m = m0.clone();
    promote::promote_module(&mut m, &promote::PromotionOptions::default());
    let after = vm::Vm::run_main(&m, vm::VmOptions::default()).expect("run promoted");
    assert_eq!(before.result, after.result);
    assert!(after.counts.loads < before.counts.loads);
    assert!(after.counts.stores < before.counts.stores);
}
