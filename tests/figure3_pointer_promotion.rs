//! The paper's Figure 3: promoting the array reference `B[i]` in
//! `for (j...) B[i] += A[i][j];` — the address of `B[i]` is invariant in
//! the inner loop, so pointer-based promotion (§3.3) keeps the element in
//! a register `rb` exactly as the figure's transformed code shows.

use analysis::AnalysisLevel;
use driver::prelude::*;

/// Compiles and executes through the Session API, returning the outcome
/// and report pair the old tuple helpers used to.
fn run_config(src: &str, config: PipelineConfig) -> Result<(Outcome, PipelineReport), Error> {
    let c = Session::from_config(config).compile_and_run(src)?;
    Ok((c.outcome.expect("outcome populated"), c.report))
}

const DIM_X: i64 = 12;
const DIM_Y: i64 = 16;

fn figure3_source() -> String {
    format!(
        r#"
int A[{x}][{y}];
int B[{x}];
int main() {{
    int i; int j;
    for (i = 0; i < {x}; i++)
        for (j = 0; j < {y}; j++)
            A[i][j] = i * 3 + j;
    for (i = 0; i < {x}; i++) {{
        B[i] = 0;
        for (j = 0; j < {y}; j++) {{
            B[i] += A[i][j];
        }}
    }}
    int s = 0;
    for (i = 0; i < {x}; i++) s += B[i];
    print_int(s);
    return 0;
}}
"#,
        x = DIM_X,
        y = DIM_Y
    )
}

fn expected_sum() -> i64 {
    let mut s = 0;
    for i in 0..DIM_X {
        for j in 0..DIM_Y {
            s += i * 3 + j;
        }
    }
    s
}

#[test]
fn pointer_promotion_keeps_b_i_in_a_register() {
    let src = figure3_source();
    let scalar_only = PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true);
    let with_ptr = PipelineConfig {
        pointer_promote: true,
        ..scalar_only.clone()
    };
    let (base, _) = run_config(&src, scalar_only.clone()).expect("scalar");
    let (ptr, report) = run_config(&src, with_ptr).expect("pointer");
    assert_eq!(base.output, ptr.output);
    assert_eq!(base.output, vec![expected_sum().to_string()]);
    assert!(
        report.promotion.pointer.promoted_bases >= 1,
        "the B[i] base was promoted: {report:?}"
    );
    // The inner-loop load and store of B[i] become copies: the figure's
    // DIM_X * DIM_Y * 2 accumulator memory ops collapse to about
    // DIM_X * 2 (one load before and one store after each inner loop).
    let saved = (DIM_X * DIM_Y * 2 - DIM_X * 2) as u64;
    assert!(
        ptr.counts.memory_ops() + saved / 2 <= base.counts.memory_ops(),
        "memory ops {} -> {} (expected roughly {} fewer)",
        base.counts.memory_ops(),
        ptr.counts.memory_ops(),
        saved
    );
}

#[test]
fn scalar_promotion_alone_cannot_do_this() {
    // The paper's point: the loop-based scalar algorithm does not promote
    // array references; only §3.3 catches B[i].
    let src = figure3_source();
    let c = Session::from_config(PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true))
        .compile(&src)
        .expect("compile");
    let (module, report) = (c.module, c.report);
    assert_eq!(report.promotion.pointer.promoted_bases, 0);
    // The inner loop still stores through a pointer into B every iteration.
    let b_tag = module.tags.lookup("g:B").expect("B's tag");
    let stores_to_b = module
        .funcs
        .iter()
        .flat_map(|f| f.blocks.iter())
        .flat_map(|b| b.instrs.iter())
        .filter(|i| match i {
            ir::Instr::Store { tags, .. } => tags.contains(b_tag),
            _ => false,
        })
        .count();
    assert!(stores_to_b > 0, "B is still accessed through memory");
}
