//! End-to-end tests for the structured optimization-remark telemetry:
//! the [`driver::Session`] API with tracing enabled must explain, per
//! loop and per tag, what promotion did and why it declined — and the
//! trace must be observation-only (identical IL with tracing on or off)
//! and round-trip exactly through its JSONL serialization.

use driver::Session;
use trace::{BlockReason, Remark, TraceLog};

/// A MiniC program with one promotable global (`hot`: referenced only
/// explicitly inside the loop) and one call-pinned global (`pinned`:
/// stored explicitly in the loop body *and* modified by `bump()`, so the
/// call's MOD set makes it ambiguous — the paper's equation 2 keeps it
/// out of L_PROMOTABLE).
const COUNTER: &str = r#"
int hot;
int pinned;

void bump(void) { pinned = pinned + 1; }

int main(void) {
    int i;
    for (i = 0; i < 100; i++) {
        hot = hot + 1;
        pinned = pinned + 2;
        bump();
    }
    print_int(hot);
    print_int(pinned);
    return 0;
}
"#;

/// The paper's Figure 2 worked example as IL (same source as
/// `tests/figure2_example.rs`): loops B1 ⊃ B3 ⊃ B5 over tags A, B, C,
/// with a call that mods A in the outer loop and one that refs B in the
/// middle loop.
const FIGURE2: &str = r#"
tag "A" global size=1 addressed
tag "B" global size=1 addressed
tag "C" global size=1 addressed
global "A" ints 3
global "B" ints 5
global "C" ints 0
func @ext_a(0) {
B0:
  r0 = sload "A"
  r1 = iconst 1
  r2 = add r0, r1
  sstore r2, "A"
  ret
}
func @ext_b(0) {
B0:
  r0 = sload "B"
  ret
}
func @main(0) result {
B0:
  r0 = sload "C"
  r10 = iconst 0
  jump B1
B1:
  sstore r0, "C"
  call @ext_a() mods{"A"} refs{"A"}
  jump B2
B2:
  r1 = sload "A"
  r11 = iconst 0
  jump B3
B3:
  sstore r1, "B"
  call @ext_b() mods{} refs{"B"}
  r12 = iconst 0
  jump B4
B4:
  jump B5
B5:
  r2 = sload "A"
  r0 = add r0, r2
  jump B6
B6:
  r13 = iconst 1
  r12 = add r12, r13
  r14 = iconst 3
  r15 = cmplt r12, r14
  branch r15, B5, B7
B7:
  r16 = iconst 1
  r11 = add r11, r16
  r17 = iconst 3
  r18 = cmplt r11, r17
  branch r18, B3, B8
B8:
  r19 = iconst 1
  r10 = add r10, r19
  r20 = iconst 3
  r21 = cmplt r10, r20
  branch r21, B1, B9
B9:
  sstore r2, "C"
  r22 = sload "C"
  ret r22
}
"#;

#[test]
fn counter_loop_yields_promoted_and_call_blocked_remarks() {
    let session = Session::builder().trace(true).build();
    let c = session.compile_and_run(COUNTER).expect("compile and run");
    let outcome = c.outcome.as_ref().expect("run populates the outcome");
    assert_eq!(outcome.output, vec!["100", "300"]);

    // `hot` is promoted for the whole loop... (the front end names
    // global tags `g:<name>`)
    assert!(
        c.trace.remarks().any(|(func, _, r)| {
            func == "main"
                && matches!(r, Remark::Promoted { tag, in_loop, .. }
                    if tag == "g:hot" && in_loop.depth == 1)
        }),
        "no Promoted remark for `hot`:\n{}",
        c.remarks_text()
    );
    // ...and `pinned` is reported blocked, with the call named as the
    // culprit.
    assert!(
        c.trace.remarks().any(|(func, _, r)| {
            func == "main"
                && matches!(r, Remark::Blocked { tag, reason, .. }
                    if tag == "g:pinned" && *reason == BlockReason::CallModRef)
        }),
        "no CallModRef Blocked remark for `pinned`:\n{}",
        c.remarks_text()
    );
}

#[test]
fn figure2_remarks_match_the_papers_table() {
    let mut m = ir::parse_module(FIGURE2).expect("parse");
    let session = Session::builder().trace(true).build();
    let (_, log) = session.optimize(&mut m).expect("optimize");

    // PROMOTABLE(B1) = {C}: C is promoted across the whole outer loop.
    assert!(
        log.remarks().any(|(func, pass, r)| {
            func == "main"
                && pass == "promote"
                && matches!(r, Remark::Promoted { tag, in_loop, .. }
                    if tag == "C" && in_loop.depth == 1)
        }),
        "no Promoted remark for C at depth 1:\n{}",
        log.render_remarks()
    );
    // A is kept out of the outer loop's PROMOTABLE set by the call that
    // mods it — and the remark says exactly that.
    assert!(
        log.remarks().any(|(func, _, r)| {
            func == "main"
                && matches!(r, Remark::Blocked { tag, in_loop, reason }
                    if tag == "A" && in_loop.depth == 1
                        && *reason == BlockReason::CallModRef)
        }),
        "no CallModRef Blocked remark for A in the outer loop:\n{}",
        log.render_remarks()
    );
    // PROMOTABLE(B3) = {A}: inside the call-free middle loop A does get
    // promoted.
    assert!(
        log.remarks().any(|(func, _, r)| {
            func == "main"
                && matches!(r, Remark::Promoted { tag, in_loop, .. }
                    if tag == "A" && in_loop.depth >= 2)
        }),
        "no Promoted remark for A in an inner loop:\n{}",
        log.render_remarks()
    );
}

#[test]
fn trace_round_trips_through_jsonl() {
    let mut m = ir::parse_module(FIGURE2).expect("parse");
    let session = Session::builder().trace(true).build();
    let (_, log) = session.optimize(&mut m).expect("optimize");
    assert!(!log.is_empty(), "figure 2 must produce remarks");
    let jsonl = log.to_jsonl();
    let parsed = TraceLog::from_jsonl(&jsonl).expect("parse our own JSONL");
    assert_eq!(parsed, log, "JSONL round-trip must be exact");
}

#[test]
fn disabled_tracing_is_silent_and_changes_nothing() {
    let traced = Session::builder()
        .trace(true)
        .build()
        .compile(COUNTER)
        .expect("traced compile");
    let untraced = Session::builder()
        .build()
        .compile(COUNTER)
        .expect("untraced compile");
    assert!(!traced.trace.is_empty());
    assert!(untraced.trace.is_empty(), "tracing off must record nothing");
    assert_eq!(
        traced.module.to_string(),
        untraced.module.to_string(),
        "tracing must be observation-only"
    );
}
