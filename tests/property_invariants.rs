//! Property-based tests over randomly generated control flow and
//! randomly generated MiniC programs.
//!
//! Random inputs come from an in-tree xorshift64* generator: every case
//! is reproducible from the fixed seed and no external crates are needed
//! (the build must work offline).

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a function with `n` blocks and pseudo-random control flow.
fn random_cfg_function(n: usize, edges: &[(usize, usize, usize)]) -> ir::Function {
    let mut b = ir::FunctionBuilder::new("f", 0);
    let cond = b.iconst(1);
    for _ in 1..n {
        b.new_block();
    }
    for (i, &(kind, t1, t2)) in edges.iter().enumerate().take(n) {
        b.switch_to(ir::BlockId(i as u32));
        match kind % 3 {
            0 => b.ret(None),
            1 => b.jump(ir::BlockId((t1 % n) as u32)),
            _ => b.branch(
                cond,
                ir::BlockId((t1 % n) as u32),
                ir::BlockId((t2 % n) as u32),
            ),
        }
    }
    b.finish()
}

fn random_edges(rng: &mut Rng, count: usize, max_target: usize) -> Vec<(usize, usize, usize)> {
    (0..count)
        .map(|_| (rng.below(3), rng.below(max_target), rng.below(max_target)))
        .collect()
}

/// Lengauer–Tarjan and the iterative algorithm agree on arbitrary
/// (including irreducible) graphs.
#[test]
fn dominator_algorithms_agree() {
    let mut rng = Rng::new(0xD031_47A5);
    for case in 0..200 {
        let n = 1 + rng.below(23);
        let edges = random_edges(&mut rng, 24, 24);
        let f = random_cfg_function(n, &edges);
        let g = cfg::Cfg::build(&f);
        let lt = cfg::DomTree::lengauer_tarjan(&g);
        let it = cfg::DomTree::iterative(&g);
        assert_eq!(lt, it, "case {case}: dominator algorithms disagree (n={n})");
    }
}

/// Loop normalization never breaks validity and is idempotent.
#[test]
fn normalization_is_sound_and_idempotent() {
    let mut rng = Rng::new(0x0A11_CE55);
    for case in 0..200 {
        let n = 1 + rng.below(15);
        let edges = random_edges(&mut rng, 16, 16);
        let mut f = random_cfg_function(n, &edges);
        cfg::normalize_loops(&mut f);
        let mut m = ir::Module::new();
        m.add_func(f.clone());
        assert!(
            ir::validate(&m).is_ok(),
            "case {case}: normalization broke validity"
        );
        let once = f.clone();
        cfg::normalize_loops(&mut f);
        assert_eq!(once, f, "case {case}: normalization not idempotent");
    }
}

/// A tiny deterministic MiniC program generator: a loop nest over global
/// scalars with random updates, guards, and helper calls.
fn generate_program(
    globals: usize,
    depth: usize,
    stmts: &[(usize, usize, usize, i32)],
    pin_mask: usize,
) -> String {
    use std::fmt::Write;
    let mut src = String::new();
    for g in 0..globals {
        let _ = writeln!(src, "int g{g} = {};", g * 3 + 1);
    }
    // A helper that touches a subset of the globals (pins them in loops
    // that call it).
    src.push_str("void touch() {\n");
    for g in 0..globals {
        if pin_mask & (1 << g) != 0 {
            let _ = writeln!(src, "    g{g} = g{g} + 1;");
        }
    }
    src.push_str("}\n");
    src.push_str("int main() {\n");
    for d in 0..depth {
        let _ = writeln!(src, "    int i{d};");
        let _ = writeln!(src, "    for (i{d} = 0; i{d} < 4; i{d}++) {{");
    }
    for (k, (op, a, b, c)) in stmts.iter().enumerate() {
        let a = a % globals;
        let b = b % globals;
        match op % 5 {
            0 => {
                let _ = writeln!(src, "        g{a} = g{a} + {c};");
            }
            1 => {
                let _ = writeln!(src, "        g{a} = g{b} * 2 + g{a};");
            }
            2 => {
                let _ = writeln!(src, "        if (g{a} % 3 == {}) g{b} = g{b} + 1;", k % 3);
            }
            3 => {
                let _ = writeln!(src, "        touch();");
            }
            _ => {
                let _ = writeln!(src, "        g{a} = g{a} ^ (g{b} + {c});");
            }
        }
    }
    for _ in 0..depth {
        src.push_str("    }\n");
    }
    for g in 0..globals {
        let _ = writeln!(src, "    print_int(g{g});");
    }
    src.push_str("    return 0;\n}\n");
    src
}

fn random_program(rng: &mut Rng) -> String {
    let globals = 1 + rng.below(4);
    let depth = 1 + rng.below(3);
    let n_stmts = 1 + rng.below(7);
    let stmts: Vec<(usize, usize, usize, i32)> = (0..n_stmts)
        .map(|_| {
            (
                rng.below(5),
                rng.below(5),
                rng.below(5),
                1 + rng.below(6) as i32,
            )
        })
        .collect();
    let pin_mask = rng.below(32);
    generate_program(globals, depth, &stmts, pin_mask)
}

/// The paper's master invariant: promotion (and the whole pipeline at
/// any precision) never changes program behaviour, and never increases
/// the number of executed loads or stores beyond the lift overhead.
#[test]
fn pipeline_preserves_behaviour_on_random_programs() {
    let mut rng = Rng::new(0x91BE_11E5);
    for _case in 0..48 {
        let src = random_program(&mut rng);
        let mut reference: Option<Vec<String>> = None;
        for (label, config) in driver::PipelineConfig::figure_variants() {
            let out = driver::Session::from_config(config)
                .compile_and_run(&src)
                .unwrap_or_else(|e| panic!("{label} on\n{src}\n: {e}"))
                .outcome
                .expect("outcome populated");
            match &reference {
                None => reference = Some(out.output),
                Some(r) => {
                    assert_eq!(r, &out.output, "variant {label} diverged on\n{src}")
                }
            }
        }
    }
}

/// Promotion alone (no other passes) is behaviour-preserving and
/// never increases memory traffic by more than the lift overhead
/// (2 ops per loop per promoted tag, conservatively bounded).
#[test]
fn promotion_bounds_memory_traffic() {
    let mut rng = Rng::new(0xB0CA_1057);
    for _case in 0..48 {
        let src = random_program(&mut rng);
        let mut base = minic::compile(&src).expect("compile");
        analysis::analyze(&mut base, analysis::AnalysisLevel::ModRef);
        let before = vm::Vm::run_main(&base, vm::VmOptions::default()).expect("run");
        let mut promoted = base.clone();
        let report = promote::promote_module(&mut promoted, &promote::PromotionOptions::default());
        let after = vm::Vm::run_main(&promoted, vm::VmOptions::default()).expect("run");
        assert_eq!(before.output, after.output);
        // Loose lift-overhead bound: each lift executes at most once per
        // enclosing-loop entry; total loop entries are bounded by total
        // control transfers.
        let overhead = (report.scalar.lifts as u64 + 1) * (before.counts.control + 1);
        assert!(
            after.counts.memory_ops() <= before.counts.memory_ops() + overhead,
            "memory {} -> {} with lift overhead bound {}",
            before.counts.memory_ops(),
            after.counts.memory_ops(),
            overhead
        );
    }
}
