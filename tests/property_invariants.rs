//! Property-based tests over randomly generated control flow and
//! randomly generated MiniC programs.

use proptest::prelude::*;

/// Builds a function with `n` blocks and pseudo-random control flow.
fn random_cfg_function(n: usize, edges: &[(usize, usize, usize)]) -> ir::Function {
    let mut b = ir::FunctionBuilder::new("f", 0);
    let cond = b.iconst(1);
    for _ in 1..n {
        b.new_block();
    }
    for (i, &(kind, t1, t2)) in edges.iter().enumerate().take(n) {
        b.switch_to(ir::BlockId(i as u32));
        match kind % 3 {
            0 => b.ret(None),
            1 => b.jump(ir::BlockId((t1 % n) as u32)),
            _ => b.branch(cond, ir::BlockId((t1 % n) as u32), ir::BlockId((t2 % n) as u32)),
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Lengauer–Tarjan and the iterative algorithm agree on arbitrary
    /// (including irreducible) graphs.
    #[test]
    fn dominator_algorithms_agree(
        n in 1usize..24,
        edges in proptest::collection::vec((0usize..3, 0usize..24, 0usize..24), 24),
    ) {
        let f = random_cfg_function(n, &edges);
        let g = cfg::Cfg::build(&f);
        let lt = cfg::DomTree::lengauer_tarjan(&g);
        let it = cfg::DomTree::iterative(&g);
        prop_assert_eq!(lt, it);
    }

    /// Loop normalization never breaks validity and is idempotent.
    #[test]
    fn normalization_is_sound_and_idempotent(
        n in 1usize..16,
        edges in proptest::collection::vec((0usize..3, 0usize..16, 0usize..16), 16),
    ) {
        let mut f = random_cfg_function(n, &edges);
        cfg::normalize_loops(&mut f);
        let mut m = ir::Module::new();
        m.add_func(f.clone());
        prop_assert!(ir::validate(&m).is_ok());
        let once = f.clone();
        cfg::normalize_loops(&mut f);
        prop_assert_eq!(once, f);
    }
}

/// A tiny deterministic MiniC program generator: a loop nest over global
/// scalars with random updates, guards, and helper calls.
fn generate_program(
    globals: usize,
    depth: usize,
    stmts: &[(usize, usize, usize, i32)],
    pin_mask: usize,
) -> String {
    use std::fmt::Write;
    let mut src = String::new();
    for g in 0..globals {
        let _ = writeln!(src, "int g{g} = {};", g * 3 + 1);
    }
    // A helper that touches a subset of the globals (pins them in loops
    // that call it).
    src.push_str("void touch() {\n");
    for g in 0..globals {
        if pin_mask & (1 << g) != 0 {
            let _ = writeln!(src, "    g{g} = g{g} + 1;");
        }
    }
    src.push_str("}\n");
    src.push_str("int main() {\n");
    for d in 0..depth {
        let _ = writeln!(src, "    int i{d};");
        let _ = writeln!(src, "    for (i{d} = 0; i{d} < 4; i{d}++) {{");
    }
    for (k, (op, a, b, c)) in stmts.iter().enumerate() {
        let a = a % globals;
        let b = b % globals;
        match op % 5 {
            0 => {
                let _ = writeln!(src, "        g{a} = g{a} + {c};");
            }
            1 => {
                let _ = writeln!(src, "        g{a} = g{b} * 2 + g{a};");
            }
            2 => {
                let _ = writeln!(src, "        if (g{a} % 3 == {}) g{b} = g{b} + 1;", k % 3);
            }
            3 => {
                let _ = writeln!(src, "        touch();");
            }
            _ => {
                let _ = writeln!(src, "        g{a} = g{a} ^ (g{b} + {c});");
            }
        }
    }
    for _ in 0..depth {
        src.push_str("    }\n");
    }
    for g in 0..globals {
        let _ = writeln!(src, "    print_int(g{g});");
    }
    src.push_str("    return 0;\n}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The paper's master invariant: promotion (and the whole pipeline at
    /// any precision) never changes program behaviour, and never increases
    /// the number of executed loads or stores beyond the lift overhead.
    #[test]
    fn pipeline_preserves_behaviour_on_random_programs(
        globals in 1usize..5,
        depth in 1usize..4,
        stmts in proptest::collection::vec(
            (0usize..5, 0usize..5, 0usize..5, 1i32..7),
            1..8,
        ),
        pin_mask in 0usize..32,
    ) {
        let src = generate_program(globals, depth, &stmts, pin_mask);
        let mut reference: Option<Vec<String>> = None;
        for (label, config) in driver::PipelineConfig::figure_variants() {
            let (out, _) = driver::compile_and_run(
                &src,
                &config,
                vm::VmOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{label} on\n{src}\n: {e}"));
            match &reference {
                None => reference = Some(out.output),
                Some(r) => prop_assert_eq!(
                    r,
                    &out.output,
                    "variant {} diverged on\n{}",
                    label,
                    src
                ),
            }
        }
    }

    /// Promotion alone (no other passes) is behaviour-preserving and
    /// never increases memory traffic by more than the lift overhead
    /// (2 ops per loop per promoted tag, conservatively bounded).
    #[test]
    fn promotion_bounds_memory_traffic(
        globals in 1usize..5,
        depth in 1usize..4,
        stmts in proptest::collection::vec(
            (0usize..5, 0usize..5, 0usize..5, 1i32..7),
            1..8,
        ),
        pin_mask in 0usize..32,
    ) {
        let src = generate_program(globals, depth, &stmts, pin_mask);
        let mut base = minic::compile(&src).expect("compile");
        analysis::analyze(&mut base, analysis::AnalysisLevel::ModRef);
        let before = vm::Vm::run_main(&base, vm::VmOptions::default()).expect("run");
        let mut promoted = base.clone();
        let report = promote::promote_module(
            &mut promoted,
            &promote::PromotionOptions::default(),
        );
        let after = vm::Vm::run_main(&promoted, vm::VmOptions::default()).expect("run");
        prop_assert_eq!(before.output, after.output);
        // Loose lift-overhead bound: each lift executes at most once per
        // enclosing-loop entry; total loop entries are bounded by total
        // control transfers.
        let overhead = (report.scalar.lifts as u64 + 1) * (before.counts.control + 1);
        prop_assert!(
            after.counts.memory_ops() <= before.counts.memory_ops() + overhead,
            "memory {} -> {} with lift overhead bound {}",
            before.counts.memory_ops(),
            after.counts.memory_ops(),
            overhead
        );
    }
}
