//! # register-promotion
//!
//! A from-scratch reproduction of **“Register Promotion in C Programs”**
//! (Keith D. Cooper and John Lu, PLDI 1997) as a Rust workspace: a research
//! C compiler with a tag-based intermediate language, interprocedural
//! MOD/REF and points-to analysis, the paper's loop-based register
//! promotion transformation, a full supporting optimizer, a
//! Chaitin–Briggs register allocator, and an instrumented interpreter that
//! regenerates the paper's dynamic operation/store/load figures.
//!
//! This crate is a facade that re-exports every subsystem under one name;
//! each subsystem is its own workspace crate:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`ir`] | `promo-ir` | tagged IL, textual form, validation |
//! | `cfg` | `promo-cfg` | CFG, dominators, loops, normalization |
//! | [`analysis`] | `promo-analysis` | MOD/REF, points-to, Steensgaard |
//! | [`promote`] | `promo-promote` | **the paper's transformation** |
//! | [`opt`] | `promo-opt` | LVN, PRE-style load elim, SCCP, LICM, DCE |
//! | [`regalloc`] | `promo-regalloc` | Chaitin–Briggs with coalescing/spilling |
//! | [`ssa`] | `promo-ssa` | pruned SSA construct/verify/destruct |
//! | [`minic`] | `promo-minic` | the MiniC front end |
//! | [`vm`] | `promo-vm` | instrumented interpreter |
//! | [`driver`] | `promo-driver` | pipeline configs + figure reporting |
//! | [`benchsuite`] | `promo-benchsuite` | the 14-program suite |
//!
//! ## Quickstart
//!
//! ```
//! use register_promotion::driver::prelude::*;
//!
//! let source = r#"
//!     int hits;
//!     int main() {
//!         int i;
//!         for (i = 0; i < 10000; i++) hits += 1;
//!         print_int(hits);
//!         return 0;
//!     }
//! "#;
//! // The paper's experiment: same program, promotion off vs on.
//! let run = |promote| -> Result<Outcome, Error> {
//!     let config = PipelineConfig::paper_variant(AnalysisLevel::ModRef, promote);
//!     Session::from_config(config)
//!         .compile(source)?
//!         .run(VmOptions::default())
//! };
//! let (base, promoted) = (run(false)?, run(true)?);
//! assert_eq!(base.output, promoted.output);
//! assert!(promoted.counts.stores < base.counts.stores / 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use ::cfg;
pub use analysis;
pub use benchsuite;
pub use driver;
pub use ir;
pub use minic;
pub use opt;
pub use promote;
pub use regalloc;
pub use ssa;
pub use vm;
