//! Differential test of the version-keyed analysis cache
//! ([`cfg::FunctionAnalyses`]) against from-scratch analysis on randomized
//! functions driven through the pipeline's exact fused pass chain.
//!
//! Two bug classes hide in a cache like this. A *stale* cache: a pass
//! mutates the body but under-reports (says "body" when it moved an edge,
//! or says nothing at all), so a downstream pass consumes an artifact of a
//! function that no longer exists. An *over-conservative* cache: a pass
//! reports changes it did not make, so the cache degenerates back to
//! rebuild-per-pass and the whole exercise is a no-op that benchmarks
//! happen to catch. The first test catches staleness by rebuilding every
//! artifact from scratch after **every** pass in the chain and demanding
//! equality with whatever the cache hands out at its current version; the
//! second catches regression to rebuild-per-pass by asserting, via the
//! cache's build ledger, that converged re-runs cost zero constructions.
//!
//! Random inputs come from an in-tree xorshift64* generator: every case is
//! reproducible from the fixed seed and no external crates are needed (the
//! build must work offline).

use cfg::{liveness, Cfg, DomTree, FunctionAnalyses, LoopForest, LoopGeometry};
use ir::{BinOp, BlockId, FuncId, Function, FunctionBuilder, Instr, Reg, TagId, TagKind, TagTable};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a function with random register dataflow, random multi-block
/// control flow (loops and irreducible tangles included), and scalar
/// loads/stores through a small set of global tags — enough surface for
/// every pass in the chain (strengthening, promotion, LVN, load
/// elimination, constant folding, LICM, DCE, cleaning, allocation) to
/// fire on some fraction of the cases.
fn random_function(rng: &mut Rng, tags: &[TagId]) -> Function {
    let arity = rng.below(3);
    let mut b = FunctionBuilder::new("f", arity);
    let nblocks = 1 + rng.below(7);
    for _ in 1..nblocks {
        b.new_block();
    }
    let mut regs: Vec<Reg> = (0..arity as u32).map(Reg).collect();
    if regs.is_empty() {
        b.switch_to(BlockId(0));
        regs.push(b.iconst(1));
    }
    for bi in 0..nblocks {
        b.switch_to(BlockId(bi as u32));
        if b.is_terminated() {
            continue;
        }
        for _ in 0..rng.below(8) {
            let pick = |rng: &mut Rng, regs: &[Reg]| regs[rng.below(regs.len())];
            match rng.below(7) {
                0 => regs.push(b.iconst(rng.below(100) as i64)),
                1 => {
                    let (l, r) = (pick(rng, &regs), pick(rng, &regs));
                    regs.push(b.binary(BinOp::Add, l, r));
                }
                2 => {
                    // Redefine an existing register.
                    let (d, l, r) = (pick(rng, &regs), pick(rng, &regs), pick(rng, &regs));
                    b.emit(Instr::Binary {
                        op: BinOp::Mul,
                        dst: d,
                        lhs: l,
                        rhs: r,
                    });
                }
                3 => {
                    let s = pick(rng, &regs);
                    regs.push(b.copy(s));
                }
                4 => regs.push(b.sload(tags[rng.below(tags.len())])),
                5 => {
                    let s = pick(rng, &regs);
                    b.sstore(s, tags[rng.below(tags.len())]);
                }
                _ => {
                    let (d, s) = (pick(rng, &regs), pick(rng, &regs));
                    b.emit(Instr::Copy { dst: d, src: s });
                }
            }
        }
        let v = regs[rng.below(regs.len())];
        match rng.below(3) {
            0 => b.ret(None),
            1 => b.jump(BlockId(rng.below(nblocks) as u32)),
            _ => b.branch(
                v,
                BlockId(rng.below(nblocks) as u32),
                BlockId(rng.below(nblocks) as u32),
            ),
        }
    }
    b.finish()
}

fn test_tags() -> (TagTable, Vec<TagId>) {
    let mut tags = TagTable::new();
    let ids = (0..3)
        .map(|i| tags.intern(format!("g{i}"), TagKind::Global, 1))
        .collect();
    (tags, ids)
}

/// Every artifact the cache serves at the function's current version must
/// equal one built from scratch. If a pass mutated the body without
/// reporting, the cache's version keys still match and it serves the stale
/// copy — which this comparison catches.
fn assert_cache_fresh(func: &Function, fa: &mut FunctionAnalyses, case: usize, pass: &str) {
    let fresh_cfg = Cfg::build(func);
    assert_eq!(
        fa.cfg(func),
        &fresh_cfg,
        "case {case}: stale CFG after {pass}\n{func:?}"
    );
    let fresh_dom = DomTree::lengauer_tarjan(&fresh_cfg);
    assert_eq!(
        fa.dom(func),
        &fresh_dom,
        "case {case}: stale dominator tree after {pass}"
    );
    let fresh_forest = LoopForest::build(&fresh_cfg, &fresh_dom);
    assert_eq!(
        fa.cfg_forest(func).1,
        &fresh_forest,
        "case {case}: stale loop forest after {pass}"
    );
    let fresh_live = liveness(func, &fresh_cfg);
    assert_eq!(
        fa.liveness(func),
        &fresh_live,
        "case {case}: stale liveness after {pass}"
    );
}

/// Like [`assert_cache_fresh`] plus the loop geometry, which is only
/// well-defined right after loop normalization.
fn assert_cache_fresh_normalized(
    func: &Function,
    fa: &mut FunctionAnalyses,
    case: usize,
    pass: &str,
) {
    assert_cache_fresh(func, fa, case, pass);
    let fresh_cfg = Cfg::build(func);
    let fresh_dom = DomTree::lengauer_tarjan(&fresh_cfg);
    let fresh_forest = LoopForest::build(&fresh_cfg, &fresh_dom);
    let fresh_geom = LoopGeometry::compute(&fresh_cfg, &fresh_forest);
    assert_eq!(
        fa.loop_view(func).2,
        &fresh_geom,
        "case {case}: stale loop geometry after {pass}"
    );
}

/// Runs the pipeline's fused chain pass by pass on random functions with
/// one shared cache, validating every cached artifact against a
/// from-scratch build after each pass.
#[test]
fn cached_artifacts_match_fresh_builds_after_every_pass() {
    let (tags, tag_ids) = test_tags();
    let opts = regalloc::AllocOptions {
        // Few enough colors that random functions actually spill.
        num_regs: 4,
        ..Default::default()
    };
    let mut rng = Rng::new(0xCAC4_E5A1_7D1F_F00D);
    for case in 0..200 {
        let mut func = random_function(&mut rng, &tag_ids);
        let fid = FuncId(0);
        let mut fa = FunctionAnalyses::new();
        let f = &mut func;

        cfg::normalize_loops_in(f, &mut fa);
        assert_cache_fresh_normalized(f, &mut fa, case, "normalize");
        opt::strengthen_function(&tags, f, fid, false, &mut fa);
        assert_cache_fresh(f, &mut fa, case, "strengthen");
        cfg::normalize_loops_in(f, &mut fa);
        promote::promote_scalars_in_func_core(&tags, f, fid, false, None, &mut fa);
        assert_cache_fresh_normalized(f, &mut fa, case, "promote");
        opt::lvn_function(f, &mut fa);
        assert_cache_fresh(f, &mut fa, case, "lvn");
        opt::loadelim_function(f, &mut fa);
        assert_cache_fresh(f, &mut fa, case, "loadelim");
        opt::constprop_function(f, &mut fa);
        assert_cache_fresh(f, &mut fa, case, "constprop");
        cfg::normalize_loops_in(f, &mut fa);
        opt::licm_function(f, &mut fa);
        assert_cache_fresh_normalized(f, &mut fa, case, "licm");
        cfg::normalize_loops_in(f, &mut fa);
        promote::promote_pointers_in_func_core(f, &mut fa);
        assert_cache_fresh_normalized(f, &mut fa, case, "pointer-promote");
        opt::lvn_function(f, &mut fa);
        assert_cache_fresh(f, &mut fa, case, "lvn(2)");
        opt::dce_function(f, &mut fa);
        assert_cache_fresh(f, &mut fa, case, "dce");
        opt::clean_function(f, &mut fa);
        assert_cache_fresh(f, &mut fa, case, "clean");
        let mut pending = Vec::new();
        regalloc::allocate_function_core(&tags, f, fid, &opts, &mut pending, &mut fa);
        assert_cache_fresh(f, &mut fa, case, "regalloc");
        opt::clean_function(f, &mut fa);
        assert_cache_fresh(f, &mut fa, case, "clean(final)");
    }
}

/// The no-change fast path must actually be fast: once the chain has
/// converged, re-running passes may not construct a single new artifact.
/// This is the guard against over-conservative invalidation — a pass that
/// reports changes it did not make shows up here as a nonzero build delta.
#[test]
fn converged_passes_skip_all_rebuilds() {
    let (tags, tag_ids) = test_tags();
    let mut rng = Rng::new(0x5EED_CAFE_0000_0001);
    for case in 0..200 {
        let mut func = random_function(&mut rng, &tag_ids);
        let fid = FuncId(0);
        let mut fa = FunctionAnalyses::new();
        let f = &mut func;

        // Drive to a fixpoint: run the optimization passes until one full
        // round reports no changes. (LICM and normalization are excluded —
        // `clean` folds the jump-only landing pads normalization inserts,
        // so a normalize/clean round never quiesces by design; their
        // no-change fast path is asserted separately below.)
        for _ in 0..8 {
            let mut changed = 0;
            changed += opt::strengthen_function(&tags, f, fid, false, &mut fa);
            changed += opt::lvn_function(f, &mut fa);
            changed += opt::loadelim_function(f, &mut fa);
            changed += opt::constprop_function(f, &mut fa);
            changed += opt::dce_function(f, &mut fa);
            changed += opt::clean_function(f, &mut fa);
            if changed == 0 {
                break;
            }
        }

        // Warm every artifact, then snapshot the ledger.
        fa.cfg_dom_forest(f);
        fa.cfg_dom_liveness(f);
        let before = fa.builds;

        // A converged round touches nothing, so the cache must serve every
        // analysis request without a single construction.
        opt::strengthen_function(&tags, f, fid, false, &mut fa);
        opt::lvn_function(f, &mut fa);
        opt::loadelim_function(f, &mut fa);
        opt::constprop_function(f, &mut fa);
        opt::dce_function(f, &mut fa);
        opt::clean_function(f, &mut fa);

        assert_eq!(
            fa.builds, before,
            "case {case}: converged re-run rebuilt analyses\n{func:?}"
        );
    }
}

/// Loop normalization's no-change fast path: normalizing an
/// already-normalized function must not construct a single artifact (the
/// pre-cache implementation rebuilt the CFG three times and the dominator
/// tree and loop forest twice, unconditionally).
#[test]
fn renormalizing_a_normalized_function_builds_nothing() {
    let (_, tag_ids) = test_tags();
    let mut rng = Rng::new(0x0BAD_5EED_0000_0002);
    for case in 0..200 {
        let mut func = random_function(&mut rng, &tag_ids);
        let mut fa = FunctionAnalyses::new();
        cfg::normalize_loops_in(&mut func, &mut fa);
        let before = fa.builds;
        cfg::normalize_loops_in(&mut func, &mut fa);
        assert_eq!(
            fa.builds, before,
            "case {case}: re-normalization rebuilt analyses\n{func:?}"
        );
    }
}
