//! Differential test of the sparse worklist dataflow solvers against the
//! dense full-resweep fixpoints they replaced, on randomized functions.
//!
//! Two bug classes hide in a worklist solver. *Under-propagation*: a
//! changed fact fails to re-enqueue a dependent block (a missed
//! subscription, a bad direction, a dropped unreachable-predecessor
//! edge), so the solver stops short of the fixpoint and silently reports
//! smaller sets. *Over-pruning*: SCCP's executable-edge tracking marks a
//! runtime-reachable path dead and constprop folds a value that is not
//! actually constant. Both produce answers that look plausible in
//! isolation — the only reliable oracle is the dense solver, which visits
//! everything until nothing changes. These tests drive both solvers over
//! the same randomized inputs (loops, irreducible tangles, unreachable
//! blocks, redefinitions) and demand exact agreement where the problems
//! are precision-equal (liveness, DCE, load elimination, points-to) and
//! lattice-ordered agreement where sparse is deliberately stronger
//! (conditional constant propagation).
//!
//! Random inputs come from an in-tree xorshift64* generator: every case
//! is reproducible from the fixed seed and no external crates are needed
//! (the build must work offline).

use cfg::{liveness_dense, Cfg, FunctionAnalyses};
use ir::{BinOp, BlockId, Function, FunctionBuilder, Instr, Reg, TagId, TagKind, TagTable};
use opt::Lat;

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a function with random register dataflow, random multi-block
/// control flow (loops, irreducible tangles, and unreachable blocks
/// included), constant-guarded branches for SCCP to prune, and scalar
/// loads/stores through a small set of global tags for the memory
/// problems to chew on.
fn random_function(rng: &mut Rng, tags: &[TagId]) -> Function {
    let arity = rng.below(3);
    let mut b = FunctionBuilder::new("f", arity);
    let nblocks = 1 + rng.below(7);
    for _ in 1..nblocks {
        b.new_block();
    }
    let mut regs: Vec<Reg> = (0..arity as u32).map(Reg).collect();
    if regs.is_empty() {
        b.switch_to(BlockId(0));
        regs.push(b.iconst(1));
    }
    for bi in 0..nblocks {
        b.switch_to(BlockId(bi as u32));
        if b.is_terminated() {
            continue;
        }
        for _ in 0..rng.below(8) {
            let pick = |rng: &mut Rng, regs: &[Reg]| regs[rng.below(regs.len())];
            match rng.below(7) {
                0 => regs.push(b.iconst(rng.below(100) as i64)),
                1 => {
                    let (l, r) = (pick(rng, &regs), pick(rng, &regs));
                    regs.push(b.binary(BinOp::Add, l, r));
                }
                2 => {
                    // Redefine an existing register.
                    let (d, l, r) = (pick(rng, &regs), pick(rng, &regs), pick(rng, &regs));
                    b.emit(Instr::Binary {
                        op: BinOp::Mul,
                        dst: d,
                        lhs: l,
                        rhs: r,
                    });
                }
                3 => {
                    let s = pick(rng, &regs);
                    regs.push(b.copy(s));
                }
                4 => regs.push(b.sload(tags[rng.below(tags.len())])),
                5 => {
                    let s = pick(rng, &regs);
                    b.sstore(s, tags[rng.below(tags.len())]);
                }
                _ => {
                    let (d, s) = (pick(rng, &regs), pick(rng, &regs));
                    b.emit(Instr::Copy { dst: d, src: s });
                }
            }
        }
        // A quarter of branch conditions are fresh constants, so SCCP's
        // executable-edge pruning actually fires on these inputs.
        let v = if rng.below(4) == 0 {
            b.iconst(rng.below(2) as i64)
        } else {
            regs[rng.below(regs.len())]
        };
        match rng.below(3) {
            0 => b.ret(None),
            1 => b.jump(BlockId(rng.below(nblocks) as u32)),
            _ => b.branch(
                v,
                BlockId(rng.below(nblocks) as u32),
                BlockId(rng.below(nblocks) as u32),
            ),
        }
    }
    b.finish()
}

fn test_tags() -> (TagTable, Vec<TagId>) {
    let mut tags = TagTable::new();
    let ids = (0..3)
        .map(|i| tags.intern(format!("g{i}"), TagKind::Global, 1))
        .collect();
    (tags, ids)
}

fn sparse_cache() -> FunctionAnalyses {
    FunctionAnalyses::new()
}

fn dense_cache() -> FunctionAnalyses {
    let mut fa = FunctionAnalyses::new();
    fa.set_dense_dataflow(true);
    fa
}

/// The sparse backward-worklist liveness must compute exactly the dense
/// solver's least fixpoint — liveness has no sparse-only precision, so
/// any discrepancy is an under-propagation bug.
#[test]
fn sparse_liveness_matches_dense_on_random_functions() {
    let (_, tag_ids) = test_tags();
    let mut rng = Rng::new(0xD1FF_0000_0000_0001);
    for case in 0..300 {
        let func = random_function(&mut rng, &tag_ids);
        let mut fa = sparse_cache();
        let dense = liveness_dense(&func, &Cfg::build(&func));
        assert_eq!(
            fa.liveness(&func),
            &dense,
            "case {case}: sparse liveness diverged from dense\n{func:?}"
        );
    }
}

/// Block-scoped invalidation: after editing one block and reporting only
/// that block dirty, the partially-rescanned summaries must still produce
/// the exact fresh fixpoint. A stale-summary bug (the rescan missing a
/// block it needed) shows up as a liveness mismatch here.
#[test]
fn incremental_liveness_after_scoped_edit_matches_fresh() {
    let (_, tag_ids) = test_tags();
    let mut rng = Rng::new(0xD1FF_0000_0000_0002);
    for case in 0..300 {
        let mut func = random_function(&mut rng, &tag_ids);
        let mut fa = sparse_cache();
        fa.liveness(&func); // warm the summaries
                            // Edit one random block: define a fresh register and feed it to
                            // the terminator's block via a use in the same block (an
                            // insertion that changes both use and def summaries there).
        let bi = rng.below(func.blocks.len());
        let new = Reg(func.next_reg);
        func.next_reg += 1;
        func.blocks[bi]
            .instrs
            .insert(0, Instr::IConst { dst: new, value: 7 });
        func.blocks[bi].instrs.insert(
            1,
            Instr::Binary {
                op: BinOp::Add,
                dst: new,
                lhs: new,
                rhs: new,
            },
        );
        fa.note_body_changed_blocks([BlockId(bi as u32)]);
        let fresh = liveness_dense(&func, &Cfg::build(&func));
        assert_eq!(
            fa.liveness(&func),
            &fresh,
            "case {case}: incremental liveness diverged after editing block {bi}\n{func:?}"
        );
    }
}

/// DCE's CSR-worklist marking and loadelim's forward worklist are
/// precision-equal to their dense versions, so the rewritten functions
/// must come out byte-identical.
#[test]
fn sparse_dce_and_loadelim_rewrite_identically_to_dense() {
    let (_, tag_ids) = test_tags();
    let mut rng = Rng::new(0xD1FF_0000_0000_0003);
    for case in 0..300 {
        let func = random_function(&mut rng, &tag_ids);

        let mut f_sparse = func.clone();
        let mut f_dense = func.clone();
        let ns = opt::dce_function(&mut f_sparse, &mut sparse_cache());
        let nd = opt::dce_function(&mut f_dense, &mut dense_cache());
        assert_eq!(ns, nd, "case {case}: dce removal counts diverged");
        assert_eq!(
            f_sparse, f_dense,
            "case {case}: dce output diverged\n{func:?}"
        );

        let mut f_sparse = func.clone();
        let mut f_dense = func.clone();
        let ns = opt::loadelim_function(&mut f_sparse, &mut sparse_cache());
        let nd = opt::loadelim_function(&mut f_dense, &mut dense_cache());
        assert_eq!(ns, nd, "case {case}: loadelim rewrite counts diverged");
        assert_eq!(
            f_sparse, f_dense,
            "case {case}: loadelim output diverged\n{func:?}"
        );
    }
}

/// Conditional constant propagation is *deliberately* stronger than the
/// dense solver, but only in one direction. The lattice invariant: every
/// block the sparse solver marks executable is executable under dense
/// reachability, and on those blocks each register's sparse value is at
/// or above the dense value in the lattice order (meet(sparse, dense) ==
/// dense). A sparse value *below* dense means SCCP wrongly pruned a path
/// that feeds the join.
#[test]
fn sccp_lattice_dominates_dense_on_executable_blocks() {
    let (_, tag_ids) = test_tags();
    let mut rng = Rng::new(0xD1FF_0000_0000_0004);
    for case in 0..300 {
        let func = random_function(&mut rng, &tag_ids);
        let mut stats = cfg::DataflowStats::default();
        let cfg = Cfg::build(&func);
        let sparse = opt::analyze_constants(&func, &cfg, false, &mut stats);
        let dense = opt::analyze_constants(&func, &cfg, true, &mut stats);
        for bi in 0..func.blocks.len() {
            if !sparse.executable[bi] {
                continue;
            }
            assert!(
                dense.executable[bi],
                "case {case}: sparse marked block {bi} executable but dense did not"
            );
            for (r, (s, d)) in sparse.input[bi].iter().zip(&dense.input[bi]).enumerate() {
                assert_eq!(
                    Lat::meet(*s, *d),
                    *d,
                    "case {case}: r{r} at block {bi}: sparse {s:?} is not \
                     at-or-above dense {d:?}\n{func:?}"
                );
            }
        }
    }
}

/// The SCCP payoff the dense solver cannot deliver: a branch on a known
/// constant makes one arm non-executable, so the join only meets the
/// taken arm's value and the fold goes through. The dense solver joins
/// both arms and must leave the add alone.
#[test]
fn sccp_folds_through_a_dead_branch_arm_where_dense_cannot() {
    let build = || {
        let mut b = FunctionBuilder::new("f", 0);
        for _ in 0..3 {
            b.new_block();
        }
        // B0: c = 1; branch c, B1, B2
        let c = b.iconst(1);
        b.branch(c, BlockId(1), BlockId(2));
        // B1: x = 5; jump B3
        b.switch_to(BlockId(1));
        let x = b.iconst(5);
        b.emit(Instr::Copy {
            dst: Reg(9),
            src: x,
        });
        b.jump(BlockId(3));
        // B2 (dead): x' = 7; jump B3
        b.switch_to(BlockId(2));
        let y = b.iconst(7);
        b.emit(Instr::Copy {
            dst: Reg(9),
            src: y,
        });
        b.jump(BlockId(3));
        // B3: sum = r9 + r9; ret
        b.switch_to(BlockId(3));
        b.emit(Instr::Binary {
            op: BinOp::Add,
            dst: Reg(10),
            lhs: Reg(9),
            rhs: Reg(9),
        });
        b.ret(Some(Reg(10)));
        let mut f = b.finish();
        f.has_result = true;
        f.next_reg = f.next_reg.max(11);
        f
    };

    let mut f_sparse = build();
    opt::constprop_function(&mut f_sparse, &mut sparse_cache());
    let folded = f_sparse.blocks[3].instrs.iter().any(|i| {
        matches!(
            i,
            Instr::IConst {
                dst: Reg(10),
                value: 10
            }
        )
    });
    assert!(
        folded,
        "sparse constprop must fold r10 = r9 + r9 to 10 through the dead arm\n{f_sparse:?}"
    );

    let mut f_dense = build();
    opt::constprop_function(&mut f_dense, &mut dense_cache());
    let folded = f_dense.blocks[3]
        .instrs
        .iter()
        .any(|i| matches!(i, Instr::IConst { dst: Reg(10), .. }));
    assert!(
        !folded,
        "dense constprop sees both arms (5 meet 7 = ⊥) and must not fold\n{f_dense:?}"
    );
}

/// The demand-driven points-to solver must reach exactly the dense
/// round-robin fixpoint on whole programs, including function pointers
/// flowing through globals and return values crossing function
/// boundaries.
#[test]
fn demand_driven_points_to_matches_dense_on_minic_programs() {
    let programs = [
        r#"
int g;
int *p;
int pick;
int deref() { return *p; }
void setup() { p = &g; }
int main() {
    setup();
    g = 41;
    if (pick) { g = g + 1; }
    print_int(deref());
    return 0;
}
"#,
        r#"
int a;
int b;
int apply(int x) { return x + a; }
int twice(int x) { return apply(apply(x)); }
int main() {
    a = 3;
    b = twice(4);
    print_int(b);
    return 0;
}
"#,
    ];
    for (i, src) in programs.iter().enumerate() {
        let module = minic::compile(src).expect("compiles");
        let mut stats = cfg::DataflowStats::default();
        let sparse = analysis::points_to_analyze_with(&module, false, &mut stats);
        let dense = analysis::points_to_analyze_with(&module, true, &mut stats);
        assert_eq!(
            sparse.reg_pts, dense.reg_pts,
            "program {i}: register points-to sets diverged"
        );
        assert_eq!(
            sparse.tag_pts, dense.tag_pts,
            "program {i}: tag points-to sets diverged"
        );
    }
}

/// End to end: the full pipeline in sparse and dense modes may print
/// different IL (SCCP folds more), but both must be semantically correct
/// — same program output, and the sparse pipeline's solver work must be
/// strictly below the dense pipeline's.
#[test]
fn pipeline_modes_agree_on_program_output() {
    let src = r#"
int g;
int h;
void bump() { h = h + 1; }
int main() {
    int i;
    int mode = 0;
    for (i = 0; i < 100; i++) {
        if (mode) { g = g + 2; } else { g = g + 1; }
        bump();
    }
    print_int(g);
    print_int(h);
    return 0;
}
"#;
    let sparse_cfg = driver::PipelineConfig::builder().threads(Some(1)).build();
    let dense_cfg = driver::PipelineConfig::builder()
        .threads(Some(1))
        .sparse_dataflow(false)
        .build();
    let run = |cfg| {
        let c = driver::Session::from_config(cfg)
            .compile_and_run(src)
            .expect("pipeline runs");
        (c.outcome.expect("outcome populated"), c.report)
    };
    let (out_s, rep_s) = run(sparse_cfg);
    let (out_d, rep_d) = run(dense_cfg);
    assert_eq!(out_s.output, out_d.output, "pipeline modes diverged");
    assert_eq!(out_s.output, vec!["100", "100"]);
    assert!(
        rep_s.dataflow_stats.transfer_evals < rep_d.dataflow_stats.transfer_evals,
        "sparse ({}) must do strictly less transfer work than dense ({})",
        rep_s.dataflow_stats.transfer_evals,
        rep_d.dataflow_stats.transfer_evals
    );
}
