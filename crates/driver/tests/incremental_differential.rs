//! Differential tests for content-addressed incremental recompilation:
//! a warm `Session` (with its per-function cache) must produce output,
//! report counters, and remark streams byte-identical to a cold compile
//! of the same source — across randomized edit sequences and at several
//! worker counts — while recompiling only the functions an edit actually
//! reaches.

use driver::Session;

/// A four-knob program: each knob perturbs exactly one function's body.
fn program(v: &[u64; 4]) -> String {
    format!(
        r#"
int g;
int h;
int acc;

int leaf(int x) {{
    return x * {} + 1;
}}

int bump() {{
    g = g + {};
    return g;
}}

int mix(int a, int b) {{
    int i;
    int s;
    s = 0;
    for (i = 0; i < {}; i++) {{
        s = s + leaf(i) + a * b;
        acc = acc + s;
    }}
    return s;
}}

int main() {{
    int i;
    for (i = 0; i < {}; i++) {{
        h = h + bump();
    }}
    print_int(mix(g, h));
    print_int(g);
    print_int(h);
    print_int(acc);
    return 0;
}}
"#,
        v[0], v[1], v[2], v[3]
    )
}

fn incremental_session(threads: usize) -> Session {
    Session::builder()
        .threads(Some(threads))
        .trace(true)
        .incremental(true)
        .build()
}

fn cold_session(threads: usize) -> Session {
    Session::builder()
        .threads(Some(threads))
        .trace(true)
        .build()
}

/// Deterministic xorshift for edit-sequence generation.
fn next(seed: &mut u64) -> u64 {
    let mut x = *seed;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *seed = x;
    x
}

#[test]
fn warm_compiles_are_byte_identical_to_cold_across_edits() {
    for threads in [1usize, 2, 8] {
        let warm = incremental_session(threads);
        let cold = cold_session(threads);
        let mut knobs = [3u64, 1, 10, 5];
        let mut seed = 0x1CEB00DAu64 ^ threads as u64;
        for step in 0..6 {
            if step > 0 {
                // Randomized single-function edit: bump one knob.
                let k = (next(&mut seed) % 4) as usize;
                knobs[k] = 1 + next(&mut seed) % 7;
            }
            let src = program(&knobs);
            let w = warm.compile_and_run(&src).expect("warm compile");
            let c = cold.compile_and_run(&src).expect("cold compile");
            let label = format!("threads={threads} step={step} knobs={knobs:?}");
            assert_eq!(
                w.module.to_string(),
                c.module.to_string(),
                "IL differs: {label}"
            );
            assert_eq!(
                w.remarks_text(),
                c.remarks_text(),
                "remarks differ: {label}"
            );
            assert_eq!(
                w.trace_jsonl(),
                c.trace_jsonl(),
                "trace JSONL differs: {label}"
            );
            assert_eq!(
                w.outcome.as_ref().unwrap().output,
                c.outcome.as_ref().unwrap().output,
                "run output differs: {label}"
            );
            // The replayed counters must match too — the warm report is
            // indistinguishable from cold except for its incremental
            // section.
            assert_eq!(w.report.strengthened, c.report.strengthened, "{label}");
            assert_eq!(w.report.promotion, c.report.promotion, "{label}");
            assert_eq!(w.report.alloc, c.report.alloc, "{label}");
            assert_eq!(w.report.lvn_rewrites, c.report.lvn_rewrites, "{label}");
            assert_eq!(w.report.dce_removed, c.report.dce_removed, "{label}");
            let incr = w.report.incremental.as_ref().expect("incremental report");
            assert!(c.report.incremental.is_none());
            if step > 0 {
                // A single-function edit must leave most of the module
                // cached.
                assert!(
                    incr.cache_hits >= 1,
                    "no cache hits after an edit: {label} {incr:?}"
                );
                assert!(
                    !w.trace.cached_funcs().is_empty(),
                    "no cached-replay markers: {label}"
                );
            }
        }
    }
}

#[test]
fn identical_recompile_hits_every_function() {
    let warm = incremental_session(2);
    let src = program(&[3, 1, 10, 5]);
    let first = warm.compile(&src).expect("first compile");
    let i1 = first.report.incremental.as_ref().unwrap();
    assert_eq!(i1.cache_hits, 0);
    assert_eq!(i1.funcs_recompiled, i1.funcs_total);
    let second = warm.compile(&src).expect("second compile");
    let i2 = second.report.incremental.as_ref().unwrap();
    assert_eq!(i2.funcs_recompiled, 0, "{i2:?}");
    assert_eq!(i2.cache_hits, i2.funcs_total);
    assert!((i2.hit_rate() - 1.0).abs() < f64::EPSILON);
    assert_eq!(first.module.to_string(), second.module.to_string());
}

#[test]
fn pure_body_edit_recompiles_only_the_edited_function() {
    let warm = incremental_session(2);
    // `leaf` touches no memory, so editing its arithmetic changes no
    // MOD/REF summary: callers keep their fingerprints.
    let v0 = program(&[3, 1, 10, 5]);
    let v1 = program(&[4, 1, 10, 5]);
    warm.compile(&v0).expect("seed compile");
    let c = warm.compile(&v1).expect("warm edit");
    let incr = c.report.incremental.as_ref().unwrap();
    assert_eq!(
        incr.funcs_recompiled, 1,
        "only `leaf` should recompile: {incr:?}"
    );
    assert_eq!(incr.summary_invalidated, 0, "{incr:?}");
    assert_eq!(incr.cache_hits, incr.funcs_total - 1);
}

#[test]
fn callee_modref_change_invalidates_exactly_the_callers() {
    let warm = incremental_session(2);
    let v0 = "
int g;
int unrelated() { return 5; }
int leaf() { return 1; }
int main() {
    print_int(leaf() + unrelated());
    print_int(g);
    return 0;
}
";
    // The edit makes `leaf` write a global: its MOD summary changes, so
    // `main` (its only caller) must be recompiled even though `main`'s
    // own body is untouched. `unrelated` must stay cached.
    let v1 = v0.replace(
        "int leaf() { return 1; }",
        "int leaf() { g = 7; return 1; }",
    );
    warm.compile(v0).expect("seed compile");
    let c = warm.compile(&v1).expect("warm edit");
    let incr = c.report.incremental.as_ref().unwrap();
    assert_eq!(incr.funcs_total, 3);
    assert_eq!(
        incr.funcs_recompiled, 2,
        "`leaf` (edited) + `main` (summary-invalidated): {incr:?}"
    );
    assert_eq!(
        incr.summary_invalidated, 1,
        "`main`'s body hash is unchanged: {incr:?}"
    );
    assert_eq!(incr.cache_hits, 1, "`unrelated` stays cached: {incr:?}");
    assert!(c.trace.is_cached("unrelated"));
    assert!(!c.trace.is_cached("main"));
    // And the result still matches a cold compile.
    let cold = cold_session(2).compile(&v1).expect("cold compile");
    assert_eq!(c.module.to_string(), cold.module.to_string());
    assert_eq!(c.remarks_text(), cold.remarks_text());
}

#[test]
fn inserting_a_function_keeps_unchanged_functions_cached() {
    // Inserting a definition shifts every later function's module index
    // and tag ids; the canonical (name-resolved) hashes must see through
    // the shift and the splice must remap ids into the new module.
    let warm = incremental_session(2);
    let v0 = "
int g;
int work() { g = g + 3; return g; }
int main() { print_int(work()); return 0; }
";
    let v1 = "
int g;
int fresh(int x) { return x + 1; }
int work() { g = g + 3; return g; }
int main() { print_int(work()); return 0; }
";
    warm.compile(v0).expect("seed compile");
    let c = warm.compile(v1).expect("warm edit");
    let incr = c.report.incremental.as_ref().unwrap();
    assert_eq!(incr.funcs_total, 3);
    // `work` and `main` are textually unchanged and call nothing new.
    assert_eq!(incr.cache_hits, 2, "{incr:?}");
    assert_eq!(incr.funcs_recompiled, 1, "{incr:?}");
    let cold = cold_session(2).compile(v1).expect("cold compile");
    assert_eq!(c.module.to_string(), cold.module.to_string());
}

#[test]
fn tiny_cache_budget_still_compiles_correctly() {
    let warm = Session::builder()
        .threads(Some(2))
        .trace(true)
        .incremental(true)
        .cache_budget(1)
        .build();
    let src = program(&[3, 1, 10, 5]);
    let first = warm.compile_and_run(&src).expect("first compile");
    let i1 = first.report.incremental.as_ref().unwrap();
    assert!(i1.evictions > 0, "budget of 1 byte must evict: {i1:?}");
    assert!(i1.cache_bytes <= 1);
    // Everything was evicted, so the second compile misses across the
    // board — and still produces the right program.
    let second = warm.compile_and_run(&src).expect("second compile");
    let i2 = second.report.incremental.as_ref().unwrap();
    assert_eq!(i2.cache_hits, 0, "{i2:?}");
    assert_eq!(
        first.module.to_string(),
        second.module.to_string(),
        "eviction must not change output"
    );
    assert_eq!(
        first.outcome.as_ref().unwrap().output,
        second.outcome.as_ref().unwrap().output
    );
}

#[test]
fn optimize_entry_point_uses_the_cache_without_hints() {
    // `Session::optimize` has no source text, so fingerprints come from
    // the canonical IR walk alone — hits must still happen.
    let warm = incremental_session(1);
    let src = "int g; int main() { g = 41; print_int(g + 1); return 0; }";
    let mut m1 = minic::compile(src).expect("lowering");
    let (r1, _) = warm.optimize(&mut m1).expect("first optimize");
    assert_eq!(r1.incremental.as_ref().unwrap().cache_hits, 0);
    let mut m2 = minic::compile(src).expect("lowering");
    let (r2, _) = warm.optimize(&mut m2).expect("second optimize");
    let incr = r2.incremental.as_ref().unwrap();
    assert_eq!(incr.funcs_recompiled, 0, "{incr:?}");
    assert_eq!(m1.to_string(), m2.to_string());
}
