//! Allocation-budget regression test for the zero-allocation hot loop.
//!
//! The steady-state claim — a warm session compiles a program it has seen
//! before almost entirely out of recycled shells and per-worker scratch
//! arenas — is enforced here as a hard budget, not just reported by the
//! benchmark. The test installs [`trace::CountingAlloc`] as the process
//! allocator, warms a single-threaded session on every suite program
//! once, then counts allocator calls across a second compile of each and
//! pins the total. The budget is the benchmark's measured steady state
//! (~1.5k calls across the suite) plus headroom for platform variance;
//! losing scratch reuse anywhere in the chain puts the total back in the
//! fresh-allocation regime (~10k calls) and trips the gate immediately.
//!
//! Counts, not bytes, are pinned: a count regression means a per-function
//! allocation crept back into a pass loop, which is exactly the bug class
//! this PR removes.

#[global_allocator]
static ALLOC: trace::CountingAlloc = trace::CountingAlloc;

use driver::Session;
use trace::AllocStats;

/// Upper bound on allocator calls for one steady-state compile of the
/// whole suite. Measured at ~1.5k after the scratch-arena work (vs ~10k
/// with `reuse_scratch` off); the slack covers allocator-independent
/// noise, not a regression.
const STEADY_STATE_ALLOC_BUDGET: u64 = 2_600;

/// Upper bound on allocator calls for one steady-state *front-end*
/// compile of the whole suite (lex + parse + lower on a warm
/// [`minic::Frontend`]). Measured at ~1.6k after the interned front end
/// landed (vs ~8.7k through `minic::classic`); mirrors the
/// `--max-frontend-allocs` CI gate.
const FRONTEND_ALLOC_BUDGET: u64 = 2_500;

#[test]
fn steady_state_suite_compile_stays_within_alloc_budget() {
    let session = Session::builder()
        .threads(Some(1))
        .reuse_scratch(true)
        .build();
    // Parse everything up front so frontend traffic stays out of the
    // measurement, then warm the pool on a first compile of each program.
    let modules: Vec<ir::Module> = benchsuite::SUITE
        .iter()
        .map(|b| minic::compile(b.source).expect("suite program compiles"))
        .collect();
    for module in &modules {
        let mut warm = module.clone();
        session.optimize(&mut warm).expect("warmup run validates");
    }
    // Steady state: a second compile of every program on the warm pool.
    let mut total = AllocStats::default();
    for (b, module) in benchsuite::SUITE.iter().zip(&modules) {
        let mut m = module.clone();
        let before = AllocStats::now();
        session
            .optimize(&mut m)
            .expect("steady-state run validates");
        let used = AllocStats::now().since(&before);
        total.merge(&used);
        // Per-program sanity in the failure message: which program blew up.
        assert!(
            used.count <= STEADY_STATE_ALLOC_BUDGET,
            "steady-state compile of {} alone used {} allocs (budget for the \
             whole suite is {STEADY_STATE_ALLOC_BUDGET})",
            b.name,
            used.count,
        );
    }
    assert!(
        total.count <= STEADY_STATE_ALLOC_BUDGET,
        "steady-state suite compile used {} allocs ({} KiB), budget is \
         {STEADY_STATE_ALLOC_BUDGET} — a per-function allocation has crept \
         back into the hot loop",
        total.count,
        total.bytes / 1024,
    );
}

#[test]
fn steady_state_frontend_compile_stays_within_alloc_budget() {
    let mut fe = minic::Frontend::new();
    // Warm the interner, token buffer, and AST pools on a first compile
    // of every program.
    for b in benchsuite::SUITE {
        fe.compile(b.source).expect("suite program compiles");
    }
    // Steady state: a second front-end compile of every program on the
    // warm buffers.
    let mut total = AllocStats::default();
    for b in benchsuite::SUITE {
        let before = AllocStats::now();
        let module = fe.compile(b.source).expect("suite program compiles");
        let used = AllocStats::now().since(&before);
        drop(module);
        total.merge(&used);
        assert!(
            used.count <= FRONTEND_ALLOC_BUDGET,
            "steady-state front-end compile of {} alone used {} allocs \
             (budget for the whole suite is {FRONTEND_ALLOC_BUDGET})",
            b.name,
            used.count,
        );
    }
    assert!(
        total.count <= FRONTEND_ALLOC_BUDGET,
        "steady-state front-end suite compile used {} allocs ({} KiB), \
         budget is {FRONTEND_ALLOC_BUDGET} — a per-compile allocation has \
         crept back into the lexer, parser, or lowerer",
        total.count,
        total.bytes / 1024,
    );
}
