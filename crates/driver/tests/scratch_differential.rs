//! Differential test of scratch-arena reuse against fresh-allocation
//! compilation on randomized modules.
//!
//! The zero-allocation hot loop threads per-worker [`driver::PassScratch`]
//! arenas and pool-recycled analysis shells through every pass. Two bug
//! classes hide in that kind of reuse. *Leakage*: a pass reads state left
//! behind by the previous function (a dense table whose generation stamp
//! was not bumped, a worklist that was not drained, a recycled shell whose
//! version keys alias a different function's body), so the output depends
//! on compilation order or worker count. *Partial clearing*: an epoch
//! reset that skips one side table produces correct output for most
//! functions and garbage only when the stale entry happens to collide.
//! Both produce miscompiles that no single-compile test catches — the only
//! reliable oracle is the fresh-scratch configuration, which allocates
//! everything per function. These tests compile the same randomized
//! modules under both configurations at several worker counts and demand
//! byte-identical printed IL and an identical remark stream.
//!
//! Random inputs come from an in-tree xorshift64* generator: every case
//! is reproducible from the fixed seed and no external crates are needed
//! (the build must work offline).

use driver::Session;
use ir::{BinOp, BlockId, Function, FunctionBuilder, Instr, Module, Reg, TagId, TagKind, TagTable};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a function with random register dataflow, random multi-block
/// control flow (loops and irreducible tangles included), and scalar
/// loads/stores through a small set of global tags — enough surface for
/// every pass in the chain to fire on some fraction of the cases.
fn random_function(name: &str, rng: &mut Rng, tags: &[TagId]) -> Function {
    let arity = rng.below(3);
    let mut b = FunctionBuilder::new(name, arity);
    let nblocks = 1 + rng.below(7);
    for _ in 1..nblocks {
        b.new_block();
    }
    let mut regs: Vec<Reg> = (0..arity as u32).map(Reg).collect();
    if regs.is_empty() {
        b.switch_to(BlockId(0));
        regs.push(b.iconst(1));
    }
    for bi in 0..nblocks {
        b.switch_to(BlockId(bi as u32));
        if b.is_terminated() {
            continue;
        }
        for _ in 0..rng.below(8) {
            let pick = |rng: &mut Rng, regs: &[Reg]| regs[rng.below(regs.len())];
            match rng.below(7) {
                0 => regs.push(b.iconst(rng.below(100) as i64)),
                1 => {
                    let (l, r) = (pick(rng, &regs), pick(rng, &regs));
                    regs.push(b.binary(BinOp::Add, l, r));
                }
                2 => {
                    // Redefine an existing register.
                    let (d, l, r) = (pick(rng, &regs), pick(rng, &regs), pick(rng, &regs));
                    b.emit(Instr::Binary {
                        op: BinOp::Mul,
                        dst: d,
                        lhs: l,
                        rhs: r,
                    });
                }
                3 => {
                    let s = pick(rng, &regs);
                    regs.push(b.copy(s));
                }
                4 => regs.push(b.sload(tags[rng.below(tags.len())])),
                5 => {
                    let s = pick(rng, &regs);
                    b.sstore(s, tags[rng.below(tags.len())]);
                }
                _ => {
                    let (d, s) = (pick(rng, &regs), pick(rng, &regs));
                    b.emit(Instr::Copy { dst: d, src: s });
                }
            }
        }
        let v = regs[rng.below(regs.len())];
        match rng.below(3) {
            0 => b.ret(None),
            1 => b.jump(BlockId(rng.below(nblocks) as u32)),
            _ => b.branch(
                v,
                BlockId(rng.below(nblocks) as u32),
                BlockId(rng.below(nblocks) as u32),
            ),
        }
    }
    b.finish()
}

/// A module of several random functions over a shared tag table —
/// enough functions that a multi-worker run actually interleaves them.
fn random_module(rng: &mut Rng) -> Module {
    let mut module = Module::new();
    let mut tags = TagTable::new();
    let tag_ids: Vec<TagId> = (0..3)
        .map(|i| tags.intern(format!("g{i}"), TagKind::Global, 1))
        .collect();
    module.tags = tags;
    let nfuncs = 1 + rng.below(5);
    for i in 0..nfuncs {
        module
            .funcs
            .push(random_function(&format!("f{i}"), rng, &tag_ids));
    }
    module
}

/// Compiles a copy of `module` on `session`, returning the printed IL and
/// the serialized remark stream.
fn compile_on(session: &Session, module: &Module) -> (String, String) {
    let mut m = module.clone();
    let (_report, log) = session.optimize(&mut m).expect("pipeline must validate");
    (m.to_string(), log.to_jsonl())
}

fn session(threads: usize, reuse_scratch: bool) -> Session {
    Session::builder()
        .threads(Some(threads))
        .reuse_scratch(reuse_scratch)
        .trace(true)
        .build()
}

/// Fresh-scratch and reused-scratch compilation must be byte-identical —
/// same printed IL, same remark stream — at every worker count. The
/// reused-scratch sessions are built once and fed every case in sequence,
/// so each case (after the first) runs on arenas and recycled shells the
/// previous cases dirtied.
#[test]
fn scratch_reuse_is_byte_identical_across_workers() {
    let mut rng = Rng::new(0x5C2A_7C41_0DDB_EEF5);
    let reused: Vec<Session> = [1, 2, 8].iter().map(|&w| session(w, true)).collect();
    let fresh: Vec<Session> = [1, 2, 8].iter().map(|&w| session(w, false)).collect();
    for case in 0..40 {
        let module = random_module(&mut rng);
        let (want_il, want_remarks) = compile_on(&fresh[0], &module);
        for (s, workers) in fresh.iter().zip([1, 2, 8]).skip(1) {
            let (il, remarks) = compile_on(s, &module);
            assert_eq!(il, want_il, "case {case}: fresh scratch, {workers} workers");
            assert_eq!(
                remarks, want_remarks,
                "case {case}: fresh-scratch remarks, {workers} workers"
            );
        }
        for (s, workers) in reused.iter().zip([1, 2, 8]) {
            let (il, remarks) = compile_on(s, &module);
            assert_eq!(
                il, want_il,
                "case {case}: reused scratch, {workers} workers"
            );
            assert_eq!(
                remarks, want_remarks,
                "case {case}: reused-scratch remarks, {workers} workers"
            );
        }
    }
}

/// Two consecutive runs of the same module on one session must agree with
/// each other and with a fresh-scratch session: the second run executes
/// entirely on the warm pool (recycled shells, dirtied arenas) that the
/// first run left behind.
#[test]
fn consecutive_runs_on_one_pool_agree() {
    let mut rng = Rng::new(0xB1A5_ED5E_55C7_A7C8);
    let warm = session(2, true);
    for case in 0..25 {
        let module = random_module(&mut rng);
        let (want_il, want_remarks) = compile_on(&session(1, false), &module);
        let first = compile_on(&warm, &module);
        let second = compile_on(&warm, &module);
        assert_eq!(first.0, want_il, "case {case}: first warm run");
        assert_eq!(second.0, want_il, "case {case}: second warm run");
        assert_eq!(first.1, want_remarks, "case {case}: first warm remarks");
        assert_eq!(second.1, want_remarks, "case {case}: second warm remarks");
    }
}
