//! Differential test of the interned, pool-recycling front end against
//! the preserved baseline front end (`minic::classic`).
//!
//! The interned front end replaces `String` identifiers with `u32`
//! symbols, `Box`-based AST nodes with ids into per-module pools, and
//! per-compile allocations with buffers recycled across compiles. Three
//! bug classes hide in that rewrite. *Ordering drift*: lowering iterates
//! a table whose order changed with the key type, so tags or registers
//! come out renumbered. *Stale reuse*: a pool or interner entry left over
//! from the previous program leaks into the next one, so output depends
//! on compilation order. *Semantic drift*: the ported parser or lowerer
//! diverges from the original on some corner of the grammar. All three
//! are caught the same way: compile the whole benchmark suite with both
//! front ends — the warm front end fed every program in sequence on the
//! same recycled buffers — and demand byte-identical printed IL, and an
//! identical remark stream once each module runs through one pipeline.

use driver::Session;

/// Every benchmark must produce byte-identical unoptimized IL from the
/// classic front end and from a warm [`minic::Frontend`] that has already
/// compiled every preceding program on the same buffers.
#[test]
fn interned_frontend_matches_classic_on_benchsuite() {
    let mut warm = minic::Frontend::new();
    for bench in benchsuite::SUITE {
        let classic = minic::classic::compile(bench.source)
            .unwrap_or_else(|e| panic!("{}: classic front end failed: {e}", bench.name));
        let interned = warm
            .compile(bench.source)
            .unwrap_or_else(|e| panic!("{}: interned front end failed: {e}", bench.name));
        assert_eq!(
            ir::module_to_string(&interned),
            ir::module_to_string(&classic),
            "{}: front ends disagree on unoptimized IL",
            bench.name
        );
    }
}

/// Both front ends must also agree after the full pipeline: identical
/// printed IL and an identical remark stream. The warm session reuses one
/// front end (and one worker pool) across the whole suite, so each
/// program after the first is parsed on dirtied buffers.
#[test]
fn pipeline_output_and_remarks_agree_across_front_ends() {
    let warm = Session::builder().trace(true).build();
    let classic_session = Session::builder().trace(true).build();
    for bench in benchsuite::SUITE {
        let mut classic_module = minic::classic::compile(bench.source)
            .unwrap_or_else(|e| panic!("{}: classic front end failed: {e}", bench.name));
        let (_report, classic_log) = classic_session
            .optimize(&mut classic_module)
            .expect("pipeline must validate");
        let c = warm
            .compile(bench.source)
            .unwrap_or_else(|e| panic!("{}: warm session failed: {e}", bench.name));
        assert_eq!(
            c.module.to_string(),
            classic_module.to_string(),
            "{}: optimized IL differs between front ends",
            bench.name
        );
        assert_eq!(
            c.trace.to_jsonl(),
            classic_log.to_jsonl(),
            "{}: remark streams differ between front ends",
            bench.name
        );
    }
}

/// Error positions and messages must not drift either: a front end swap
/// that silently changes diagnostics breaks every tool parsing them.
#[test]
fn diagnostics_agree_across_front_ends() {
    let cases = [
        "int main() { return 1e; }",
        "int main() { int x = 99999999999999999999; }",
        "int main() { @ }",
        "int main() { /* never closed",
        "int main() { int x; x = y; return 0; }",
        "int main() { return \"no strings\"; }",
        "int x; int x; int main() { return 0; }",
        "void f() {} int main() { return f(); }",
        "int main() { break; }",
    ];
    let mut warm = minic::Frontend::new();
    for src in cases {
        let classic = minic::classic::compile(src).expect_err("case must fail");
        let interned = warm.compile(src).expect_err("case must fail");
        assert_eq!(
            format!("{interned}"),
            format!("{classic}"),
            "diagnostic drift on {src:?}"
        );
    }
}
