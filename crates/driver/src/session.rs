//! The `Session` driver API: one owned object holding the pipeline
//! configuration, the VM options, and the persistent worker pool, handing
//! back a [`Compilation`] artifact per program.
//!
//! This replaces the older pattern of poking [`PipelineConfig`]'s public
//! fields and calling tuple-returning free functions (deleted in API v1):
//! a session is built once, amortizes its worker pool across every program
//! it compiles, and returns module, report, trace, and run outcome as one
//! value. Execution is part of the same surface — [`Compilation::run`]
//! executes the compiled module in the instrumented VM and folds any
//! fault into the unified [`Error`].
//!
//! ```
//! use driver::Session;
//!
//! let session = Session::builder().trace(true).build();
//! let c = session.compile_and_run(
//!     r#"
//!     int counter;
//!     int main() {
//!         int i;
//!         for (i = 0; i < 100; i++) counter += 1;
//!         print_int(counter);
//!         return 0;
//!     }
//!     "#,
//! )?;
//! assert_eq!(c.outcome.as_ref().unwrap().output, vec!["100"]);
//! // The trace says *what* promotion did, structurally:
//! assert!(c
//!     .trace
//!     .remarks()
//!     .any(|(_, _, r)| matches!(r, trace::Remark::Promoted { .. })));
//! # Ok::<(), driver::Error>(())
//! ```

use crate::error::Error;
use crate::incremental::{FuncCache, DEFAULT_CACHE_BUDGET};
use crate::parallel::{resolve_threads, WorkerPool};
use crate::pipeline::{
    run_pipeline_core, run_pipeline_traced, IncrementalRun, PipelineConfig, PipelineConfigBuilder,
    PipelineReport,
};
use analysis::AnalysisLevel;
use ir::Module;
use regalloc::AllocOptions;
use std::sync::Mutex;
use trace::TraceLog;
use vm::{Outcome, Vm, VmOptions};

/// A configured compiler instance: pipeline configuration + VM options +
/// a persistent [`WorkerPool`] reused across every compilation, plus a
/// warm [`minic::Frontend`] whose interner, token buffer, and AST pools
/// are recycled across every program the session compiles.
///
/// Construct with [`Session::builder()`] (or [`Session::default()`] for
/// the paper's default arm).
pub struct Session {
    config: PipelineConfig,
    vm: VmOptions,
    pool: WorkerPool,
    /// Warm front-end buffers; behind a mutex because compilation entry
    /// points take `&self`.
    frontend: Mutex<minic::Frontend>,
    reuse_frontend: bool,
    /// The per-function incremental cache, present when the session was
    /// built with [`SessionBuilder::incremental`]. Compiles on such a
    /// session splice fingerprint-matching functions from here instead of
    /// re-running the fused pass chain.
    cache: Option<Mutex<FuncCache>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config)
            .field("vm", &self.vm)
            .finish_non_exhaustive()
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::builder().build()
    }
}

impl Session {
    /// Starts a session builder from the default configuration.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// A session over an existing configuration (the pool is sized from
    /// `config.threads`).
    pub fn from_config(config: PipelineConfig) -> Session {
        Session::from_parts(config, VmOptions::default())
    }

    /// A session over existing configuration and VM options.
    pub fn from_parts(config: PipelineConfig, vm: VmOptions) -> Session {
        let pool = WorkerPool::new(resolve_threads(config.threads));
        Session {
            config,
            vm,
            pool,
            frontend: Mutex::new(minic::Frontend::new()),
            reuse_frontend: true,
            cache: None,
        }
    }

    /// The pipeline configuration this session runs.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The VM options [`compile_and_run`](Self::compile_and_run) uses.
    pub fn vm_options(&self) -> &VmOptions {
        &self.vm
    }

    /// Runs the pipeline over an already-built module in place, returning
    /// the report and trace log. The module is validated afterwards; a
    /// validation failure is returned as [`Error::Validate`] rather than
    /// a panic. On an incremental session the module's functions are
    /// fingerprinted against the session cache (without raw-text hints —
    /// those need the source, see [`compile`](Self::compile)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Validate`] if the pipeline produced invalid IL.
    pub fn optimize(&self, module: &mut Module) -> Result<(PipelineReport, TraceLog), Error> {
        self.optimize_with_source(module, None)
    }

    fn optimize_with_source(
        &self,
        module: &mut Module,
        source: Option<&minic::SourceFingerprint>,
    ) -> Result<(PipelineReport, TraceLog), Error> {
        let (report, log) = match &self.cache {
            Some(cache) => {
                // A poisoned lock only means an earlier compile panicked;
                // the cache is mutated sequentially in the epilogue, one
                // whole entry at a time, so whatever it holds is valid.
                let mut cache = cache.lock().unwrap_or_else(|p| p.into_inner());
                run_pipeline_core(
                    module,
                    &self.config,
                    &self.pool,
                    Some(IncrementalRun {
                        cache: &mut cache,
                        source,
                    }),
                )
            }
            None => run_pipeline_traced(module, &self.config, &self.pool),
        };
        ir::validate(module)?;
        Ok((report, log))
    }

    /// Compiles MiniC source through the full pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Front`] if the source does not compile, or
    /// [`Error::Validate`] if the pipeline produced invalid IL.
    pub fn compile(&self, src: &str) -> Result<Compilation, Error> {
        let mut module = if self.reuse_frontend {
            let mut frontend = self.frontend.lock().unwrap_or_else(|poisoned| {
                // A compile that panicked may have left the warm buffers
                // mid-rebuild; swap in a fresh front end instead of
                // wedging every later compile on this session.
                let mut guard = poisoned.into_inner();
                *guard = minic::Frontend::new();
                guard
            });
            frontend.compile(src)?
        } else {
            // Cold path for A/B measurement: a fresh `Frontend` per
            // program, exactly what the free function does.
            minic::compile(src)?
        };
        // Raw-text hints let unchanged functions skip even the canonical
        // body-hash walk on incremental sessions.
        let source = self.cache.is_some().then(|| minic::source_fingerprint(src));
        let (report, trace) = self.optimize_with_source(&mut module, source.as_ref())?;
        Ok(Compilation {
            module,
            report,
            trace,
            outcome: None,
        })
    }

    /// Compiles and executes; the compilation comes back with
    /// [`Compilation::outcome`] populated.
    ///
    /// # Errors
    ///
    /// Everything [`compile`](Self::compile) returns, plus [`Error::Vm`]
    /// if execution faults.
    pub fn compile_and_run(&self, src: &str) -> Result<Compilation, Error> {
        let mut compilation = self.compile(src)?;
        let outcome = compilation.run(self.vm.clone())?;
        compilation.outcome = Some(outcome);
        Ok(compilation)
    }
}

/// Fluent builder for [`Session`]. Pipeline knobs mirror
/// [`PipelineConfigBuilder`]; `max_steps`/`max_depth` configure the VM.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    config: PipelineConfigBuilder,
    vm: VmOptions,
    reuse_frontend: bool,
    incremental: bool,
    cache_budget: usize,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            config: PipelineConfigBuilder::default(),
            vm: VmOptions::default(),
            reuse_frontend: true,
            incremental: false,
            cache_budget: DEFAULT_CACHE_BUDGET,
        }
    }
}

impl SessionBuilder {
    /// Sets the interprocedural analysis precision.
    pub fn analysis(mut self, level: AnalysisLevel) -> Self {
        self.config = self.config.analysis(level);
        self
    }

    /// Enables or disables scalar register promotion.
    pub fn promote(mut self, on: bool) -> Self {
        self.config = self.config.promote(on);
        self
    }

    /// Enables or disables pointer-based promotion.
    pub fn pointer_promote(mut self, on: bool) -> Self {
        self.config = self.config.pointer_promote(on);
        self
    }

    /// Sets the per-loop promotion pressure cap.
    pub fn promotion_cap(mut self, cap: Option<usize>) -> Self {
        self.config = self.config.promotion_cap(cap);
        self
    }

    /// Enables or disables the scalar optimizer.
    pub fn optimize(mut self, on: bool) -> Self {
        self.config = self.config.optimize(on);
        self
    }

    /// Sets register-allocation parameters.
    pub fn regalloc(mut self, opts: Option<AllocOptions>) -> Self {
        self.config = self.config.regalloc(opts);
        self
    }

    /// Enables or disables barrier validation.
    pub fn validate_each_pass(mut self, on: bool) -> Self {
        self.config = self.config.validate_each_pass(on);
        self
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.config = self.config.threads(threads);
        self
    }

    /// Enables or disables the shared analysis cache.
    pub fn share_analyses(mut self, on: bool) -> Self {
        self.config = self.config.share_analyses(on);
        self
    }

    /// Selects sparse worklist (`true`, the default) or dense resweep
    /// (`false`) dataflow solvers. The dense arm exists for measurement
    /// and differential testing; output is identical either way.
    pub fn sparse_dataflow(mut self, on: bool) -> Self {
        self.config = self.config.sparse_dataflow(on);
        self
    }

    /// Enables or disables cross-function reuse of the per-worker pass
    /// scratch arenas.
    pub fn reuse_scratch(mut self, on: bool) -> Self {
        self.config = self.config.reuse_scratch(on);
        self
    }

    /// Enables or disables structured trace collection.
    pub fn trace(mut self, on: bool) -> Self {
        self.config = self.config.trace(on);
        self
    }

    /// Enables or disables reuse of the session's warm front end
    /// (interner, token buffer, AST pools) across compiles. On by
    /// default; turning it off makes every [`Session::compile`] build a
    /// fresh `Frontend`, which is what `--fresh-frontend` benchmarking
    /// measures against.
    pub fn reuse_frontend(mut self, on: bool) -> Self {
        self.reuse_frontend = on;
        self
    }

    /// Enables or disables content-addressed incremental recompilation.
    /// When on, the session keeps a per-function [`FuncCache`]: a later
    /// compile splices every function whose fingerprint (canonical body,
    /// interprocedural facts, callee summaries, output-affecting config)
    /// is unchanged, and runs the fused pass chain only over the rest.
    /// Output, report counters, and remark streams are byte-identical to
    /// a cold compile. Off by default.
    pub fn incremental(mut self, on: bool) -> Self {
        self.incremental = on;
        self
    }

    /// Sets the incremental cache's eviction budget in approximate bytes
    /// (default [`DEFAULT_CACHE_BUDGET`]). Least-recently-used entries
    /// are dropped after each compile until the cache fits. Implies
    /// nothing unless [`incremental`](Self::incremental) is on.
    pub fn cache_budget(mut self, bytes: usize) -> Self {
        self.cache_budget = bytes;
        self
    }

    /// Replaces the whole pipeline configuration at once.
    pub fn pipeline_config(mut self, config: PipelineConfig) -> Self {
        self.config = PipelineConfigBuilder::from_config(config);
        self
    }

    /// Sets the VM's execution step budget.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.vm.max_steps = steps;
        self
    }

    /// Sets the VM's call-depth budget.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.vm.max_depth = depth;
        self
    }

    /// Builds the session (spawning its worker pool).
    pub fn build(self) -> Session {
        let mut session = Session::from_parts(self.config.build(), self.vm);
        session.reuse_frontend = self.reuse_frontend;
        if self.incremental {
            session.cache = Some(Mutex::new(FuncCache::new(self.cache_budget)));
        }
        session
    }
}

/// Everything one program's trip through a [`Session`] produced.
#[derive(Debug)]
pub struct Compilation {
    /// The optimized (and validated) module.
    pub module: Module,
    /// Pass counters and timings.
    pub report: PipelineReport,
    /// The structured trace — empty unless the session was built with
    /// `.trace(true)`.
    pub trace: TraceLog,
    /// The execution outcome; `Some` only from
    /// [`Session::compile_and_run`].
    pub outcome: Option<Outcome>,
}

impl Compilation {
    /// Executes the compiled module's `main` in the instrumented VM and
    /// returns the execution outcome (program output, exit code, dynamic
    /// operation counts). Compile-and-execute in one expression:
    ///
    /// ```
    /// use driver::Session;
    /// use vm::VmOptions;
    ///
    /// let out = Session::default()
    ///     .compile("int main() { print_int(6 * 7); return 0; }")?
    ///     .run(VmOptions::default())?;
    /// assert_eq!(out.output, vec!["42"]);
    /// # Ok::<(), driver::Error>(())
    /// ```
    ///
    /// Unlike [`Session::compile_and_run`] this does not cache the outcome
    /// in [`Compilation::outcome`]; it can be called repeatedly (e.g. with
    /// different step budgets).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Vm`] if execution faults.
    pub fn run(&self, options: VmOptions) -> Result<Outcome, Error> {
        Ok(Vm::run_main(&self.module, options)?)
    }

    /// The trace rendered as human-readable LLVM-style remark lines.
    pub fn remarks_text(&self) -> String {
        self.trace.render_remarks()
    }

    /// The trace serialized as JSONL (see `trace::jsonl` docs for the
    /// schema).
    pub fn trace_jsonl(&self) -> String {
        self.trace.to_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn session_survives_a_poisoned_frontend_mutex() {
        let session = Arc::new(Session::builder().threads(Some(1)).build());
        let src = "int main() { print_int(7); return 0; }";
        let before = session.compile(src).expect("compile before poisoning");

        // Poison the warm front-end mutex the way a panicking compile
        // would: panic while holding the guard.
        let poisoner = Arc::clone(&session);
        std::thread::spawn(move || {
            let _guard = poisoner.frontend.lock().unwrap();
            panic!("deliberate poison");
        })
        .join()
        .unwrap_err();
        assert!(session.frontend.is_poisoned());

        // The session must recover with a fresh front end, not wedge.
        let after = session.compile(src).expect("compile after poisoning");
        assert_eq!(before.module.to_string(), after.module.to_string());
        // And subsequent compiles keep working on the replaced buffers.
        session
            .compile(src)
            .expect("second compile after poisoning");
    }
}
