//! The per-worker pass scratch arena.
//!
//! Every pass in the fused chain exposes a `*_function_in`-style entry
//! point taking caller-owned scratch state (dense epoch-stamped side
//! tables, reusable worklists, rewrite buffers). [`PassScratch`] bundles
//! all of them: each [`crate::WorkerPool`] worker owns one, reuses it for
//! every function it carries through the chain, and keeps it across
//! pipeline runs — so a warm pool's steady-state hot loop allocates
//! nothing. See `DESIGN.md` §12 for the lifecycle and clearing rules.

/// Scratch state for one worker: everything the fused per-function pass
/// chain needs, reused across functions and across pipeline runs.
#[derive(Default)]
pub struct PassScratch {
    /// Scalar-optimizer scratch (lvn, constprop, loadelim, licm, dce,
    /// clean).
    pub opt: opt::OptScratch,
    /// Register-allocator scratch (interference matrices, round buffers,
    /// spill rewrite buffer).
    pub alloc: regalloc::AllocScratch,
}
