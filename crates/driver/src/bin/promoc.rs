//! `promoc` — the register-promotion compiler, as a command-line tool.
//!
//! ```text
//! promoc run     FILE [flags]      compile, optimize, execute, report counts
//! promoc compile FILE [flags]      print the optimized IL
//! promoc measure FILE              the paper's 2x2 experiment on one file
//! promoc bench   NAME              the 2x2 experiment on a suite program
//! promoc suite                     list the benchmark suite
//!
//! flags:
//!   --analysis addrtaken|steens|modref|pointer|pointer-ssa   (default modref)
//!   --no-promote          disable register promotion
//!   --ptr-promote         enable §3.3 pointer-based promotion
//!   --no-opt              disable the scalar optimizer
//!   --no-regalloc         keep virtual registers
//!   --regs K              machine registers (default 32)
//!   --max-steps N         VM step budget
//! ```

use analysis::AnalysisLevel;
use driver::{compile_and_run, compile_with, measure_program, Metric, PipelineConfig};
use regalloc::AllocOptions;
use std::process::ExitCode;
use vm::VmOptions;

fn usage() -> ! {
    eprintln!("{}", HELP.trim());
    std::process::exit(2);
}

const HELP: &str = r#"
promoc — the register-promotion compiler (Cooper & Lu, PLDI 1997)

usage:
  promoc run     FILE [flags]   compile, optimize, execute, report counts
  promoc compile FILE [flags]   print the optimized IL
  promoc measure FILE           the paper's 2x2 experiment on one file
  promoc bench   NAME           the 2x2 experiment on a suite program
  promoc suite                  list the benchmark suite

flags:
  --analysis addrtaken|steens|modref|pointer|pointer-ssa   (default modref)
  --no-promote      disable register promotion
  --ptr-promote     enable §3.3 pointer-based promotion
  --no-opt          disable the scalar optimizer
  --no-regalloc     keep virtual registers
  --regs K          machine registers (default 32)
  --max-steps N     VM step budget
"#;

struct Options {
    config: PipelineConfig,
    vm: VmOptions,
}

fn parse_flags(args: &[String]) -> Result<Options, String> {
    let mut config = PipelineConfig::default();
    let mut vm = VmOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--analysis" => {
                i += 1;
                let level = args.get(i).ok_or("--analysis needs a value")?;
                config.analysis = match level.as_str() {
                    "addrtaken" => AnalysisLevel::AddressTaken,
                    "steens" => AnalysisLevel::Steensgaard,
                    "modref" => AnalysisLevel::ModRef,
                    "pointer" => AnalysisLevel::PointsTo,
                    "pointer-ssa" => AnalysisLevel::PointsToSsa,
                    other => return Err(format!("unknown analysis level `{other}`")),
                };
            }
            "--no-promote" => config.promote = false,
            "--ptr-promote" => config.pointer_promote = true,
            "--no-opt" => config.optimize = false,
            "--no-regalloc" => config.regalloc = None,
            "--regs" => {
                i += 1;
                let k: usize = args
                    .get(i)
                    .ok_or("--regs needs a value")?
                    .parse()
                    .map_err(|_| "--regs needs an integer")?;
                config.regalloc = Some(AllocOptions {
                    num_regs: k,
                    ..Default::default()
                });
            }
            "--max-steps" => {
                i += 1;
                vm.max_steps = args
                    .get(i)
                    .ok_or("--max-steps needs a value")?
                    .parse()
                    .map_err(|_| "--max-steps needs an integer")?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(Options { config, vm })
}

fn cmd_run(path: &str, opts: Options) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (outcome, report) =
        compile_and_run(&src, &opts.config, opts.vm).map_err(|e| e.to_string())?;
    for line in &outcome.output {
        println!("{line}");
    }
    eprintln!("; exit code  {}", outcome.exit_code);
    eprintln!(
        "; executed   total={} loads={} stores={} copies={} calls={}",
        outcome.counts.total,
        outcome.counts.loads,
        outcome.counts.stores,
        outcome.counts.copies,
        outcome.counts.calls
    );
    eprintln!(
        "; promotion  {} tags, {} refs rewritten, {} lift ops",
        report.promotion.scalar.promoted_tags,
        report.promotion.scalar.rewritten_refs,
        report.promotion.scalar.lifts
    );
    if let Some(a) = &report.alloc {
        eprintln!(
            "; regalloc   {} coalesced, {} spilled, {} rematerialized",
            a.coalesced, a.spilled, a.rematerialized
        );
    }
    Ok(())
}

fn cmd_compile(path: &str, opts: Options) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (module, _) = compile_with(&src, &opts.config).map_err(|e| e.to_string())?;
    print!("{module}");
    Ok(())
}

fn cmd_measure(name: &str, source: &str) -> Result<(), String> {
    let rows = measure_program(name, source);
    for metric in [Metric::TotalOps, Metric::Stores, Metric::Loads] {
        println!("{}", driver::render_figure(metric, &rows));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let result = match cmd.as_str() {
        "run" | "compile" => {
            let Some(path) = args.get(1) else { usage() };
            match parse_flags(&args[2..]) {
                Ok(opts) if cmd == "run" => cmd_run(path, opts),
                Ok(opts) => cmd_compile(path, opts),
                Err(e) => Err(e),
            }
        }
        "measure" => {
            let Some(path) = args.get(1) else { usage() };
            match std::fs::read_to_string(path) {
                Ok(src) => cmd_measure(path, &src),
                Err(e) => Err(format!("{path}: {e}")),
            }
        }
        "bench" => {
            let Some(name) = args.get(1) else { usage() };
            match benchsuite::find(name) {
                Some(b) => cmd_measure(b.name, b.source),
                None => Err(format!("unknown benchmark `{name}`; try `promoc suite`")),
            }
        }
        "suite" => {
            for b in benchsuite::SUITE {
                println!("{:<10} {}", b.name, b.description);
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", HELP.trim());
            Ok(())
        }
        _ => usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("promoc: {e}");
            ExitCode::FAILURE
        }
    }
}
