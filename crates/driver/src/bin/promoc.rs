//! `promoc` — the register-promotion compiler, as a command-line tool.
//!
//! ```text
//! promoc run     FILE [flags]      compile, optimize, execute, report counts
//! promoc compile FILE [flags]      print the optimized IL
//! promoc measure FILE              the paper's 2x2 experiment on one file
//! promoc bench   NAME              the 2x2 experiment on a suite program
//! promoc suite                     list the benchmark suite
//!
//! flags:
//!   --analysis addrtaken|steens|modref|pointer|pointer-ssa   (default modref)
//!   --no-promote          disable register promotion
//!   --ptr-promote         enable §3.3 pointer-based promotion
//!   --no-opt              disable the scalar optimizer
//!   --no-regalloc         keep virtual registers
//!   --regs K              machine registers (default 32)
//!   --max-steps N         VM step budget
//!   --remarks             print optimization remarks to stderr
//!   --trace-json PATH     write the structured trace as JSONL ("-" = stdout)
//! ```

use analysis::AnalysisLevel;
use driver::{measure_program, Compilation, Metric, Session};
use regalloc::AllocOptions;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("{}", HELP.trim());
    std::process::exit(2);
}

const HELP: &str = r#"
promoc — the register-promotion compiler (Cooper & Lu, PLDI 1997)

usage:
  promoc run     FILE [flags]   compile, optimize, execute, report counts
  promoc compile FILE [flags]   print the optimized IL
  promoc measure FILE           the paper's 2x2 experiment on one file
  promoc bench   NAME           the 2x2 experiment on a suite program
  promoc suite                  list the benchmark suite

flags:
  --analysis addrtaken|steens|modref|pointer|pointer-ssa   (default modref)
  --no-promote      disable register promotion
  --ptr-promote     enable §3.3 pointer-based promotion
  --no-opt          disable the scalar optimizer
  --no-regalloc     keep virtual registers
  --regs K          machine registers (default 32)
  --max-steps N     VM step budget
  --remarks         print optimization remarks (what was promoted where,
                    what was blocked and why, what spilled) to stderr
  --trace-json PATH write the structured trace as JSONL; "-" for stdout
"#;

struct Options {
    builder: driver::SessionBuilder,
    remarks: bool,
    trace_json: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Options, String> {
    let mut builder = Session::builder();
    let mut remarks = false;
    let mut trace_json: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--analysis" => {
                i += 1;
                let level = args.get(i).ok_or("--analysis needs a value")?;
                builder = builder.analysis(match level.as_str() {
                    "addrtaken" => AnalysisLevel::AddressTaken,
                    "steens" => AnalysisLevel::Steensgaard,
                    "modref" => AnalysisLevel::ModRef,
                    "pointer" => AnalysisLevel::PointsTo,
                    "pointer-ssa" => AnalysisLevel::PointsToSsa,
                    other => return Err(format!("unknown analysis level `{other}`")),
                });
            }
            "--no-promote" => builder = builder.promote(false),
            "--ptr-promote" => builder = builder.pointer_promote(true),
            "--no-opt" => builder = builder.optimize(false),
            "--no-regalloc" => builder = builder.regalloc(None),
            "--regs" => {
                i += 1;
                let k: usize = args
                    .get(i)
                    .ok_or("--regs needs a value")?
                    .parse()
                    .map_err(|_| "--regs needs an integer")?;
                builder = builder.regalloc(Some(AllocOptions {
                    num_regs: k,
                    ..Default::default()
                }));
            }
            "--max-steps" => {
                i += 1;
                builder = builder.max_steps(
                    args.get(i)
                        .ok_or("--max-steps needs a value")?
                        .parse()
                        .map_err(|_| "--max-steps needs an integer")?,
                );
            }
            "--remarks" => remarks = true,
            "--trace-json" => {
                i += 1;
                trace_json = Some(args.get(i).ok_or("--trace-json needs a path")?.clone());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if remarks || trace_json.is_some() {
        builder = builder.trace(true);
    }
    Ok(Options {
        builder,
        remarks,
        trace_json,
    })
}

/// Emits the requested trace outputs: remarks to stderr, JSONL to the
/// requested path (or stdout for `-`).
fn emit_trace(opts: &Options, c: &Compilation) -> Result<(), String> {
    if opts.remarks {
        eprint!("{}", c.remarks_text());
    }
    if let Some(path) = &opts.trace_json {
        let jsonl = c.trace_jsonl();
        if path == "-" {
            print!("{jsonl}");
        } else {
            std::fs::write(path, jsonl).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_run(path: &str, opts: Options) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let session = opts.builder.clone().build();
    let c = session.compile_and_run(&src).map_err(|e| e.to_string())?;
    emit_trace(&opts, &c)?;
    let outcome = c.outcome.as_ref().expect("run populates the outcome");
    for line in &outcome.output {
        println!("{line}");
    }
    eprintln!("; exit code  {}", outcome.exit_code);
    eprintln!(
        "; executed   total={} loads={} stores={} copies={} calls={}",
        outcome.counts.total,
        outcome.counts.loads,
        outcome.counts.stores,
        outcome.counts.copies,
        outcome.counts.calls
    );
    eprintln!(
        "; promotion  {} tags, {} refs rewritten, {} lift ops",
        c.report.promotion.scalar.promoted_tags,
        c.report.promotion.scalar.rewritten_refs,
        c.report.promotion.scalar.lifts
    );
    if let Some(a) = &c.report.alloc {
        eprintln!(
            "; regalloc   {} coalesced, {} spilled, {} rematerialized",
            a.coalesced, a.spilled, a.rematerialized
        );
    }
    Ok(())
}

fn cmd_compile(path: &str, opts: Options) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let session = opts.builder.clone().build();
    let c = session.compile(&src).map_err(|e| e.to_string())?;
    emit_trace(&opts, &c)?;
    print!("{}", c.module);
    Ok(())
}

fn cmd_measure(name: &str, source: &str) -> Result<(), String> {
    let rows = measure_program(name, source);
    for metric in [Metric::TotalOps, Metric::Stores, Metric::Loads] {
        println!("{}", driver::render_figure(metric, &rows));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let result = match cmd.as_str() {
        "run" | "compile" => {
            let Some(path) = args.get(1) else { usage() };
            match parse_flags(&args[2..]) {
                Ok(opts) if cmd == "run" => cmd_run(path, opts),
                Ok(opts) => cmd_compile(path, opts),
                Err(e) => Err(e),
            }
        }
        "measure" => {
            let Some(path) = args.get(1) else { usage() };
            match std::fs::read_to_string(path) {
                Ok(src) => cmd_measure(path, &src),
                Err(e) => Err(format!("{path}: {e}")),
            }
        }
        "bench" => {
            let Some(name) = args.get(1) else { usage() };
            match benchsuite::find(name) {
                Some(b) => cmd_measure(b.name, b.source),
                None => Err(format!("unknown benchmark `{name}`; try `promoc suite`")),
            }
        }
        "suite" => {
            for b in benchsuite::SUITE {
                println!("{:<10} {}", b.name, b.description);
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", HELP.trim());
            Ok(())
        }
        _ => usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("promoc: {e}");
            ExitCode::FAILURE
        }
    }
}
