//! The compiler driver: pass sequencing, experiment configurations, and
//! figure-style reporting.
//!
//! The highest-level entry points of the whole system live here:
//!
//! ```
//! use driver::{compile_and_run, PipelineConfig};
//!
//! let (outcome, report) = compile_and_run(
//!     r#"
//!     int counter;
//!     int main() {
//!         int i;
//!         for (i = 0; i < 1000; i++) counter += 1;
//!         print_int(counter);
//!         return 0;
//!     }
//!     "#,
//!     &PipelineConfig::default(),
//!     vm::VmOptions::default(),
//! )?;
//! assert_eq!(outcome.output, vec!["1000"]);
//! // Promotion moved the counter into a register for the whole loop.
//! assert!(outcome.counts.stores < 10);
//! assert!(report.promotion.scalar.promoted_tags >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod parallel;
mod pipeline;
mod report;

pub use parallel::{parallel_map, parallel_map_funcs, resolve_threads, WorkerPool};
pub use pipeline::{
    compile_and_run, compile_with, run_pipeline, run_pipeline_in, PassTiming, PassTimings,
    PipelineConfig, PipelineReport,
};
pub use report::{measure_program, render_figure, MeasurementRow, Metric};
