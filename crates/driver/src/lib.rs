//! The compiler driver: pass sequencing, experiment configurations,
//! structured optimization telemetry, and figure-style reporting.
//!
//! The highest-level entry point is [`Session`]: a configured compiler
//! instance that owns its worker pool and hands back a [`Compilation`]
//! per program — module, pass report, structured trace, and (optionally)
//! the execution outcome in one artifact.
//!
//! ```
//! use driver::Session;
//!
//! let session = Session::builder().trace(true).build();
//! let c = session.compile_and_run(
//!     r#"
//!     int counter;
//!     int main() {
//!         int i;
//!         for (i = 0; i < 1000; i++) counter += 1;
//!         print_int(counter);
//!         return 0;
//!     }
//!     "#,
//! )?;
//! let outcome = c.outcome.as_ref().unwrap();
//! assert_eq!(outcome.output, vec!["1000"]);
//! // Promotion moved the counter into a register for the whole loop...
//! assert!(outcome.counts.stores < 10);
//! assert!(c.report.promotion.scalar.promoted_tags >= 1);
//! // ...and the trace records it as a structured remark.
//! assert!(c
//!     .trace
//!     .remarks()
//!     .any(|(_, _, r)| matches!(r, trace::Remark::Promoted { .. })));
//! # Ok::<(), driver::Error>(())
//! ```
//!
//! The tuple-returning free functions ([`compile_and_run`],
//! [`compile_with`]) predate [`Session`] and remain as shims; see their
//! docs.

#![warn(missing_docs)]

mod error;
mod parallel;
mod pipeline;
mod report;
mod scratch;
mod session;

pub use error::Error;
pub use parallel::{parallel_map, parallel_map_funcs, resolve_threads, WorkerPool};
pub use pipeline::{
    compile_and_run, compile_with, run_pipeline, run_pipeline_in, run_pipeline_traced, PassTiming,
    PassTimings, PipelineConfig, PipelineConfigBuilder, PipelineReport,
};
pub use report::{measure_program, render_figure, MeasurementRow, Metric};
pub use scratch::PassScratch;
pub use session::{Compilation, Session, SessionBuilder};
