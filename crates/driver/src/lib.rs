//! The compiler driver: pass sequencing, experiment configurations,
//! structured optimization telemetry, and figure-style reporting.
//!
//! The highest-level entry point is [`Session`]: a configured compiler
//! instance that owns its worker pool and hands back a [`Compilation`]
//! per program — module, pass report, structured trace, and (optionally)
//! the execution outcome in one artifact.
//!
//! ```
//! use driver::Session;
//!
//! let session = Session::builder().trace(true).build();
//! let c = session.compile_and_run(
//!     r#"
//!     int counter;
//!     int main() {
//!         int i;
//!         for (i = 0; i < 1000; i++) counter += 1;
//!         print_int(counter);
//!         return 0;
//!     }
//!     "#,
//! )?;
//! let outcome = c.outcome.as_ref().unwrap();
//! assert_eq!(outcome.output, vec!["1000"]);
//! // Promotion moved the counter into a register for the whole loop...
//! assert!(outcome.counts.stores < 10);
//! assert!(c.report.promotion.scalar.promoted_tags >= 1);
//! // ...and the trace records it as a structured remark.
//! assert!(c
//!     .trace
//!     .remarks()
//!     .any(|(_, _, r)| matches!(r, trace::Remark::Promoted { .. })));
//! # Ok::<(), driver::Error>(())
//! ```
//!
//! [`Session`] (plus [`Compilation::run`] for execution) is the *only*
//! compile entry point since API v1 — the tuple-returning free functions
//! that predated it are gone. External consumers should import from
//! [`prelude`], the curated stable surface.

#![warn(missing_docs)]

mod error;
mod incremental;
mod parallel;
mod pipeline;
mod report;
mod scratch;
mod session;

pub use error::Error;
pub use incremental::{FuncCache, IncrementalReport, DEFAULT_CACHE_BUDGET};
pub use parallel::{parallel_map, parallel_map_funcs, resolve_threads, WorkerPool};
pub use pipeline::{
    run_pipeline, run_pipeline_in, run_pipeline_traced, PassTiming, PassTimings, PipelineConfig,
    PipelineConfigBuilder, PipelineReport,
};
pub use report::{measure_program, render_figure, MeasurementRow, Metric};
pub use scratch::PassScratch;
pub use session::{Compilation, Session, SessionBuilder};

/// The curated stable API surface, re-exported in one place.
///
/// Everything a driver consumer (the fuzzer, the benchmarks, an external
/// embedder) needs to compile and execute MiniC programs: the session
/// API, its error type, the configuration vocabulary, and the VM types
/// that flow back out of [`Compilation::run`]. Import it wholesale:
///
/// ```
/// use driver::prelude::*;
///
/// let session = Session::builder().threads(Some(1)).build();
/// let out = session
///     .compile("int main() { print_int(7); return 0; }")?
///     .run(VmOptions::default())?;
/// assert_eq!(out.output, vec!["7"]);
/// # Ok::<(), Error>(())
/// ```
pub mod prelude {
    pub use crate::error::Error;
    pub use crate::incremental::IncrementalReport;
    pub use crate::pipeline::{PipelineConfig, PipelineReport};
    pub use crate::session::{Compilation, Session, SessionBuilder};
    pub use analysis::AnalysisLevel;
    pub use regalloc::AllocOptions;
    pub use trace::{Remark, TraceLog};
    pub use vm::{ExecCounts, Outcome, VmError, VmOptions};
}
