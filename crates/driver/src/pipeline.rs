//! The compilation pipeline.
//!
//! Reproduces the paper's §5 setup: "Each version was optimized with value
//! numbering, partial redundancy elimination, constant propagation, loop
//! invariant code motion, dead code elimination, register allocation, and
//! a basic block cleaning pass", with register promotion running in the
//! early phases and pointer-based promotion after LICM (which hoists the
//! base addresses it needs).
//!
//! Every per-function stage (normalization, strengthening, promotion, the
//! scalar optimizer, register allocation) fans out across worker threads
//! via [`crate::parallel_map_funcs`]; the whole-module interprocedural
//! analysis stays sequential. The output is bit-identical at any thread
//! count: per-function passes share only the read-only tag table, and the
//! allocator's spill tags are committed in function-index order (see
//! [`regalloc::commit_spills`]). Wall-clock per pass is recorded in
//! [`PassTimings`] on the report.

use crate::parallel::{parallel_map_funcs, resolve_threads};
use analysis::{tarjan_sccs, AnalysisLevel, CallGraph};
use ir::{FuncId, Module};
use promote::PromotionReport;
use regalloc::{AllocOptions, AllocReport, PendingSpill};
use std::time::{Duration, Instant};
use vm::{Outcome, Vm, VmError, VmOptions};

/// A pipeline configuration — one experimental arm.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Interprocedural analysis precision.
    pub analysis: AnalysisLevel,
    /// Run scalar register promotion (§3.1).
    pub promote: bool,
    /// Run pointer-based promotion (§3.3) after LICM.
    pub pointer_promote: bool,
    /// Pressure throttle for scalar promotion (§7 of the paper; see
    /// [`promote::PromotionOptions::max_promoted_per_loop`]).
    pub promotion_cap: Option<usize>,
    /// Run the scalar optimizer (always on in the paper; off is useful
    /// for debugging).
    pub optimize: bool,
    /// Register allocation parameters; `None` leaves virtual registers.
    pub regalloc: Option<AllocOptions>,
    /// Validate the module after every pass (on in debug builds).
    pub validate_each_pass: bool,
    /// Worker threads for the per-function stages. `None` defers to the
    /// `PROMO_THREADS` environment variable, then to
    /// `std::thread::available_parallelism()`; `Some(1)` forces the
    /// sequential path. The compiled output is identical either way.
    pub threads: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            analysis: AnalysisLevel::ModRef,
            promote: true,
            pointer_promote: false,
            promotion_cap: None,
            optimize: true,
            regalloc: Some(AllocOptions::default()),
            validate_each_pass: cfg!(debug_assertions),
            threads: None,
        }
    }
}

impl PipelineConfig {
    /// One of the paper's four measured variants: `{modref, pointer}` ×
    /// `{without, with}` promotion.
    pub fn paper_variant(analysis: AnalysisLevel, promote: bool) -> Self {
        PipelineConfig {
            analysis,
            promote,
            // §3.3 pointer-based promotion was measured separately; the
            // headline figures use scalar promotion only.
            pointer_promote: false,
            ..Default::default()
        }
    }

    /// The four figure-generating variants in the paper's row order.
    pub fn figure_variants() -> [(String, PipelineConfig); 4] {
        [
            (
                "modref/without".into(),
                PipelineConfig::paper_variant(AnalysisLevel::ModRef, false),
            ),
            (
                "modref/with".into(),
                PipelineConfig::paper_variant(AnalysisLevel::ModRef, true),
            ),
            (
                "pointer/without".into(),
                PipelineConfig::paper_variant(AnalysisLevel::PointsTo, false),
            ),
            (
                "pointer/with".into(),
                PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true),
            ),
        ]
    }
}

/// Wall-clock time of each pipeline pass, in execution order. Repeated
/// passes get distinct labels (`lvn`, `lvn(2)`, ...).
#[derive(Debug, Clone, Default)]
pub struct PassTimings {
    /// `(pass name, elapsed)` pairs in execution order.
    pub passes: Vec<(String, Duration)>,
}

impl PassTimings {
    fn record(&mut self, name: &str, elapsed: Duration) {
        self.passes.push((name.to_string(), elapsed));
    }

    /// Total wall-clock across all recorded passes.
    pub fn total(&self) -> Duration {
        self.passes.iter().map(|(_, d)| *d).sum()
    }

    /// Elapsed time of the first pass recorded under `name`.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.passes.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }
}

/// What each pass did, for reports and ablations.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Tag-set precision achieved by the analysis.
    pub analysis_stats: Option<analysis::TagSetStats>,
    /// Opcode strengthenings applied.
    pub strengthened: usize,
    /// Promotion activity.
    pub promotion: PromotionReport,
    /// Instructions rewritten by value numbering (both runs).
    pub lvn_rewrites: usize,
    /// Loads eliminated by the PRE-style pass.
    pub loads_eliminated: usize,
    /// Constants propagated.
    pub constants_folded: usize,
    /// Instructions hoisted by LICM.
    pub licm_moved: usize,
    /// Instructions removed by DCE.
    pub dce_removed: usize,
    /// Cleaning changes.
    pub cleaned: usize,
    /// Register allocation activity.
    pub alloc: Option<AllocReport>,
    /// Per-pass wall-clock timings (scheduling-dependent; excluded from
    /// determinism comparisons).
    pub timings: PassTimings,
}

fn validate_if(module: &Module, enabled: bool, pass: &str) {
    if enabled {
        if let Err(e) = ir::validate(module) {
            panic!("pipeline produced invalid IL after {pass}: {e}");
        }
    }
}

fn timed<R>(timings: &mut PassTimings, name: &str, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let r = f();
    timings.record(name, start.elapsed());
    r
}

/// Which functions sit on call-graph cycles (recursion blocks promotion of
/// their locals). Whole-module, so computed before fanning out.
fn recursive_set(module: &Module) -> Vec<bool> {
    let graph = CallGraph::build(module, None);
    let sccs = tarjan_sccs(&graph);
    (0..module.funcs.len())
        .map(|i| graph.is_recursive(FuncId(i as u32), &sccs))
        .collect()
}

/// Runs the configured pipeline over `module` in place.
pub fn run_pipeline(module: &mut Module, config: &PipelineConfig) -> PipelineReport {
    let v = config.validate_each_pass;
    let threads = resolve_threads(config.threads);
    let mut report = PipelineReport::default();
    let mut timings = PassTimings::default();
    timed(&mut timings, "normalize", || {
        parallel_map_funcs(&mut module.funcs, threads, |_, f| cfg::normalize_loops(f));
    });
    validate_if(module, v, "normalize");
    let outcome = timed(&mut timings, "analysis", || {
        analysis::analyze(module, config.analysis)
    });
    report.analysis_stats = Some(outcome.stats);
    validate_if(module, v, "analysis");
    report.strengthened = timed(&mut timings, "strengthen", || {
        let recursive = recursive_set(module);
        let tags = &module.tags;
        parallel_map_funcs(&mut module.funcs, threads, |fid, func| {
            opt::strengthen_function(tags, func, fid, recursive[fid.index()])
        })
        .into_iter()
        .sum()
    });
    validate_if(module, v, "strengthen");
    if config.promote {
        report.promotion = timed(&mut timings, "promote", || {
            let recursive = recursive_set(module);
            let cap = config.promotion_cap;
            let tags = &module.tags;
            let func_reports = parallel_map_funcs(&mut module.funcs, threads, |fid, func| {
                cfg::normalize_loops(func);
                promote::promote_scalars_in_func_core(tags, func, fid, recursive[fid.index()], cap)
            });
            let mut total = PromotionReport::default();
            for r in func_reports {
                total.scalar.loops += r.loops;
                total.scalar.promoted_tags += r.promoted_tags;
                total.scalar.lifts += r.lifts;
                total.scalar.rewritten_refs += r.rewritten_refs;
            }
            total
        });
        validate_if(module, v, "promotion");
    }
    if config.optimize {
        report.lvn_rewrites += timed(&mut timings, "lvn", || {
            parallel_map_funcs(&mut module.funcs, threads, |_, f| opt::lvn_function(f))
                .into_iter()
                .sum::<usize>()
        });
        validate_if(module, v, "lvn");
        report.loads_eliminated = timed(&mut timings, "loadelim", || {
            parallel_map_funcs(&mut module.funcs, threads, |_, f| opt::loadelim_function(f))
                .into_iter()
                .sum()
        });
        validate_if(module, v, "loadelim");
        report.constants_folded = timed(&mut timings, "constprop", || {
            parallel_map_funcs(&mut module.funcs, threads, |_, f| {
                opt::constprop_function(f)
            })
            .into_iter()
            .sum()
        });
        validate_if(module, v, "constprop");
        report.licm_moved = timed(&mut timings, "licm", || {
            parallel_map_funcs(&mut module.funcs, threads, |_, f| opt::licm_function(f))
                .into_iter()
                .sum()
        });
        validate_if(module, v, "licm");
    }
    if config.pointer_promote {
        // LICM has hoisted invariant base addresses; normalize again in
        // case earlier folding perturbed loop shapes.
        timed(&mut timings, "pointer-promote", || {
            let func_reports = parallel_map_funcs(&mut module.funcs, threads, |_, func| {
                cfg::normalize_loops(func);
                promote::promote_pointers_in_func_core(func)
            });
            for r in func_reports {
                report.promotion.pointer.promoted_bases += r.promoted_bases;
                report.promotion.pointer.rewritten_refs += r.rewritten_refs;
                report.promotion.pointer.lifts += r.lifts;
            }
        });
        validate_if(module, v, "pointer-promotion");
    }
    if config.optimize {
        report.lvn_rewrites += timed(&mut timings, "lvn(2)", || {
            parallel_map_funcs(&mut module.funcs, threads, |_, f| opt::lvn_function(f))
                .into_iter()
                .sum::<usize>()
        });
        report.dce_removed = timed(&mut timings, "dce", || {
            parallel_map_funcs(&mut module.funcs, threads, |_, f| opt::dce_function(f))
                .into_iter()
                .sum()
        });
        validate_if(module, v, "dce");
        report.cleaned = timed(&mut timings, "clean", || {
            parallel_map_funcs(&mut module.funcs, threads, |_, f| opt::clean_function(f))
                .into_iter()
                .sum()
        });
        validate_if(module, v, "clean");
    }
    if let Some(opts) = &config.regalloc {
        report.alloc = Some(timed(&mut timings, "regalloc", || {
            // Allocate in parallel against a read-only tag-table snapshot;
            // each worker records the spill tags it needs as provisional
            // ids. Committing in function-index order then reproduces the
            // exact tag table (ids and names) of a sequential run.
            let tags = &module.tags;
            let results: Vec<(AllocReport, Vec<PendingSpill>)> =
                parallel_map_funcs(&mut module.funcs, threads, |fid, func| {
                    let mut pending = Vec::new();
                    let r = regalloc::allocate_function_core(tags, func, fid, opts, &mut pending);
                    (r, pending)
                });
            let mut total = AllocReport::default();
            for (fi, (r, pending)) in results.into_iter().enumerate() {
                regalloc::commit_spills(module, FuncId(fi as u32), pending);
                total.coalesced += r.coalesced;
                total.spilled += r.spilled;
                total.rematerialized += r.rematerialized;
                total.spill_loads += r.spill_loads;
                total.spill_stores += r.spill_stores;
                total.rounds += r.rounds;
            }
            total
        }));
        validate_if(module, v, "regalloc");
        if config.optimize {
            report.cleaned += timed(&mut timings, "clean(final)", || {
                parallel_map_funcs(&mut module.funcs, threads, |_, f| opt::clean_function(f))
                    .into_iter()
                    .sum::<usize>()
            });
            validate_if(module, v, "final clean");
        }
    }
    report.timings = timings;
    report
}

/// Compiles MiniC source and runs the configured pipeline.
///
/// # Errors
///
/// Returns the front end's error if the source does not compile.
pub fn compile_with(
    src: &str,
    config: &PipelineConfig,
) -> Result<(Module, PipelineReport), minic::FrontError> {
    let mut module = minic::compile(src)?;
    let report = run_pipeline(&mut module, config);
    Ok((module, report))
}

/// Compiles, optimizes, executes, and returns the execution outcome.
///
/// # Errors
///
/// Returns a boxed error for either a front-end failure or a VM fault.
pub fn compile_and_run(
    src: &str,
    config: &PipelineConfig,
    vm_options: VmOptions,
) -> Result<(Outcome, PipelineReport), Box<dyn std::error::Error>> {
    let (module, report) = compile_with(src, config)?;
    let outcome = Vm::run_main(&module, vm_options).map_err(Box::<VmError>::new)?;
    Ok((outcome, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = r#"
int g;
int h;
void bump_h() { h = h + 1; }
int main() {
    int i;
    for (i = 0; i < 500; i++) {
        g = g + i;
        bump_h();
    }
    print_int(g);
    print_int(h);
    return 0;
}
"#;

    #[test]
    fn all_four_variants_agree_on_output() {
        let mut outputs = Vec::new();
        for (name, config) in PipelineConfig::figure_variants() {
            let (out, _) = compile_and_run(PROGRAM, &config, VmOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            outputs.push((name, out.output));
        }
        for w in outputs.windows(2) {
            assert_eq!(w[0].1, w[1].1, "{} vs {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn promotion_reduces_memory_traffic() {
        let without = compile_and_run(
            PROGRAM,
            &PipelineConfig::paper_variant(AnalysisLevel::ModRef, false),
            VmOptions::default(),
        )
        .unwrap()
        .0;
        let with = compile_and_run(
            PROGRAM,
            &PipelineConfig::paper_variant(AnalysisLevel::ModRef, true),
            VmOptions::default(),
        )
        .unwrap()
        .0;
        // g is promotable; h is pinned by the call.
        assert!(
            with.counts.stores + 400 <= without.counts.stores,
            "stores {} -> {}",
            without.counts.stores,
            with.counts.stores
        );
    }

    #[test]
    fn pipeline_report_is_populated() {
        let (_, report) = compile_with(PROGRAM, &PipelineConfig::default()).expect("compiles");
        assert!(report.analysis_stats.is_some());
        assert!(report.alloc.is_some());
        assert!(report.promotion.scalar.promoted_tags >= 1);
        // Every executed pass left a timing row.
        assert!(report.timings.get("analysis").is_some());
        assert!(report.timings.get("regalloc").is_some());
        assert!(report.timings.total() > Duration::ZERO);
    }

    #[test]
    fn unoptimized_pipeline_still_runs() {
        let config = PipelineConfig {
            optimize: false,
            promote: false,
            regalloc: None,
            ..Default::default()
        };
        let (out, _) = compile_and_run(PROGRAM, &config, VmOptions::default()).unwrap();
        assert_eq!(out.output, vec!["124750", "500"]);
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let one = PipelineConfig {
            threads: Some(1),
            ..Default::default()
        };
        let four = PipelineConfig {
            threads: Some(4),
            ..Default::default()
        };
        let (m1, r1) = compile_with(PROGRAM, &one).expect("compiles");
        let (m4, r4) = compile_with(PROGRAM, &four).expect("compiles");
        assert_eq!(
            m1.to_string(),
            m4.to_string(),
            "printed IL must be identical"
        );
        assert_eq!(r1.strengthened, r4.strengthened);
        assert_eq!(r1.promotion, r4.promotion);
        assert_eq!(r1.alloc, r4.alloc);
    }
}
