//! The compilation pipeline.
//!
//! Reproduces the paper's §5 setup: "Each version was optimized with value
//! numbering, partial redundancy elimination, constant propagation, loop
//! invariant code motion, dead code elimination, register allocation, and
//! a basic block cleaning pass", with register promotion running in the
//! early phases and pointer-based promotion after LICM (which hoists the
//! base addresses it needs).

use analysis::AnalysisLevel;
use ir::Module;
use promote::{promote_module, PromotionOptions, PromotionReport};
use regalloc::{allocate, AllocOptions, AllocReport};
use vm::{Outcome, Vm, VmError, VmOptions};

/// A pipeline configuration — one experimental arm.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Interprocedural analysis precision.
    pub analysis: AnalysisLevel,
    /// Run scalar register promotion (§3.1).
    pub promote: bool,
    /// Run pointer-based promotion (§3.3) after LICM.
    pub pointer_promote: bool,
    /// Pressure throttle for scalar promotion (§7 of the paper; see
    /// [`promote::PromotionOptions::max_promoted_per_loop`]).
    pub promotion_cap: Option<usize>,
    /// Run the scalar optimizer (always on in the paper; off is useful
    /// for debugging).
    pub optimize: bool,
    /// Register allocation parameters; `None` leaves virtual registers.
    pub regalloc: Option<AllocOptions>,
    /// Validate the module after every pass (on in debug builds).
    pub validate_each_pass: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            analysis: AnalysisLevel::ModRef,
            promote: true,
            pointer_promote: false,
            promotion_cap: None,
            optimize: true,
            regalloc: Some(AllocOptions::default()),
            validate_each_pass: cfg!(debug_assertions),
        }
    }
}

impl PipelineConfig {
    /// One of the paper's four measured variants: `{modref, pointer}` ×
    /// `{without, with}` promotion.
    pub fn paper_variant(analysis: AnalysisLevel, promote: bool) -> Self {
        PipelineConfig {
            analysis,
            promote,
            // §3.3 pointer-based promotion was measured separately; the
            // headline figures use scalar promotion only.
            pointer_promote: false,
            ..Default::default()
        }
    }

    /// The four figure-generating variants in the paper's row order.
    pub fn figure_variants() -> [(String, PipelineConfig); 4] {
        [
            (
                "modref/without".into(),
                PipelineConfig::paper_variant(AnalysisLevel::ModRef, false),
            ),
            (
                "modref/with".into(),
                PipelineConfig::paper_variant(AnalysisLevel::ModRef, true),
            ),
            (
                "pointer/without".into(),
                PipelineConfig::paper_variant(AnalysisLevel::PointsTo, false),
            ),
            (
                "pointer/with".into(),
                PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true),
            ),
        ]
    }
}

/// What each pass did, for reports and ablations.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Tag-set precision achieved by the analysis.
    pub analysis_stats: Option<analysis::TagSetStats>,
    /// Opcode strengthenings applied.
    pub strengthened: usize,
    /// Promotion activity.
    pub promotion: PromotionReport,
    /// Instructions rewritten by value numbering (both runs).
    pub lvn_rewrites: usize,
    /// Loads eliminated by the PRE-style pass.
    pub loads_eliminated: usize,
    /// Constants propagated.
    pub constants_folded: usize,
    /// Instructions hoisted by LICM.
    pub licm_moved: usize,
    /// Instructions removed by DCE.
    pub dce_removed: usize,
    /// Cleaning changes.
    pub cleaned: usize,
    /// Register allocation activity.
    pub alloc: Option<AllocReport>,
}

fn validate_if(module: &Module, enabled: bool, pass: &str) {
    if enabled {
        if let Err(e) = ir::validate(module) {
            panic!("pipeline produced invalid IL after {pass}: {e}");
        }
    }
}

/// Runs the configured pipeline over `module` in place.
pub fn run_pipeline(module: &mut Module, config: &PipelineConfig) -> PipelineReport {
    let v = config.validate_each_pass;
    let mut report = PipelineReport::default();
    for fi in 0..module.funcs.len() {
        cfg::normalize_loops(&mut module.funcs[fi]);
    }
    validate_if(module, v, "normalize");
    let outcome = analysis::analyze(module, config.analysis);
    report.analysis_stats = Some(outcome.stats);
    validate_if(module, v, "analysis");
    report.strengthened = opt::strengthen(module);
    validate_if(module, v, "strengthen");
    if config.promote {
        report.promotion = promote_module(
            module,
            &PromotionOptions {
                scalar: true,
                pointer_based: false,
                max_promoted_per_loop: config.promotion_cap,
            },
        );
        validate_if(module, v, "promotion");
    }
    if config.optimize {
        report.lvn_rewrites += opt::lvn(module);
        validate_if(module, v, "lvn");
        report.loads_eliminated = opt::loadelim(module);
        validate_if(module, v, "loadelim");
        report.constants_folded = opt::constprop(module);
        validate_if(module, v, "constprop");
        report.licm_moved = opt::licm(module);
        validate_if(module, v, "licm");
    }
    if config.pointer_promote {
        // LICM has hoisted invariant base addresses; normalize again in
        // case earlier folding perturbed loop shapes.
        for fi in 0..module.funcs.len() {
            cfg::normalize_loops(&mut module.funcs[fi]);
        }
        let r = promote_module(
            module,
            &PromotionOptions {
                scalar: false,
                pointer_based: true,
                max_promoted_per_loop: None,
            },
        );
        report.promotion.pointer = r.pointer;
        validate_if(module, v, "pointer-promotion");
    }
    if config.optimize {
        report.lvn_rewrites += opt::lvn(module);
        report.dce_removed = opt::dce(module);
        validate_if(module, v, "dce");
        report.cleaned = opt::clean(module);
        validate_if(module, v, "clean");
    }
    if let Some(opts) = &config.regalloc {
        report.alloc = Some(allocate(module, opts));
        validate_if(module, v, "regalloc");
        if config.optimize {
            report.cleaned += opt::clean(module);
            validate_if(module, v, "final clean");
        }
    }
    report
}

/// Compiles MiniC source and runs the configured pipeline.
///
/// # Errors
///
/// Returns the front end's error if the source does not compile.
pub fn compile_with(
    src: &str,
    config: &PipelineConfig,
) -> Result<(Module, PipelineReport), minic::FrontError> {
    let mut module = minic::compile(src)?;
    let report = run_pipeline(&mut module, config);
    Ok((module, report))
}

/// Compiles, optimizes, executes, and returns the execution outcome.
///
/// # Errors
///
/// Returns a boxed error for either a front-end failure or a VM fault.
pub fn compile_and_run(
    src: &str,
    config: &PipelineConfig,
    vm_options: VmOptions,
) -> Result<(Outcome, PipelineReport), Box<dyn std::error::Error>> {
    let (module, report) = compile_with(src, config)?;
    let outcome = Vm::run_main(&module, vm_options).map_err(Box::<VmError>::new)?;
    Ok((outcome, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = r#"
int g;
int h;
void bump_h() { h = h + 1; }
int main() {
    int i;
    for (i = 0; i < 500; i++) {
        g = g + i;
        bump_h();
    }
    print_int(g);
    print_int(h);
    return 0;
}
"#;

    #[test]
    fn all_four_variants_agree_on_output() {
        let mut outputs = Vec::new();
        for (name, config) in PipelineConfig::figure_variants() {
            let (out, _) = compile_and_run(PROGRAM, &config, VmOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            outputs.push((name, out.output));
        }
        for w in outputs.windows(2) {
            assert_eq!(w[0].1, w[1].1, "{} vs {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn promotion_reduces_memory_traffic() {
        let without = compile_and_run(
            PROGRAM,
            &PipelineConfig::paper_variant(AnalysisLevel::ModRef, false),
            VmOptions::default(),
        )
        .unwrap()
        .0;
        let with = compile_and_run(
            PROGRAM,
            &PipelineConfig::paper_variant(AnalysisLevel::ModRef, true),
            VmOptions::default(),
        )
        .unwrap()
        .0;
        // g is promotable; h is pinned by the call.
        assert!(
            with.counts.stores + 400 <= without.counts.stores,
            "stores {} -> {}",
            without.counts.stores,
            with.counts.stores
        );
    }

    #[test]
    fn pipeline_report_is_populated() {
        let (_, report) =
            compile_with(PROGRAM, &PipelineConfig::default()).expect("compiles");
        assert!(report.analysis_stats.is_some());
        assert!(report.alloc.is_some());
        assert!(report.promotion.scalar.promoted_tags >= 1);
    }

    #[test]
    fn unoptimized_pipeline_still_runs() {
        let config = PipelineConfig {
            optimize: false,
            promote: false,
            regalloc: None,
            ..Default::default()
        };
        let (out, _) = compile_and_run(PROGRAM, &config, VmOptions::default()).unwrap();
        assert_eq!(out.output, vec!["124750", "500"]);
    }
}
