//! The compilation pipeline.
//!
//! Reproduces the paper's §5 setup: "Each version was optimized with value
//! numbering, partial redundancy elimination, constant propagation, loop
//! invariant code motion, dead code elimination, register allocation, and
//! a basic block cleaning pass", with register promotion running in the
//! early phases and pointer-based promotion after LICM (which hoists the
//! base addresses it needs).
//!
//! The per-function work fans out over a persistent [`WorkerPool`]
//! (spawned once per pipeline run, or reused across runs via
//! [`run_pipeline_in`]) in exactly **two** rounds: one for loop
//! normalization (the whole-module interprocedural analysis needs every
//! function normalized), then one *fused* round that carries each
//! function through its entire intra-procedural chain — strengthen →
//! promote → lvn → loadelim → constprop → licm → (pointer-promote) →
//! lvn(2) → dce → clean → regalloc → clean(final) — with no barrier
//! between passes. Barriers exist only where whole-module state is
//! genuinely required: before the interprocedural analysis and at the
//! sequential spill-tag commit.
//!
//! The output is bit-identical at any thread count: per-function passes
//! share only the read-only tag table, and the allocator's spill tags are
//! committed in function-index order (see [`regalloc::commit_spills`]).
//! Per-pass wall clock is recorded *inside* the fused worker and
//! aggregated by pass name into [`PassTimings`]; for fused passes the
//! reported time is the summed per-function time (CPU time across
//! workers), not the barrier-to-barrier wall time. Each [`PassTiming`]
//! row carries a `cpu_summed` flag so consumers (and the benchmark
//! JSON) cannot silently compare the two kinds of number.

use crate::parallel::{resolve_threads, WorkerPool};
use crate::scratch::PassScratch;
use analysis::{tarjan_sccs, AnalysisLevel, CallGraph};
use ir::{FuncId, Module};
use promote::{PointerReport, PromotionReport, ScalarReport};
use regalloc::{AllocOptions, AllocReport, PendingSpill};
use std::time::{Duration, Instant};
use trace::{AllocStats, FuncTrace, TraceLog};

/// A pipeline configuration — one experimental arm.
///
/// The fields are an implementation detail of the driver: assemble a
/// configuration with [`PipelineConfig::builder`] (or go through
/// [`crate::Session::builder`], which wraps the same knobs), and treat
/// the struct as opaque. The fields remain `pub` for struct-update
/// syntax in in-tree experiment code but are hidden from the documented
/// API surface.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Interprocedural analysis precision.
    #[doc(hidden)]
    pub analysis: AnalysisLevel,
    /// Run scalar register promotion (§3.1).
    #[doc(hidden)]
    pub promote: bool,
    /// Run pointer-based promotion (§3.3) after LICM.
    #[doc(hidden)]
    pub pointer_promote: bool,
    /// Pressure throttle for scalar promotion (§7 of the paper; see
    /// [`promote::PromotionOptions::max_promoted_per_loop`]).
    #[doc(hidden)]
    pub promotion_cap: Option<usize>,
    /// Run the scalar optimizer (always on in the paper; off is useful
    /// for debugging).
    #[doc(hidden)]
    pub optimize: bool,
    /// Register allocation parameters; `None` leaves virtual registers.
    #[doc(hidden)]
    pub regalloc: Option<AllocOptions>,
    /// Validate the module at every fan-out barrier (on in debug builds):
    /// after normalization, after the interprocedural analysis, and after
    /// the fused per-function chain has run and spill tags are committed.
    /// (Passes inside the fused chain see functions at different stages
    /// concurrently, so whole-module validation between them is no longer
    /// meaningful.)
    #[doc(hidden)]
    pub validate_each_pass: bool,
    /// Worker threads for the per-function stages. `None` defers to the
    /// `PROMO_THREADS` environment variable, then to
    /// `std::thread::available_parallelism()`; `Some(1)` forces the
    /// sequential path. The compiled output is identical either way.
    #[doc(hidden)]
    pub threads: Option<usize>,
    /// Share one [`cfg::FunctionAnalyses`] cache per function across the
    /// whole pass chain (the normal mode). `false` gives every stage a
    /// throwaway cache — the rebuild-per-pass behaviour the pipeline had
    /// before the cache existed — and exists so benchmarks can report an
    /// honest uncached baseline for the analysis-build counters. Output is
    /// identical either way.
    #[doc(hidden)]
    pub share_analyses: bool,
    /// Use the sparse worklist dataflow solvers (the normal mode). `false`
    /// selects the dense full-resweep solvers everywhere — constprop loses
    /// its conditional (executable-edge) precision and every fixpoint
    /// reverts to whole-function sweeps — and exists so the benchmark can
    /// report the dense baseline's work counters from the same binary.
    #[doc(hidden)]
    pub sparse_dataflow: bool,
    /// Reuse the pool's per-worker [`PassScratch`] arenas across functions
    /// (the normal mode): every pass's dense side tables, worklists, and
    /// rewrite buffers stay warm, so the steady-state fused chain allocates
    /// almost nothing. `false` builds a fresh arena for every function —
    /// the allocation behaviour the pipeline had before the arenas existed —
    /// and exists so the benchmark can report an honest `alloc_stats_fresh`
    /// baseline column. Output is byte-identical either way.
    #[doc(hidden)]
    pub reuse_scratch: bool,
    /// Collect structured optimization remarks and per-pass deltas into a
    /// [`TraceLog`] (see [`run_pipeline_traced`]). Off by default; when
    /// off, every trace hook is a single enum-discriminant test and no
    /// event is ever constructed.
    #[doc(hidden)]
    pub trace: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            analysis: AnalysisLevel::ModRef,
            promote: true,
            pointer_promote: false,
            promotion_cap: None,
            optimize: true,
            regalloc: Some(AllocOptions::default()),
            validate_each_pass: cfg!(debug_assertions),
            threads: None,
            share_analyses: true,
            sparse_dataflow: true,
            reuse_scratch: true,
            trace: false,
        }
    }
}

impl PipelineConfig {
    /// Starts a builder from the default configuration — the intended way
    /// to assemble a non-default config without poking public fields.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder::default()
    }

    /// One of the paper's four measured variants: `{modref, pointer}` ×
    /// `{without, with}` promotion.
    pub fn paper_variant(analysis: AnalysisLevel, promote: bool) -> Self {
        PipelineConfig {
            analysis,
            promote,
            // §3.3 pointer-based promotion was measured separately; the
            // headline figures use scalar promotion only.
            pointer_promote: false,
            ..Default::default()
        }
    }

    /// The four figure-generating variants in the paper's row order.
    pub fn figure_variants() -> [(String, PipelineConfig); 4] {
        [
            (
                "modref/without".into(),
                PipelineConfig::paper_variant(AnalysisLevel::ModRef, false),
            ),
            (
                "modref/with".into(),
                PipelineConfig::paper_variant(AnalysisLevel::ModRef, true),
            ),
            (
                "pointer/without".into(),
                PipelineConfig::paper_variant(AnalysisLevel::PointsTo, false),
            ),
            (
                "pointer/with".into(),
                PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true),
            ),
        ]
    }
}

/// Fluent builder for [`PipelineConfig`], starting from the defaults.
///
/// ```
/// use driver::PipelineConfig;
/// use analysis::AnalysisLevel;
///
/// let config = PipelineConfig::builder()
///     .analysis(AnalysisLevel::PointsTo)
///     .pointer_promote(true)
///     .trace(true)
///     .build();
/// assert!(config.promote); // untouched fields keep their defaults
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Starts the builder from an existing configuration instead of the
    /// defaults.
    pub fn from_config(config: PipelineConfig) -> Self {
        PipelineConfigBuilder { config }
    }

    /// Sets the interprocedural analysis precision.
    pub fn analysis(mut self, level: AnalysisLevel) -> Self {
        self.config.analysis = level;
        self
    }

    /// Enables or disables scalar register promotion (§3.1).
    pub fn promote(mut self, on: bool) -> Self {
        self.config.promote = on;
        self
    }

    /// Enables or disables pointer-based promotion (§3.3).
    pub fn pointer_promote(mut self, on: bool) -> Self {
        self.config.pointer_promote = on;
        self
    }

    /// Sets the per-loop promotion pressure cap (`None` = unthrottled).
    pub fn promotion_cap(mut self, cap: Option<usize>) -> Self {
        self.config.promotion_cap = cap;
        self
    }

    /// Enables or disables the scalar optimizer.
    pub fn optimize(mut self, on: bool) -> Self {
        self.config.optimize = on;
        self
    }

    /// Sets register-allocation parameters (`None` leaves virtual
    /// registers).
    pub fn regalloc(mut self, opts: Option<AllocOptions>) -> Self {
        self.config.regalloc = opts;
        self
    }

    /// Enables or disables module validation at the fan-out barriers.
    pub fn validate_each_pass(mut self, on: bool) -> Self {
        self.config.validate_each_pass = on;
        self
    }

    /// Sets the worker-thread count (`None` = environment/default).
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.config.threads = threads;
        self
    }

    /// Enables or disables the shared per-function analysis cache.
    pub fn share_analyses(mut self, on: bool) -> Self {
        self.config.share_analyses = on;
        self
    }

    /// Selects sparse worklist (`true`, the default) or dense resweep
    /// (`false`) dataflow solvers.
    pub fn sparse_dataflow(mut self, on: bool) -> Self {
        self.config.sparse_dataflow = on;
        self
    }

    /// Enables or disables cross-function reuse of the per-worker pass
    /// scratch arenas.
    pub fn reuse_scratch(mut self, on: bool) -> Self {
        self.config.reuse_scratch = on;
        self
    }

    /// Enables or disables structured trace collection.
    pub fn trace(mut self, on: bool) -> Self {
        self.config.trace = on;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> PipelineConfig {
        self.config
    }
}

/// One pass's recorded time. Barrier passes (`normalize`, `analysis`)
/// report barrier-to-barrier wall time; passes inside the fused
/// per-function chain report per-function time summed across workers
/// (CPU time), which exceeds wall time whenever more than one worker is
/// busy. The `cpu_summed` flag distinguishes the two so the numbers are
/// never compared as if they were the same quantity.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// Pass label; repeated passes get distinct labels (`lvn`, `lvn(2)`).
    /// Always a static literal so recording a row never allocates.
    pub name: &'static str,
    /// Recorded duration — see `cpu_summed` for what it measures.
    pub elapsed: Duration,
    /// `true` if `elapsed` is per-function time summed across workers
    /// rather than wall time.
    pub cpu_summed: bool,
    /// Allocator traffic charged to this pass (calls and bytes). Real
    /// numbers only in binaries that install [`trace::CountingAlloc`] as
    /// the global allocator (the benchmark, the allocation-budget test);
    /// all zeros everywhere else. Counters are process-wide, so on
    /// multi-threaded runs a fused pass's figure includes whatever the
    /// other workers allocated during its window — exact on
    /// single-threaded runs, an attribution approximation otherwise.
    pub allocs: AllocStats,
}

/// Time of each pipeline pass, in execution order. Repeated passes get
/// distinct labels (`lvn`, `lvn(2)`, ...).
#[derive(Debug, Clone, Default)]
pub struct PassTimings {
    /// One row per pass in execution order.
    pub passes: Vec<PassTiming>,
}

impl PassTimings {
    fn record(
        &mut self,
        name: &'static str,
        elapsed: Duration,
        cpu_summed: bool,
        allocs: AllocStats,
    ) {
        self.passes.push(PassTiming {
            name,
            elapsed,
            cpu_summed,
            allocs,
        });
    }

    /// Total across all recorded passes (wall and CPU-summed rows mixed;
    /// an upper bound on pipeline wall time).
    pub fn total(&self) -> Duration {
        self.passes.iter().map(|p| p.elapsed).sum()
    }

    /// Elapsed time of the first pass recorded under `name`.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.passes
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.elapsed)
    }
}

/// What each pass did, for reports and ablations.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Tag-set precision achieved by the analysis.
    pub analysis_stats: Option<analysis::TagSetStats>,
    /// Opcode strengthenings applied.
    pub strengthened: usize,
    /// Promotion activity.
    pub promotion: PromotionReport,
    /// Instructions rewritten by value numbering (both runs).
    pub lvn_rewrites: usize,
    /// Loads eliminated by the PRE-style pass.
    pub loads_eliminated: usize,
    /// Constants propagated.
    pub constants_folded: usize,
    /// Instructions hoisted by LICM.
    pub licm_moved: usize,
    /// Instructions removed by DCE.
    pub dce_removed: usize,
    /// Cleaning changes.
    pub cleaned: usize,
    /// Register allocation activity.
    pub alloc: Option<AllocReport>,
    /// Per-pass wall-clock timings (scheduling-dependent; excluded from
    /// determinism comparisons).
    pub timings: PassTimings,
    /// How many times each analysis artifact (CFG, dominators, loop
    /// forest, loop geometry, liveness) was built across the whole run —
    /// the cache's effectiveness ledger. A rebuild-per-pass regression
    /// shows up here as a counter jump.
    pub analysis_builds: cfg::BuildCounts,
    /// Solver work performed by every fixpoint dataflow problem in the
    /// run (liveness, constprop, loadelim, DCE marking, points-to):
    /// blocks visited, transfer evaluations, worklist pushes. The sparse
    /// and dense modes report through the same counters, so the benchmark
    /// can print both from the same binary.
    pub dataflow_stats: cfg::DataflowStats,
    /// What the incremental cache did this compile — `Some` only when the
    /// run went through a [`crate::Session`] built with
    /// [`crate::SessionBuilder::incremental`].
    pub incremental: Option<crate::incremental::IncrementalReport>,
}

fn validate_if(module: &Module, enabled: bool, pass: &str) {
    if enabled {
        if let Err(e) = ir::validate(module) {
            panic!("pipeline produced invalid IL after {pass}: {e}");
        }
    }
}

fn timed<R>(timings: &mut PassTimings, name: &'static str, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let before = AllocStats::now();
    let r = f();
    timings.record(
        name,
        start.elapsed(),
        false,
        AllocStats::now().since(&before),
    );
    r
}

/// Which functions sit on call-graph cycles (recursion blocks promotion of
/// their locals). Derived from the call graph the analysis barrier already
/// built — the pipeline never reconstructs it.
fn recursive_set(graph: &CallGraph, nfuncs: usize) -> Vec<bool> {
    let sccs = tarjan_sccs(graph);
    (0..nfuncs)
        .map(|i| graph.is_recursive(FuncId(i as u32), &sccs))
        .collect()
}

/// Everything one function's trip through the fused intra-procedural
/// chain produced: pass counters, the allocation outcome with its
/// uncommitted spill tags, and per-pass timings. `Clone` so the
/// incremental cache can memoize it and replay it on later compiles.
#[derive(Default, Clone)]
pub(crate) struct FuncOutcome {
    pub(crate) strengthened: usize,
    pub(crate) scalar: ScalarReport,
    pub(crate) pointer: PointerReport,
    pub(crate) lvn_rewrites: usize,
    pub(crate) loads_eliminated: usize,
    pub(crate) constants_folded: usize,
    pub(crate) licm_moved: usize,
    pub(crate) dce_removed: usize,
    pub(crate) cleaned: usize,
    pub(crate) alloc: Option<(AllocReport, Vec<PendingSpill>)>,
    pub(crate) timings: Vec<(&'static str, Duration, AllocStats)>,
}

/// Per-function pass clock used inside the fused worker. Each stage also
/// snapshots the process-wide allocation counters, so binaries that
/// install [`trace::CountingAlloc`] get per-pass allocator traffic for
/// free (everyone else records zeros — the snapshot is two relaxed atomic
/// loads).
#[derive(Default)]
struct StageClock {
    rows: Vec<(&'static str, Duration, AllocStats)>,
}

impl StageClock {
    /// Room for every stage label the fused chain can emit, so the row
    /// vector is one exact allocation instead of a doubling chain.
    fn new() -> StageClock {
        StageClock {
            rows: Vec::with_capacity(16),
        }
    }

    fn timed<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let before = AllocStats::now();
        let r = f();
        self.rows
            .push((name, start.elapsed(), AllocStats::now().since(&before)));
        r
    }
}

/// Runs one chain stage against the shared cache, or — in the benchmark's
/// uncached baseline mode — against a throwaway cache whose build ledger
/// is still folded into the shared one.
fn stage<R>(
    analyses: &mut cfg::FunctionAnalyses,
    share: bool,
    f: impl FnOnce(&mut cfg::FunctionAnalyses) -> R,
) -> R {
    if share {
        f(analyses)
    } else {
        let mut throwaway = cfg::FunctionAnalyses::new();
        throwaway.set_dense_dataflow(analyses.dense_dataflow());
        let r = f(&mut throwaway);
        analyses.absorb_builds(&throwaway);
        r
    }
}

/// Mid-chain loop renormalization with the trace's stats cache kept
/// coherent: when renormalization actually changes the body (landing-pad
/// / preheader insertion, unreachable-block removal), the change is
/// recorded as a `normalize` delta and the cache refreshed. The change
/// check is a cheap structural signature — block count plus total
/// instruction count — because normalization only inserts and deletes
/// whole blocks and jumps, never rewrites an instruction in place; in
/// the usual case (already normal, nothing to do) the signature is
/// unchanged and no body scan happens at all.
fn normalize_in_traced(
    func: &mut ir::Function,
    analyses: &mut cfg::FunctionAnalyses,
    tr: &mut FuncTrace,
) {
    if !tr.enabled() {
        cfg::normalize_loops_in(func, analyses);
        return;
    }
    let signature = |f: &ir::Function| {
        (
            f.blocks.len(),
            f.blocks.iter().map(|b| b.instrs.len()).sum::<usize>(),
        )
    };
    let sig_before = signature(func);
    opt::with_delta("normalize", func, tr, |f| {
        cfg::normalize_loops_in(f, analyses);
        usize::from(signature(f) != sig_before)
    });
}

/// Carries one function through the entire fused chain. Reads only the
/// shared tag-table snapshot and per-function read-only facts, so any
/// number of these run concurrently; all tag-table writes are deferred as
/// [`PendingSpill`]s. `analyses` is the function's shared cache: a pass
/// that changes nothing leaves it warm, and every downstream pass then
/// reuses the artifacts instead of rebuilding them. `scratch` is the
/// worker's pass arena: every pass's dense side tables and buffers live
/// there, already sized by earlier functions, so the steady-state chain
/// runs allocation-free.
fn run_fused_chain(
    tags: &ir::TagTable,
    func: &mut ir::Function,
    fid: FuncId,
    recursive: bool,
    config: &PipelineConfig,
    analyses: &mut cfg::FunctionAnalyses,
    scratch: &mut PassScratch,
    tr: &mut FuncTrace,
) -> FuncOutcome {
    let share = config.share_analyses;
    let mut clock = StageClock::new();
    let mut o = FuncOutcome {
        strengthened: clock.timed("strengthen", || {
            stage(analyses, share, |fa| {
                opt::strengthen_function_traced(tags, func, fid, recursive, fa, tr)
            })
        }),
        ..Default::default()
    };
    if config.promote {
        let cap = config.promotion_cap;
        o.scalar = clock.timed("promote", || {
            stage(analyses, share, |fa| {
                normalize_in_traced(func, fa, tr);
                promote::promote_scalars_in_func_traced(tags, func, fid, recursive, cap, fa, tr)
            })
        });
    }
    if config.optimize {
        o.lvn_rewrites += clock.timed("lvn", || {
            stage(analyses, share, |fa| {
                opt::lvn_function_traced(func, fa, &mut scratch.opt.lvn, tr)
            })
        });
        o.loads_eliminated = clock.timed("loadelim", || {
            stage(analyses, share, |fa| {
                opt::loadelim_function_traced(func, fa, &mut scratch.opt.loadelim, tr)
            })
        });
        o.constants_folded = clock.timed("constprop", || {
            stage(analyses, share, |fa| {
                opt::constprop_function_traced(func, fa, &mut scratch.opt.constprop, tr)
            })
        });
        o.licm_moved = clock.timed("licm", || {
            stage(analyses, share, |fa| {
                normalize_in_traced(func, fa, tr);
                opt::licm_function_traced(func, fa, &mut scratch.opt.licm, tr)
            })
        });
    }
    if config.pointer_promote {
        // LICM has hoisted invariant base addresses; normalize again in
        // case earlier folding perturbed loop shapes (a no-op — and zero
        // rebuilds — when they did not).
        o.pointer = clock.timed("pointer-promote", || {
            stage(analyses, share, |fa| {
                normalize_in_traced(func, fa, tr);
                promote::promote_pointers_in_func_traced(func, fa, tr)
            })
        });
    }
    if config.optimize {
        o.lvn_rewrites += clock.timed("lvn(2)", || {
            stage(analyses, share, |fa| {
                opt::lvn_function_traced(func, fa, &mut scratch.opt.lvn, tr)
            })
        });
        o.dce_removed = clock.timed("dce", || {
            stage(analyses, share, |fa| {
                opt::dce_function_traced(func, fa, &mut scratch.opt.dce, tr)
            })
        });
        o.cleaned += clock.timed("clean", || {
            stage(analyses, share, |fa| {
                opt::clean_function_traced(func, fa, &mut scratch.opt.clean, tr)
            })
        });
    }
    if let Some(opts) = &config.regalloc {
        // Allocate against the read-only tag-table snapshot, recording
        // needed spill tags as provisional ids. The sequential
        // function-index-order commit after the barrier reproduces the
        // exact tag table (ids and names) of a sequential run.
        let r = clock.timed("regalloc", || {
            let mut pending = Vec::new();
            let r = stage(analyses, share, |fa| {
                regalloc::allocate_function_core_traced(
                    tags,
                    func,
                    fid,
                    opts,
                    &mut pending,
                    fa,
                    &mut scratch.alloc,
                    tr,
                )
            });
            (r, pending)
        });
        o.alloc = Some(r);
        if config.optimize {
            // Block cleaning is tag-agnostic, so it can run before the
            // provisional spill tags are interned.
            o.cleaned += clock.timed("clean(final)", || {
                stage(analyses, share, |fa| {
                    opt::clean_function_traced(func, fa, &mut scratch.opt.clean, tr)
                })
            });
        }
    }
    o.timings = clock.rows;
    o
}

/// Runs the configured pipeline over `module` in place, on a worker pool
/// spawned for this run and shut down when it returns.
pub fn run_pipeline(module: &mut Module, config: &PipelineConfig) -> PipelineReport {
    let pool = WorkerPool::new(resolve_threads(config.threads));
    run_pipeline_in(module, config, &pool)
}

/// Runs the configured pipeline over `module` in place, fanning the
/// per-function work out over a caller-provided [`WorkerPool`]. Batch
/// drivers (benchmarks, servers compiling many modules) should create one
/// pool and reuse it across runs; the pool's worker count is what
/// determines the parallelism (`config.threads` is only consulted by
/// [`run_pipeline`], which builds the pool). The compiled output is
/// byte-identical for every pool size.
pub fn run_pipeline_in(
    module: &mut Module,
    config: &PipelineConfig,
    pool: &WorkerPool,
) -> PipelineReport {
    run_pipeline_traced(module, config, pool).0
}

/// [`run_pipeline_in`] returning the structured [`TraceLog`] alongside the
/// report. The log is empty unless `config.trace` is set; when it is,
/// events are buffered per function inside the worker that owns the
/// function and assembled here in function-index order, so the log is
/// byte-identical at any pool size.
pub fn run_pipeline_traced(
    module: &mut Module,
    config: &PipelineConfig,
    pool: &WorkerPool,
) -> (PipelineReport, TraceLog) {
    run_pipeline_core(module, config, pool, None)
}

/// The incremental context a cache-backed run threads through the core:
/// the session's function cache plus (when compiling from source) the
/// raw-text fingerprint that lets unchanged functions skip the canonical
/// body-hash walk.
pub(crate) struct IncrementalRun<'a> {
    /// The session's persistent per-function cache.
    pub cache: &'a mut crate::incremental::FuncCache,
    /// Raw-text hints for the module being compiled, if it came from
    /// MiniC source this compile.
    pub source: Option<&'a minic::SourceFingerprint>,
}

/// The one pipeline body behind both the plain and the incremental entry
/// points. With `incr` set, functions whose fingerprints match the cache
/// are spliced instead of recompiled and the fused fan-out covers only
/// the residual set; the sequential epilogue (spill commit, counter and
/// trace assembly in function-index order) is identical either way, which
/// is what keeps warm output byte-identical to cold.
pub(crate) fn run_pipeline_core(
    module: &mut Module,
    config: &PipelineConfig,
    pool: &WorkerPool,
    mut incr: Option<IncrementalRun<'_>>,
) -> (PipelineReport, TraceLog) {
    let v = config.validate_each_pass;
    let mut report = PipelineReport::default();
    let mut timings = PassTimings::default();
    // One analysis cache per function, alive from normalization to the
    // final clean: every pass both consumes it and reports what it
    // invalidated, so converged passes cost zero rebuilds downstream.
    // With scratch reuse on, the shells come recycled from the pool (warm
    // buffers, stale artifacts) and go back to it at the end of the run;
    // the fresh-arena baseline allocates cold ones.
    let mut analyses: Vec<cfg::FunctionAnalyses> = if config.reuse_scratch {
        pool.take_analyses(module.funcs.len())
    } else {
        module
            .funcs
            .iter()
            .map(|_| cfg::FunctionAnalyses::new())
            .collect()
    };
    for fa in &mut analyses {
        fa.set_dense_dataflow(!config.sparse_dataflow);
    }
    // One trace buffer per function, alive across every round that touches
    // the function, so each function's events arrive in chain order.
    let mut traces: Vec<FuncTrace> = module
        .funcs
        .iter()
        .map(|_| {
            if config.trace {
                FuncTrace::on()
            } else {
                FuncTrace::off()
            }
        })
        .collect();
    timed(&mut timings, "normalize", || {
        let items: Vec<_> = module
            .funcs
            .iter_mut()
            .zip(analyses.iter_mut())
            .zip(traces.iter_mut())
            .collect();
        pool.run(items, |_, ((f, fa), tr)| {
            let before = tr.enabled().then(|| f.body_stats());
            stage(fa, config.share_analyses, |fa| {
                cfg::normalize_loops_in(f, fa)
            });
            if let Some(before) = before {
                let after = f.body_stats();
                let (i, l, s) = before.delta(&after);
                tr.delta("normalize", i, l, s);
                // Seed the stats cache so the chain's first delta stage
                // starts from this scan instead of redoing it.
                tr.set_stats((after.instrs, after.loads, after.stores));
            }
        });
    });
    validate_if(module, v, "normalize");
    let outcome = timed(&mut timings, "analysis", || {
        analysis::analyze_traced_with(
            module,
            config.analysis,
            config.trace.then_some(traces.as_mut_slice()),
            !config.sparse_dataflow,
        )
    });
    report.analysis_stats = Some(outcome.stats);
    report.dataflow_stats.add(&outcome.dataflow);
    validate_if(module, v, "analysis");
    // The interprocedural barrier mutates instruction tag sets (no
    // registers, no edges) — except the SSA-roundtrip level, which
    // restructures bodies wholesale.
    for fa in &mut analyses {
        if matches!(config.analysis, AnalysisLevel::PointsToSsa) {
            fa.note_shape_changed();
        } else {
            fa.note_body_changed();
        }
    }
    // Whole-module facts the fused chain reads: which functions sit on
    // call-graph cycles, straight off the analysis barrier's call graph.
    let recursive = recursive_set(&outcome.call_graph, module.funcs.len());
    // Incremental layer: fingerprint every function against the cache,
    // splice the hits (cached body remapped into this module, chain
    // counters and trace suffix replayed), and leave only the misses for
    // the fused fan-out.
    let mut spliced: Vec<Option<FuncOutcome>> = module.funcs.iter().map(|_| None).collect();
    let mut fingerprints = None;
    let mut incr_report = None;
    if let Some(run) = incr.as_mut() {
        run.cache.begin_compile();
        let summaries = analysis::modref_summary_hashes(module, &outcome.modref);
        let h_config = crate::incremental::config_hash(config);
        let fps = crate::incremental::compute_fingerprints(
            module, run.cache, &summaries, &recursive, h_config, run.source,
        );
        let mut rep = crate::incremental::IncrementalReport {
            funcs_total: module.funcs.len(),
            ..Default::default()
        };
        for i in 0..module.funcs.len() {
            let (fp, h_body) = fps.per_func[i];
            match run.cache.splice(module, i, fp) {
                Some((o, events)) => {
                    traces[i].append_events(events);
                    spliced[i] = Some(o);
                    rep.cache_hits += 1;
                }
                None => {
                    rep.funcs_recompiled += 1;
                    if run.cache.peek_body_hash(&module.funcs[i].name) == Some(h_body) {
                        rep.summary_invalidated += 1;
                    }
                }
            }
        }
        fingerprints = Some(fps);
        incr_report = Some(rep);
    }
    // Event counts before the chain runs: the suffix past each mark is
    // exactly what the chain appends, which is what the cache memoizes.
    let chain_marks: Vec<usize> = if incr.is_some() {
        traces.iter().map(|t| t.event_count()).collect()
    } else {
        Vec::new()
    };
    let chain_outcomes: Vec<(usize, FuncOutcome)> = {
        // `funcs` and `tags` are disjoint fields, so the mutable fan-out
        // and the shared tag-table snapshot coexist.
        let tags = &module.tags;
        let items: Vec<_> = module
            .funcs
            .iter_mut()
            .zip(analyses.iter_mut())
            .zip(traces.iter_mut())
            .enumerate()
            .filter(|(i, _)| spliced[*i].is_none())
            .map(|(i, ((func, fa), tr))| (i, func, fa, tr))
            .collect();
        pool.run(items, |_, (i, func, fa, tr)| {
            let fid = FuncId(i as u32);
            let o = if config.reuse_scratch {
                pool.with_scratch(|scratch| {
                    run_fused_chain(tags, func, fid, recursive[i], config, fa, scratch, tr)
                })
            } else {
                // The fresh-arena baseline: every function pays the full
                // allocation cost the arenas exist to avoid.
                let mut scratch = PassScratch::default();
                run_fused_chain(tags, func, fid, recursive[i], config, fa, &mut scratch, tr)
            };
            (i, o)
        })
    };
    let mut outcomes = spliced;
    let mut hit = vec![true; outcomes.len()];
    for (i, o) in chain_outcomes {
        outcomes[i] = Some(o);
        hit[i] = false;
    }
    // Sequential epilogue: commit spill tags in function-index order and
    // aggregate counters plus per-pass timings (summed by pass name, in
    // chain order).
    let commit_start = Instant::now();
    let mut alloc_total: Option<AllocReport> = None;
    let mut pass_totals: Vec<(&'static str, Duration, AllocStats)> = Vec::new();
    for (fi, o) in outcomes.into_iter().enumerate() {
        let o = o.expect("every function has a chain or cache outcome");
        // Memoize fresh chain output before the spill commit rewrites the
        // provisional tags out of the body.
        if let Some(run) = incr.as_mut() {
            if !hit[fi] {
                let fps = fingerprints.as_ref().expect("fingerprints computed");
                let (fp, h_body) = fps.per_func[fi];
                let events = traces[fi].events_from(chain_marks[fi]);
                run.cache
                    .store(module, fi, fp, h_body, fps.hints[fi], &o, events);
            }
        }
        report.strengthened += o.strengthened;
        report.promotion.scalar.loops += o.scalar.loops;
        report.promotion.scalar.promoted_tags += o.scalar.promoted_tags;
        report.promotion.scalar.lifts += o.scalar.lifts;
        report.promotion.scalar.rewritten_refs += o.scalar.rewritten_refs;
        report.promotion.pointer.promoted_bases += o.pointer.promoted_bases;
        report.promotion.pointer.rewritten_refs += o.pointer.rewritten_refs;
        report.promotion.pointer.lifts += o.pointer.lifts;
        report.lvn_rewrites += o.lvn_rewrites;
        report.loads_eliminated += o.loads_eliminated;
        report.constants_folded += o.constants_folded;
        report.licm_moved += o.licm_moved;
        report.dce_removed += o.dce_removed;
        report.cleaned += o.cleaned;
        if let Some((r, pending)) = o.alloc {
            regalloc::commit_spills(module, FuncId(fi as u32), pending);
            let total = alloc_total.get_or_insert_with(AllocReport::default);
            total.coalesced += r.coalesced;
            total.spilled += r.spilled;
            total.rematerialized += r.rematerialized;
            total.spill_loads += r.spill_loads;
            total.spill_stores += r.spill_stores;
            total.rounds += r.rounds;
        }
        for (name, d, a) in o.timings {
            match pass_totals.iter_mut().find(|(n, _, _)| *n == name) {
                Some(entry) => {
                    entry.1 += d;
                    entry.2.merge(&a);
                }
                None => pass_totals.push((name, d, a)),
            }
        }
    }
    report.alloc = alloc_total;
    for fa in &analyses {
        report.analysis_builds.add(&fa.builds);
        report.dataflow_stats.add(&fa.dataflow);
    }
    if config.reuse_scratch {
        pool.return_analyses(analyses);
    }
    let commit_elapsed = commit_start.elapsed();
    for (name, d, a) in pass_totals {
        // The spill-tag commit is the sequential tail of allocation;
        // account it there rather than inventing a pass label.
        let d = if name == "regalloc" {
            d + commit_elapsed
        } else {
            d
        };
        timings.record(name, d, true, a);
    }
    validate_if(module, v, "fused per-function chain");
    report.timings = timings;
    if let Some(run) = incr.as_mut() {
        let rep = incr_report.as_mut().expect("incremental report started");
        rep.evictions = run.cache.evict_to_budget();
        rep.cache_bytes = run.cache.bytes();
    }
    report.incremental = incr_report;
    // Assemble the log in function-index order — the determinism
    // guarantee. Empty (and allocation-free) when tracing is off.
    let mut log = TraceLog::new();
    for (fi, tr) in traces.iter_mut().enumerate() {
        log.extend_func(&module.funcs[fi].name, tr.take_events());
        if hit[fi] {
            // Out-of-band marker: the rendered/serialized stream is
            // unchanged, but tests and tools can see the replay happened.
            log.mark_cached(&module.funcs[fi].name);
        }
    }
    (report, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use vm::Outcome;

    const PROGRAM: &str = r#"
int g;
int h;
void bump_h() { h = h + 1; }
int main() {
    int i;
    for (i = 0; i < 500; i++) {
        g = g + i;
        bump_h();
    }
    print_int(g);
    print_int(h);
    return 0;
}
"#;

    fn run(config: PipelineConfig) -> (Outcome, PipelineReport) {
        let c = Session::from_config(config)
            .compile_and_run(PROGRAM)
            .expect("compile and run");
        (c.outcome.expect("outcome populated"), c.report)
    }

    #[test]
    fn all_four_variants_agree_on_output() {
        let mut outputs = Vec::new();
        for (name, config) in PipelineConfig::figure_variants() {
            let (out, _) = run(config);
            outputs.push((name, out.output));
        }
        for w in outputs.windows(2) {
            assert_eq!(w[0].1, w[1].1, "{} vs {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn promotion_reduces_memory_traffic() {
        let without = run(PipelineConfig::paper_variant(AnalysisLevel::ModRef, false)).0;
        let with = run(PipelineConfig::paper_variant(AnalysisLevel::ModRef, true)).0;
        // g is promotable; h is pinned by the call.
        assert!(
            with.counts.stores + 400 <= without.counts.stores,
            "stores {} -> {}",
            without.counts.stores,
            with.counts.stores
        );
    }

    #[test]
    fn pipeline_report_is_populated() {
        let report = Session::default()
            .compile(PROGRAM)
            .expect("compiles")
            .report;
        assert!(report.analysis_stats.is_some());
        assert!(report.alloc.is_some());
        assert!(report.promotion.scalar.promoted_tags >= 1);
        // Every executed pass left a timing row.
        assert!(report.timings.get("analysis").is_some());
        assert!(report.timings.get("regalloc").is_some());
        assert!(report.timings.total() > Duration::ZERO);
    }

    #[test]
    fn unoptimized_pipeline_still_runs() {
        let config = PipelineConfig::builder()
            .optimize(false)
            .promote(false)
            .regalloc(None)
            .build();
        let (out, _) = run(config);
        assert_eq!(out.output, vec!["124750", "500"]);
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let compile = |threads| {
            let c = Session::builder()
                .threads(Some(threads))
                .build()
                .compile(PROGRAM)
                .expect("compiles");
            (c.module, c.report)
        };
        let (m1, r1) = compile(1);
        let (m4, r4) = compile(4);
        assert_eq!(
            m1.to_string(),
            m4.to_string(),
            "printed IL must be identical"
        );
        assert_eq!(r1.strengthened, r4.strengthened);
        assert_eq!(r1.promotion, r4.promotion);
        assert_eq!(r1.alloc, r4.alloc);
    }
}
