//! Content-addressed incremental recompilation.
//!
//! A [`FuncCache`] memoizes each function's trip through the fused
//! intra-procedural pass chain across compiles of the *same*
//! [`crate::Session`]. The key is a 64-bit **fingerprint** of everything
//! the chain's output can depend on:
//!
//! * the function's canonical post-lowering body ([`ir::hash::body_hash`]
//!   — structural, resolved through tag and function *names*, so arena
//!   index shifts between compiles do not perturb it),
//! * the interprocedural facts the analysis barrier wrote into the body
//!   — call-site MOD/REF lists, refined pointer tag sets, and the
//!   referenced tags' interned attributes ([`ir::hash::facts_hash`]),
//! * the function's transitive MOD/REF summary digest
//!   ([`analysis::modref_summary_hashes`] — this is what propagates a
//!   *callee's* behaviour change up the call graph, per
//!   [`analysis::CallGraph::callers`], even when the caller's own body
//!   is untouched),
//! * the output-affecting [`crate::PipelineConfig`] fields, and
//! * whether the function sits on a call-graph cycle.
//!
//! On a hit the cached function body is *spliced* back into the module:
//! tag and function ids are re-resolved by name against the current
//! module (ids shift when the edit added or removed definitions), the
//! cached chain counters and remark events are replayed, and the cached
//! pending spill tags rejoin the sequential function-index-order commit —
//! so a warm compile's module, report counters, and remark stream are
//! byte-identical to a cold compile's. Only fingerprint misses go through
//! the chain, and the worker pool fans out over exactly that residual
//! set.
//!
//! Entries are evicted least-recently-used when the cache exceeds its
//! byte budget ([`crate::SessionBuilder::cache_budget`]).

use crate::pipeline::{FuncOutcome, PipelineConfig};
use analysis::AnalysisLevel;
use ir::hash::{body_hash, fx_mix, FxHasher};
use ir::{DenseTagSet, Function, Instr, Module, TagId, TagSet};
use regalloc::PROVISIONAL_SPILL_BASE;
use std::collections::HashMap;
use std::hash::Hasher;
use trace::PassEvent;

/// Default cache byte budget: plenty for every in-tree workload while
/// still bounding a long-lived compile service.
pub const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

/// What the incremental layer did during one compile — the per-run view
/// surfaced as [`crate::PipelineReport::incremental`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Functions in the module.
    pub funcs_total: usize,
    /// Functions that went through the fused pass chain (fingerprint
    /// misses).
    pub funcs_recompiled: usize,
    /// Functions spliced from the cache.
    pub cache_hits: usize,
    /// Misses whose own body hash was unchanged — the function was
    /// recompiled only because an interprocedural fact changed under it
    /// (a callee's MOD/REF summary, a referenced tag's attributes) or
    /// the configuration changed.
    pub summary_invalidated: usize,
    /// Entries evicted by the byte budget after this compile.
    pub evictions: usize,
    /// Cache size in (approximate) bytes after this compile.
    pub cache_bytes: usize,
}

impl IncrementalReport {
    /// Hits over total functions, in `[0, 1]` (1.0 for an empty module).
    pub fn hit_rate(&self) -> f64 {
        if self.funcs_total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / self.funcs_total as f64
        }
    }
}

/// One memoized function: the chain's output plus everything needed to
/// replay it into a later compile of a (possibly edited) module.
struct CacheEntry {
    /// Full fingerprint (body + facts + summary + config + recursion).
    fp: u64,
    /// The body component alone, kept separate so a miss can be
    /// classified: same body but different `fp` means an interprocedural
    /// fact or config change invalidated the function.
    h_body: u64,
    /// Raw-text hint from [`minic::source_fingerprint`] at store time;
    /// when the next compile's hint matches, `h_body` is reused without
    /// re-walking the lowered IR.
    text_hint: Option<u64>,
    /// Post-chain body with provisional spill ids still in place (the
    /// spill commit is replayed per compile so tag ids come out in
    /// function-index order, exactly as a cold compile interns them).
    body: Function,
    /// Names of every non-provisional tag id the body references, for
    /// re-resolution against the next compile's tag table.
    tag_names: Vec<(u32, String)>,
    /// Names of every function id the body references.
    func_names: Vec<(u32, String)>,
    /// Chain counters, allocation report, and pending spills to replay.
    /// The stored per-pass timing rows are *not* replayed into warm
    /// reports — a hit spends none of that time — but ride along for
    /// inspection.
    outcome: FuncOutcome,
    /// The chain's trace-event suffix (empty when the config traces
    /// nothing), replayed verbatim so warm remark streams match cold.
    events: Vec<PassEvent>,
    /// Approximate heap footprint, for the eviction budget.
    approx_bytes: usize,
    /// Last compile tick that stored or spliced this entry (LRU clock).
    last_used: u64,
}

/// The per-session function cache. See the module docs for the
/// fingerprint definition and splice semantics.
pub struct FuncCache {
    entries: HashMap<String, CacheEntry>,
    byte_budget: usize,
    bytes: usize,
    tick: u64,
}

impl std::fmt::Debug for FuncCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuncCache")
            .field("entries", &self.entries.len())
            .field("bytes", &self.bytes)
            .field("byte_budget", &self.byte_budget)
            .finish()
    }
}

impl FuncCache {
    /// An empty cache with the given eviction budget in bytes.
    pub fn new(byte_budget: usize) -> FuncCache {
        FuncCache {
            entries: HashMap::new(),
            byte_budget,
            bytes: 0,
            tick: 0,
        }
    }

    /// Number of cached functions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Advances the LRU clock; called once per compile.
    pub(crate) fn begin_compile(&mut self) {
        self.tick += 1;
    }

    /// If `name` is cached and was stored under exactly this raw-text
    /// hint, returns the memoized body hash — the short-circuit that lets
    /// unchanged source text skip the canonical IR walk entirely.
    pub(crate) fn cached_body_hash(&self, name: &str, hint: u64) -> Option<u64> {
        let e = self.entries.get(name)?;
        (e.text_hint == Some(hint)).then_some(e.h_body)
    }

    /// The cached body-hash component for `name`, if any (for miss
    /// classification).
    pub(crate) fn peek_body_hash(&self, name: &str) -> Option<u64> {
        self.entries.get(name).map(|e| e.h_body)
    }

    /// Attempts a cache hit for function `fi` of `module`: the entry must
    /// exist under the function's name, carry fingerprint `fp`, and every
    /// tag and function name it references must resolve in the current
    /// module. On success the cached body (ids remapped) replaces
    /// `module.funcs[fi]` and the chain outcome plus trace-event suffix
    /// are returned; any failure is reported as `None` (a plain miss).
    pub(crate) fn splice(
        &mut self,
        module: &mut Module,
        fi: usize,
        fp: u64,
    ) -> Option<(FuncOutcome, Vec<PassEvent>)> {
        let tick = self.tick;
        let entry = self.entries.get_mut(&module.funcs[fi].name)?;
        if entry.fp != fp {
            return None;
        }
        let body = remap_body(entry, module)?;
        entry.last_used = tick;
        let mut outcome = entry.outcome.clone();
        // A spliced function spends no chain time *this* compile; replaying
        // the stored rows would overstate the warm run's per-pass cost.
        outcome.timings.clear();
        let events = entry.events.clone();
        module.funcs[fi] = body;
        Some((outcome, events))
    }

    /// Memoizes function `fi`'s chain output. Must be called *before* the
    /// spill commit mutates the body: the stored copy keeps its
    /// provisional spill ids so the commit can be replayed per compile.
    pub(crate) fn store(
        &mut self,
        module: &Module,
        fi: usize,
        fp: u64,
        h_body: u64,
        text_hint: Option<u64>,
        outcome: &FuncOutcome,
        events: Vec<PassEvent>,
    ) {
        let func = &module.funcs[fi];
        let mut tag_ids: Vec<u32> = Vec::new();
        let mut func_ids: Vec<u32> = Vec::new();
        for b in &func.blocks {
            for instr in &b.instrs {
                collect_refs(instr, &mut tag_ids, &mut func_ids);
            }
        }
        tag_ids.sort_unstable();
        tag_ids.dedup();
        func_ids.sort_unstable();
        func_ids.dedup();
        let tag_names: Vec<(u32, String)> = tag_ids
            .into_iter()
            .filter(|&id| id < PROVISIONAL_SPILL_BASE)
            .map(|id| (id, module.tags.info(TagId(id)).name.clone()))
            .collect();
        let func_names: Vec<(u32, String)> = func_ids
            .into_iter()
            .map(|id| (id, module.funcs[id as usize].name.clone()))
            .collect();
        let entry = CacheEntry {
            fp,
            h_body,
            text_hint,
            body: func.clone(),
            approx_bytes: approx_entry_bytes(func, &tag_names, &func_names, &events),
            tag_names,
            func_names,
            outcome: outcome.clone(),
            events,
            last_used: self.tick,
        };
        if let Some(old) = self.entries.insert(func.name.clone(), entry) {
            self.bytes -= old.approx_bytes;
        }
        self.bytes += self.entries[&func.name].approx_bytes;
    }

    /// Evicts least-recently-used entries until the cache fits its byte
    /// budget; returns how many were dropped.
    pub(crate) fn evict_to_budget(&mut self) -> usize {
        let mut evicted = 0;
        while self.bytes > self.byte_budget && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(name, e)| (e.last_used, name.as_str()))
                .map(|(name, _)| name.clone())
                .expect("non-empty cache has a minimum");
            let old = self.entries.remove(&victim).expect("victim exists");
            self.bytes -= old.approx_bytes;
            evicted += 1;
        }
        evicted
    }
}

/// Rough per-entry heap footprint: instruction payloads, name tables,
/// and trace events, plus a fixed overhead for the maps and vectors.
fn approx_entry_bytes(
    func: &Function,
    tag_names: &[(u32, String)],
    func_names: &[(u32, String)],
    events: &[PassEvent],
) -> usize {
    let instrs: usize = func.blocks.iter().map(|b| b.instrs.len()).sum();
    let names: usize = tag_names
        .iter()
        .chain(func_names)
        .map(|(_, n)| n.len() + 16)
        .sum();
    instrs * std::mem::size_of::<Instr>()
        + func.blocks.len() * std::mem::size_of::<ir::Block>()
        + events.len() * std::mem::size_of::<PassEvent>()
        + names
        + func.name.len()
        + 256
}

/// Every tag and function id an instruction references — the identifiers
/// a splice must re-resolve by name in the destination module.
fn collect_refs(instr: &Instr, tags: &mut Vec<u32>, funcs: &mut Vec<u32>) {
    let mut set = |s: &TagSet| {
        if let TagSet::Set(d) = s {
            tags.extend(d.iter().map(|t| t.0));
        }
    };
    match instr {
        Instr::CLoad { tag, .. }
        | Instr::SLoad { tag, .. }
        | Instr::SStore { tag, .. }
        | Instr::Lea { tag, .. } => tags.push(tag.0),
        Instr::Alloc { site, .. } => tags.push(site.0),
        Instr::Load { tags: t, .. } | Instr::Store { tags: t, .. } => set(t),
        Instr::FuncAddr { func, .. } => funcs.push(func.0),
        Instr::Call {
            callee, mods, refs, ..
        } => {
            if let ir::Callee::Direct(f) = callee {
                funcs.push(f.0);
            }
            set(mods);
            set(refs);
        }
        _ => {}
    }
}

/// Clones the cached body with every tag and function id re-resolved by
/// name against `module`. Provisional spill ids (>=
/// [`PROVISIONAL_SPILL_BASE`]) pass through untouched — the per-compile
/// spill commit rewrites them. `None` if any name fails to resolve.
fn remap_body(entry: &CacheEntry, module: &Module) -> Option<Function> {
    let mut tag_map: HashMap<u32, TagId> = HashMap::with_capacity(entry.tag_names.len());
    for (old, name) in &entry.tag_names {
        tag_map.insert(*old, module.tags.lookup(name)?);
    }
    let mut func_map: HashMap<u32, ir::FuncId> = HashMap::with_capacity(entry.func_names.len());
    for (old, name) in &entry.func_names {
        func_map.insert(*old, module.lookup_func(name)?);
    }
    let mut body = entry.body.clone();
    for b in &mut body.blocks {
        for instr in &mut b.instrs {
            remap_instr(instr, &tag_map, &func_map)?;
        }
    }
    Some(body)
}

fn remap_tag(tag: &mut TagId, map: &HashMap<u32, TagId>) -> Option<()> {
    if tag.0 >= PROVISIONAL_SPILL_BASE {
        return Some(());
    }
    *tag = *map.get(&tag.0)?;
    Some(())
}

fn remap_set(set: &mut TagSet, map: &HashMap<u32, TagId>) -> Option<()> {
    if let TagSet::Set(d) = set {
        let mut out = DenseTagSet::new();
        for t in d.iter() {
            if t.0 >= PROVISIONAL_SPILL_BASE {
                out.insert(t);
            } else {
                out.insert(*map.get(&t.0)?);
            }
        }
        *d = out;
    }
    Some(())
}

fn remap_instr(
    instr: &mut Instr,
    tag_map: &HashMap<u32, TagId>,
    func_map: &HashMap<u32, ir::FuncId>,
) -> Option<()> {
    match instr {
        Instr::CLoad { tag, .. }
        | Instr::SLoad { tag, .. }
        | Instr::SStore { tag, .. }
        | Instr::Lea { tag, .. } => remap_tag(tag, tag_map),
        Instr::Alloc { site, .. } => remap_tag(site, tag_map),
        Instr::Load { tags, .. } | Instr::Store { tags, .. } => remap_set(tags, tag_map),
        Instr::FuncAddr { func, .. } => {
            *func = *func_map.get(&func.0)?;
            Some(())
        }
        Instr::Call {
            callee, mods, refs, ..
        } => {
            if let ir::Callee::Direct(f) = callee {
                *f = *func_map.get(&f.0)?;
            }
            remap_set(mods, tag_map)?;
            remap_set(refs, tag_map)
        }
        _ => Some(()),
    }
}

/// Digest of the [`PipelineConfig`] fields that can change compiled
/// output or the replayed report/trace. Scheduling and instrumentation
/// knobs that are documented output-identical (`threads`,
/// `validate_each_pass`, `share_analyses`, `reuse_scratch`) are
/// deliberately excluded so flipping them keeps the cache warm.
pub(crate) fn config_hash(config: &PipelineConfig) -> u64 {
    let mut h = FxHasher::new();
    h.write_u8(match config.analysis {
        AnalysisLevel::AddressTaken => 0,
        AnalysisLevel::ModRef => 1,
        AnalysisLevel::Steensgaard => 2,
        AnalysisLevel::PointsTo => 3,
        AnalysisLevel::PointsToSsa => 4,
    });
    h.write_u8(config.promote as u8);
    h.write_u8(config.pointer_promote as u8);
    match config.promotion_cap {
        Some(cap) => {
            h.write_u8(1);
            h.write_usize(cap);
        }
        None => h.write_u8(0),
    }
    h.write_u8(config.optimize as u8);
    match &config.regalloc {
        Some(opts) => {
            h.write_u8(1);
            h.write_usize(opts.num_regs);
            h.write_usize(opts.max_rounds);
        }
        None => h.write_u8(0),
    }
    // The dense arm solves constprop without executable-edge precision,
    // so counters (and in principle rewrites) may differ: keep the arms
    // in separate cache generations.
    h.write_u8(config.sparse_dataflow as u8);
    // Entries store the trace-event suffix of the compile that created
    // them; a trace-off entry replayed into a trace-on compile would
    // silently drop remarks.
    h.write_u8(config.trace as u8);
    h.finish()
}

/// The full per-function fingerprint. `summary` is the function's own
/// transitive MOD/REF digest, which folds in every callee's memory
/// behaviour — the dependency-aware half of invalidation.
pub(crate) fn fingerprint(
    h_body: u64,
    h_facts: u64,
    summary: u64,
    h_config: u64,
    recursive: bool,
) -> u64 {
    fx_mix(
        fx_mix(h_body, h_facts),
        fx_mix(summary, fx_mix(h_config, 1 + recursive as u64)),
    )
}

/// Per-function fingerprint inputs for one compile, computed at the
/// analysis barrier (facts and summaries are only meaningful after it).
pub(crate) struct Fingerprints {
    /// `(fp, h_body)` per function, module index order.
    pub per_func: Vec<(u64, u64)>,
    /// Raw-text hints (by function, `None` when no source fingerprint
    /// was available or the name was ambiguous).
    pub hints: Vec<Option<u64>>,
}

/// Computes every function's fingerprint. `hints` (from
/// [`minic::source_fingerprint`]) short-circuit the canonical body walk
/// for functions whose raw text — and that of everything lowered before
/// them — is unchanged since the entry was stored.
pub(crate) fn compute_fingerprints(
    module: &Module,
    cache: &FuncCache,
    summaries: &[u64],
    recursive: &[bool],
    h_config: u64,
    source: Option<&minic::SourceFingerprint>,
) -> Fingerprints {
    let mut per_func = Vec::with_capacity(module.funcs.len());
    let mut hints = Vec::with_capacity(module.funcs.len());
    for (i, func) in module.funcs.iter().enumerate() {
        let hint = source.and_then(|s| s.hint(&func.name));
        let h_body = hint
            .and_then(|h| cache.cached_body_hash(&func.name, h))
            .unwrap_or_else(|| body_hash(module, func));
        let h_facts = ir::hash::facts_hash(module, func);
        let fp = fingerprint(h_body, h_facts, summaries[i], h_config, recursive[i]);
        per_func.push((fp, h_body));
        hints.push(hint);
    }
    Fingerprints { per_func, hints }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_sees_output_knobs_only() {
        let base = PipelineConfig::default();
        let h = config_hash(&base);
        // Scheduling/instrumentation knobs keep the cache warm.
        let mut c = base.clone();
        c.threads = Some(7);
        c.validate_each_pass = !c.validate_each_pass;
        c.share_analyses = !c.share_analyses;
        c.reuse_scratch = !c.reuse_scratch;
        assert_eq!(config_hash(&c), h);
        // Output-affecting knobs miss.
        let mut c = base.clone();
        c.sparse_dataflow = false;
        assert_ne!(config_hash(&c), h);
        let mut c = base.clone();
        c.pointer_promote = true;
        assert_ne!(config_hash(&c), h);
        let mut c = base.clone();
        c.regalloc = Some(regalloc::AllocOptions {
            num_regs: 8,
            ..Default::default()
        });
        assert_ne!(config_hash(&c), h);
    }

    #[test]
    fn eviction_is_lru_under_budget() {
        let mut cache = FuncCache::new(1);
        let module = {
            let mut m = Module::new();
            m.add_func(Function::new("a", 0));
            m.add_func(Function::new("b", 0));
            m
        };
        cache.begin_compile();
        let o = FuncOutcome::default();
        cache.store(&module, 0, 1, 1, None, &o, Vec::new());
        cache.begin_compile();
        cache.store(&module, 1, 2, 2, None, &o, Vec::new());
        assert_eq!(cache.len(), 2);
        let evicted = cache.evict_to_budget();
        // Budget of one byte cannot hold either entry.
        assert_eq!(evicted, 2);
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }
}
