//! Persistent worker pool for per-function pipeline stages.
//!
//! Every per-function pass in the pipeline reads at most the shared tag
//! table and writes only its own [`ir::Function`], so the fan-out is
//! embarrassingly parallel. Earlier revisions spawned a fresh
//! `std::thread::scope` per pass — thirteen spawn rounds and thirteen full
//! barriers per compiled module, each wrapping sub-millisecond work — and
//! parked every item in its own `Mutex<Option<T>>` slot. That overhead
//! made the "parallel" pipeline *slower* than sequential on the whole
//! benchmark suite.
//!
//! [`WorkerPool`] fixes the architecture: worker threads are spawned once
//! (per pipeline run, or once per process for batch drivers that reuse a
//! pool) and fed through a shared queue guarded by a mutex + condvar.
//! A batch submitted via [`WorkerPool::run`] moves items through the
//! queue's claim cursor and returns results over an `mpsc` channel — no
//! per-item locks, no per-item heap slots. The submitting thread drains
//! the batch alongside the workers, so a pool of `n` threads spawns only
//! `n - 1` OS threads and `threads <= 1` degenerates to a plain inline
//! loop with zero synchronization.
//!
//! Only `std` is used — no thread-pool crates — because the build must
//! work offline.

use crate::scratch::PassScratch;
use ir::{FuncId, Function};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};

/// Picks the worker count: an explicit `threads` wins; otherwise the
/// `PROMO_THREADS` environment variable; otherwise
/// `std::thread::available_parallelism()`.
///
/// This is the *only* place `PROMO_THREADS` is read; see the README's
/// "Pipeline wall-clock benchmark" section for the user-facing semantics.
pub fn resolve_threads(threads: Option<usize>) -> usize {
    if let Some(n) = threads {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("PROMO_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A borrowed batch, erased so the long-lived workers (whose closures must
/// be `'static`) can run it. Soundness argument at [`WorkerPool::run`]:
/// the submitting thread does not return until every queued handle has
/// been consumed and its `run` call has finished, so the pointee — a
/// stack-allocated `Batch` — strictly outlives all worker access.
struct BatchHandle(*const (dyn BatchRun + Sync));

// SAFETY: the pointee is `Sync` (shared access only) and, per the
// invariant above, outlives every use of the pointer.
unsafe impl Send for BatchHandle {}

trait BatchRun {
    fn run(&self);
}

/// Shared pool state: the job queue and its wakeup signal.
struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
}

struct Queue {
    jobs: VecDeque<BatchHandle>,
    shutdown: bool,
}

/// A persistent worker pool. Threads are spawned once, in [`new`], and
/// shut down (joined) when the pool is dropped; batches submitted through
/// [`run`] reuse them with no further spawns.
///
/// [`new`]: WorkerPool::new
/// [`run`]: WorkerPool::run
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// One pass-scratch arena per worker (including the submitting
    /// thread), claimed by [`WorkerPool::with_scratch`]. The slots live as
    /// long as the pool, so arenas stay warm across batches *and* across
    /// pipeline runs.
    scratches: Vec<Mutex<PassScratch>>,
    /// Recycled per-function analysis shells handed back by previous
    /// pipeline runs ([`WorkerPool::return_analyses`]) and drawn at the
    /// start of each run ([`WorkerPool::take_analyses`]), so artifact
    /// rebuilds land in warm buffers instead of fresh allocations.
    analyses: Mutex<Vec<cfg::FunctionAnalyses>>,
}

/// Upper bound on pooled analysis shells: enough for any realistic module,
/// small enough that one huge compilation does not pin its peak memory.
const MAX_POOLED_ANALYSES: usize = 256;

impl WorkerPool {
    /// Creates a pool with `threads` total workers. The calling thread
    /// counts as one: `threads - 1` OS threads are spawned, and
    /// `threads <= 1` spawns none at all (every [`run`] call then executes
    /// inline).
    ///
    /// [`run`]: WorkerPool::run
    pub fn new(threads: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let handles = (1..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut q = shared.queue.lock().expect("pool queue poisoned");
                        loop {
                            if let Some(job) = q.jobs.pop_front() {
                                break job;
                            }
                            if q.shutdown {
                                return;
                            }
                            q = shared.available.wait(q).expect("pool queue poisoned");
                        }
                    };
                    // SAFETY: `run` blocks the submitter until this call
                    // returns, so the pointee is alive.
                    unsafe { (*job.0).run() };
                })
            })
            .collect();
        let scratches = (0..threads.max(1))
            .map(|_| Mutex::new(PassScratch::default()))
            .collect();
        WorkerPool {
            shared,
            handles,
            scratches,
            analyses: Mutex::new(Vec::new()),
        }
    }

    /// Takes `n` per-function analysis shells, drawing recycled ones from
    /// the pool first and topping up with fresh ones. Recycled shells come
    /// back fully invalidated (every artifact stale, ledgers zeroed) but
    /// with their buffers warm, so the next build round allocates almost
    /// nothing. Hand them back with
    /// [`return_analyses`](Self::return_analyses) when the run is done.
    pub fn take_analyses(&self, n: usize) -> Vec<cfg::FunctionAnalyses> {
        let mut out = Vec::with_capacity(n);
        {
            // A poisoned pool mutex only means a panicking thread held it;
            // the shells are recycled below regardless, so keep them.
            let mut pool = self.analyses.lock().unwrap_or_else(|p| p.into_inner());
            let k = pool.len().min(n);
            let at = pool.len() - k;
            out.extend(pool.drain(at..));
        }
        for fa in &mut out {
            fa.recycle();
        }
        out.resize_with(n, cfg::FunctionAnalyses::new);
        out
    }

    /// Returns analysis shells taken with
    /// [`take_analyses`](Self::take_analyses) to the pool for the next
    /// run. Shells beyond the pool's cap are dropped.
    pub fn return_analyses(&self, mut shells: Vec<cfg::FunctionAnalyses>) {
        let mut pool = self.analyses.lock().unwrap_or_else(|p| p.into_inner());
        pool.append(&mut shells);
        pool.truncate(MAX_POOLED_ANALYSES);
    }

    /// Total worker count, including the submitting thread.
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f` with an exclusive claim on one of the pool's per-worker
    /// scratch arenas.
    ///
    /// There are exactly as many slots as threads that can concurrently
    /// drain a batch (the submitter plus every spawned worker) and a
    /// thread holds at most one claim at a time, so by pigeonhole the
    /// `try_lock` scan always finds a free slot; the yield loop only
    /// spins in the transient window where another thread is mid-release.
    pub fn with_scratch<R>(&self, f: impl FnOnce(&mut PassScratch) -> R) -> R {
        loop {
            for slot in &self.scratches {
                match slot.try_lock() {
                    Ok(mut scratch) => return f(&mut scratch),
                    Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                        // A pass panicked mid-claim (the pool survives item
                        // panics), leaving this arena's contents suspect.
                        // Replace it with a cold one rather than wedging
                        // every later claimant on a poisoned slot.
                        let mut scratch = poisoned.into_inner();
                        *scratch = PassScratch::default();
                        return f(&mut scratch);
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {}
                }
            }
            std::thread::yield_now();
        }
    }

    /// Applies `f` to every item, across the pool's workers plus the
    /// calling thread, and returns the results in item order. With no
    /// spawned workers (or fewer than two items) the whole batch runs
    /// inline.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` on any thread.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.handles.is_empty() || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let (tx, rx) = channel::<(usize, R)>();
        let batch = Batch {
            work: Mutex::new(items.into_iter().enumerate()),
            results: tx,
            f,
            panic: Mutex::new(None),
            exits: Mutex::new(0usize),
            exited: Condvar::new(),
        };
        // Enqueue one handle per worker that could usefully help; the
        // submitting thread takes the batch too, so at most `n - 1`
        // helpers are woken.
        let helpers = self.handles.len().min(n - 1);
        {
            let erased: &(dyn BatchRun + Sync) = &batch;
            // SAFETY (lifetime erasure): see the wait below — this frame
            // does not return until `exits == helpers`.
            let erased: *const (dyn BatchRun + Sync) = unsafe { std::mem::transmute(erased) };
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            for _ in 0..helpers {
                q.jobs.push_back(BatchHandle(erased));
            }
            if helpers == 1 {
                self.shared.available.notify_one();
            } else {
                self.shared.available.notify_all();
            }
        }
        // Work the batch on this thread as well. This also bumps the exit
        // count by one, so the queued handles are fully consumed exactly
        // when `exits == helpers + 1`.
        batch.run();
        // Wait until every helper that may have claimed a handle has left
        // the batch; afterwards no other thread can touch `batch`, `f`,
        // or the result channel.
        {
            let target = helpers + 1;
            let mut exited = batch.exits.lock().expect("batch exit lock poisoned");
            while *exited < target {
                exited = batch.exited.wait(exited).expect("batch exit lock poisoned");
            }
        }
        if let Some(payload) = batch.panic.lock().expect("panic slot poisoned").take() {
            std::panic::resume_unwind(payload);
        }
        drop(batch); // closes the last Sender, so the drain below ends
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every item produced a result"))
            .collect()
    }

    /// Fans a per-function transformation out over `funcs`, returning one
    /// result per function in index order. The closure typically also
    /// captures a shared `&ir::TagTable` (functions and the tag table are
    /// disjoint fields of `ir::Module`, so both borrows coexist).
    pub fn run_funcs<R, F>(&self, funcs: &mut [Function], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(FuncId, &mut Function) -> R + Sync,
    {
        let items: Vec<&mut Function> = funcs.iter_mut().collect();
        self.run(items, |i, func| f(FuncId(i as u32), func))
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            // Workers never unwind (`Batch::run` catches item panics), so
            // a join error here would be a pool bug; surface it loudly.
            h.join().expect("pool worker panicked outside a batch");
        }
    }
}

/// One submitted batch: a claim cursor over the items, the result channel,
/// and panic/exit bookkeeping. Shared by reference with every thread that
/// drains it.
struct Batch<T, R, F> {
    work: Mutex<std::iter::Enumerate<std::vec::IntoIter<T>>>,
    results: Sender<(usize, R)>,
    f: F,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    exits: Mutex<usize>,
    exited: Condvar,
}

impl<T, R, F> BatchRun for Batch<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    fn run(&self) {
        // Count the exit even if this frame unwinds, so the submitter's
        // wait can never hang. (It cannot actually unwind — item panics
        // are caught below — but the guard makes that non-load-bearing.)
        struct ExitGuard<'a>(&'a Mutex<usize>, &'a Condvar);
        impl Drop for ExitGuard<'_> {
            fn drop(&mut self) {
                let mut exits = self.0.lock().expect("batch exit lock poisoned");
                *exits += 1;
                // Notify while still holding the mutex. If the count were
                // published first, the submitter could wake (spuriously, or
                // from an earlier helper's notify), observe the final
                // count, return from `run`, and destroy the stack-allocated
                // batch while this thread still holds references into it —
                // a use-after-free on the condvar. Holding the lock across
                // the notify means the submitter cannot observe the final
                // count until this guard's unlock, after the last touch of
                // the batch.
                self.1.notify_all();
            }
        }
        let _guard = ExitGuard(&self.exits, &self.exited);
        loop {
            let next = self.work.lock().expect("batch work lock poisoned").next();
            let Some((i, item)) = next else { break };
            match catch_unwind(AssertUnwindSafe(|| (self.f)(i, item))) {
                Ok(r) => {
                    // The submitter keeps the receiver alive until after
                    // all exits; a send failure is unreachable, but there
                    // is nothing useful to do with one mid-batch anyway.
                    let _ = self.results.send((i, r));
                }
                Err(payload) => {
                    let mut slot = self.panic.lock().expect("panic slot poisoned");
                    slot.get_or_insert(payload);
                    break;
                }
            }
        }
    }
}

/// Applies `f` to every item on a throwaway pool of up to `threads`
/// workers, returning results in item order. Convenience wrapper for
/// one-shot callers; anything that fans out repeatedly should create a
/// [`WorkerPool`] once and call [`WorkerPool::run`].
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    WorkerPool::new(threads.min(items.len())).run(items, f)
}

/// Fans a per-function transformation out over `funcs` on a throwaway
/// pool. See [`parallel_map`].
pub fn parallel_map_funcs<R, F>(funcs: &mut [Function], threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(FuncId, &mut Function) -> R + Sync,
{
    let items: Vec<&mut Function> = funcs.iter_mut().collect();
    parallel_map(items, threads, |i, func| f(FuncId(i as u32), func))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_stay_in_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = parallel_map(items.clone(), threads, |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![7usize, 8], 16, |_, x| x + 1);
        assert_eq!(out, vec![8, 9]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = parallel_map(Vec::<usize>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
    }

    #[test]
    fn pool_reuse_across_many_rounds() {
        let pool = WorkerPool::new(4);
        for round in 0..200 {
            let items: Vec<usize> = (0..17).collect();
            let out = pool.run(items, |i, x| {
                assert_eq!(i, x);
                x + round
            });
            assert_eq!(out, (0..17).map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_zero_and_single_item_run_inline() {
        let pool = WorkerPool::new(8);
        let none: Vec<usize> = pool.run(Vec::<usize>::new(), |_, x| x);
        assert!(none.is_empty());
        let one = pool.run(vec![41usize], |i, x| {
            assert_eq!(i, 0);
            x + 1
        });
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn pool_more_threads_than_items() {
        let pool = WorkerPool::new(16);
        let out = pool.run(vec![1usize, 2, 3], |_, x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn pool_propagates_worker_panics_and_survives_them() {
        let pool = WorkerPool::new(4);
        let hit = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run((0..64usize).collect(), |_, x| {
                hit.fetch_add(1, Ordering::Relaxed);
                assert!(x != 13, "boom on 13");
                x
            })
        }));
        let err = result.expect_err("panic must propagate to the submitter");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom on 13"), "unexpected payload: {msg}");
        // The pool is still usable after a batch panicked.
        let out = pool.run(vec![5usize, 6], |_, x| x * 2);
        assert_eq!(out, vec![10, 12]);
    }

    #[test]
    fn pool_runs_every_item_exactly_once() {
        let pool = WorkerPool::new(3);
        let count = AtomicUsize::new(0);
        let out = pool.run((0..1000usize).collect(), |_, x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_reporting() {
        assert_eq!(WorkerPool::new(1).threads(), 1);
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::new(4).threads(), 4);
    }
}
