//! Scoped-thread fan-out for per-function pipeline stages.
//!
//! Every per-function pass in the pipeline (normalization, strengthening,
//! promotion, the scalar optimizer, register allocation) reads at most the
//! shared tag table and writes only its own [`ir::Function`]. That makes
//! the fan-out embarrassingly parallel: a work queue of function indices is
//! drained by `std::thread::scope` workers, and results are returned in
//! function-index order so reports aggregate deterministically regardless
//! of scheduling.
//!
//! Only `std` is used — no thread-pool crates — because the build must
//! work offline.

use ir::{FuncId, Function};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Picks the worker count: an explicit `threads` wins; otherwise the
/// `PROMO_THREADS` environment variable; otherwise
/// `std::thread::available_parallelism()`.
pub fn resolve_threads(threads: Option<usize>) -> usize {
    if let Some(n) = threads {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("PROMO_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item, on up to `threads` worker threads, and
/// returns the results in item order. `threads <= 1` (or a single item)
/// runs inline with no thread overhead.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let queue: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = queue[i]
                    .lock()
                    .expect("queue poisoned")
                    .take()
                    .expect("item taken");
                let r = f(i, item);
                *slots[i].lock().expect("slot poisoned") = Some(r);
            }));
        }
        for h in handles {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("worker filled slot")
        })
        .collect()
}

/// Fans a per-function transformation out over `funcs`, returning one
/// result per function in index order. The closure typically also captures
/// a shared `&ir::TagTable` (functions and the tag table are disjoint
/// fields of `ir::Module`, so both borrows coexist).
pub fn parallel_map_funcs<R, F>(funcs: &mut [Function], threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(FuncId, &mut Function) -> R + Sync,
{
    let items: Vec<&mut Function> = funcs.iter_mut().collect();
    parallel_map(items, threads, |i, func| f(FuncId(i as u32), func))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = parallel_map(items.clone(), threads, |i, x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![7usize, 8], 16, |_, x| x + 1);
        assert_eq!(out, vec![8, 9]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = parallel_map(Vec::<usize>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
    }
}
