//! The driver's unified error type.

use std::fmt;

/// Everything a [`crate::Session`] can fail with, as one typed enum
/// instead of a `Box<dyn Error>`: callers can match on the phase that
/// failed without downcasting.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The MiniC front end rejected the source.
    Front(minic::FrontError),
    /// The pipeline produced IL that fails validation — always a compiler
    /// bug, surfaced as an error (not a panic) so embedding drivers can
    /// report it.
    Validate(ir::ValidateError),
    /// The VM faulted while executing the compiled program.
    Vm(vm::VmError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Front(e) => write!(f, "front end: {e}"),
            Error::Validate(e) => write!(f, "invalid IL: {e}"),
            Error::Vm(e) => write!(f, "vm fault: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Front(e) => Some(e),
            Error::Validate(e) => Some(e),
            Error::Vm(e) => Some(e),
        }
    }
}

impl From<minic::FrontError> for Error {
    fn from(e: minic::FrontError) -> Self {
        Error::Front(e)
    }
}

impl From<ir::ValidateError> for Error {
    fn from(e: ir::ValidateError) -> Self {
        Error::Validate(e)
    }
}

impl From<vm::VmError> for Error {
    fn from(e: vm::VmError) -> Self {
        Error::Vm(e)
    }
}
