//! Figure-style reporting: the paper's table rows.
//!
//! Figures 5–7 of the paper print, per program and per analysis, the
//! metric *without* and *with* promotion, the difference, and the
//! percentage removed. [`MeasurementRow`] is one such row;
//! [`measure_program`] produces the four-variant matrix for a source
//! program.

use crate::pipeline::PipelineConfig;
use crate::session::Session;
use analysis::AnalysisLevel;
use vm::ExecCounts;

/// Which dynamic count a figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Figure 5: total operations executed.
    TotalOps,
    /// Figure 6: stores executed.
    Stores,
    /// Figure 7: loads executed.
    Loads,
}

impl Metric {
    /// Extracts the metric from a counter set.
    pub fn of(self, c: &ExecCounts) -> u64 {
        match self {
            Metric::TotalOps => c.total,
            Metric::Stores => c.stores,
            Metric::Loads => c.loads,
        }
    }

    /// The paper's figure number.
    pub fn figure(self) -> u32 {
        match self {
            Metric::TotalOps => 5,
            Metric::Stores => 6,
            Metric::Loads => 7,
        }
    }

    /// Table heading.
    pub fn label(self) -> &'static str {
        match self {
            Metric::TotalOps => "Total Operations",
            Metric::Stores => "Stores",
            Metric::Loads => "Loads",
        }
    }
}

/// Counts for one (program, analysis) pair, without and with promotion.
#[derive(Debug, Clone)]
pub struct MeasurementRow {
    /// Program name.
    pub program: String,
    /// Analysis label (`modref` / `pointer`).
    pub analysis: AnalysisLevel,
    /// Counters with promotion disabled.
    pub without: ExecCounts,
    /// Counters with promotion enabled.
    pub with: ExecCounts,
}

impl MeasurementRow {
    /// The figure's `difference` column.
    pub fn difference(&self, metric: Metric) -> i64 {
        metric.of(&self.without) as i64 - metric.of(&self.with) as i64
    }

    /// The figure's `% removed` column.
    pub fn percent_removed(&self, metric: Metric) -> f64 {
        let base = metric.of(&self.without);
        if base == 0 {
            0.0
        } else {
            100.0 * self.difference(metric) as f64 / base as f64
        }
    }

    /// Formats the row exactly like the paper's figures:
    /// `program  analysis  without  with  difference  %removed`.
    pub fn format(&self, metric: Metric) -> String {
        format!(
            "{:<10} {:<8} {:>12} {:>12} {:>10} {:>8.2}",
            self.program,
            self.analysis.label(),
            metric.of(&self.without),
            metric.of(&self.with),
            self.difference(metric),
            self.percent_removed(metric),
        )
    }
}

/// Runs the paper's 2×2 experiment on one program source.
///
/// Returns one row per analysis level (the paper's `modref` and
/// `pointer`). The run also asserts that every variant produced identical
/// program output — the end-to-end correctness check.
///
/// # Panics
///
/// Panics if any variant fails to compile/run or if outputs diverge.
pub fn measure_program(name: &str, source: &str) -> Vec<MeasurementRow> {
    let mut rows = Vec::new();
    let mut reference_output: Option<Vec<String>> = None;
    for analysis in [AnalysisLevel::ModRef, AnalysisLevel::PointsTo] {
        let mut counts = Vec::new();
        for promote in [false, true] {
            let session = Session::from_config(PipelineConfig::paper_variant(analysis, promote));
            let outcome = session
                .compile(source)
                .and_then(|c| c.run(session.vm_options().clone()))
                .unwrap_or_else(|e| panic!("{name} [{analysis}, promote={promote}]: {e}"));
            match &reference_output {
                None => reference_output = Some(outcome.output.clone()),
                Some(r) => assert_eq!(
                    r, &outcome.output,
                    "{name}: output diverged at [{analysis}, promote={promote}]"
                ),
            }
            counts.push(outcome.counts);
        }
        rows.push(MeasurementRow {
            program: name.to_string(),
            analysis,
            without: counts[0],
            with: counts[1],
        });
    }
    rows
}

/// Renders a whole figure (all programs × both analyses) as text.
pub fn render_figure(metric: Metric, rows: &[MeasurementRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure {}: {} (per program, without/with promotion)\n",
        metric.figure(),
        metric.label()
    ));
    out.push_str(&format!(
        "{:<10} {:<8} {:>12} {:>12} {:>10} {:>8}\n",
        "program", "analysis", "without", "with", "difference", "%removed"
    ));
    for row in rows {
        out.push_str(&row.format(metric));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_extraction() {
        let c = ExecCounts {
            total: 100,
            loads: 30,
            stores: 20,
            ..Default::default()
        };
        assert_eq!(Metric::TotalOps.of(&c), 100);
        assert_eq!(Metric::Loads.of(&c), 30);
        assert_eq!(Metric::Stores.of(&c), 20);
        assert_eq!(Metric::Stores.figure(), 6);
    }

    #[test]
    fn row_math_matches_the_papers_columns() {
        let row = MeasurementRow {
            program: "mlink".into(),
            analysis: AnalysisLevel::ModRef,
            without: ExecCounts {
                stores: 5_885_109,
                ..Default::default()
            },
            with: ExecCounts {
                stores: 2_506_412,
                ..Default::default()
            },
        };
        // The paper's Figure 6 mlink row: difference 3378697, 57.41%.
        assert_eq!(row.difference(Metric::Stores), 3_378_697);
        let pct = row.percent_removed(Metric::Stores);
        assert!((pct - 57.41).abs() < 0.01, "{pct}");
    }

    #[test]
    fn measure_small_program() {
        let rows = measure_program(
            "toy",
            r#"
int g;
int main() {
    int i;
    for (i = 0; i < 100; i++) g = g + 1;
    print_int(g);
    return 0;
}
"#,
        );
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.percent_removed(Metric::Stores) > 90.0);
            assert!(row.difference(Metric::Loads) > 0);
        }
        let text = render_figure(Metric::Stores, &rows);
        assert!(text.contains("Figure 6"));
        assert!(text.contains("toy"));
    }
}
