//! JSONL encoding of trace records.
//!
//! One self-contained JSON object per line, discriminated by `"kind"`:
//!
//! ```text
//! {"func":"main","pass":"promote","kind":"promoted","tag":"C","loop_header":1,"loop_depth":1,"lifted_from":1}
//! {"func":"main","pass":"promote","kind":"blocked","tag":"A","loop_header":1,"loop_depth":1,"reason":"call-mod-ref"}
//! {"func":"main","pass":"pointer-promote","kind":"pointer-promoted","base_reg":3,"loop_header":2,"loop_depth":2}
//! {"func":"main","pass":"regalloc","kind":"spilled","reg":12,"round":2}
//! {"func":"main","pass":"dce","kind":"delta","instrs_removed":5,"loads_removed":2,"stores_removed":1}
//! ```
//!
//! Objects are flat (string or integer values only), so the in-tree parser
//! is a few dozen lines and needs no external crates. Unknown keys are
//! ignored on read, so consumers may annotate lines (the benchmark artifact
//! prefixes function names instead, keeping round-trips exact).

use crate::event::{BlockReason, LoopRef, PassEvent, Remark, TraceRecord};
use std::collections::BTreeMap;
use std::fmt;

/// A malformed JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlError {
    message: String,
}

impl JsonlError {
    pub(crate) fn new(message: impl Into<String>) -> JsonlError {
        JsonlError {
            message: message.into(),
        }
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed trace JSONL: {}", self.message)
    }
}

impl std::error::Error for JsonlError {}

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Obj(String);

impl Obj {
    fn new() -> Obj {
        Obj("{".to_string())
    }
    fn str(&mut self, key: &str, val: &str) -> &mut Obj {
        self.sep();
        esc(key, &mut self.0);
        self.0.push(':');
        esc(val, &mut self.0);
        self
    }
    fn int(&mut self, key: &str, val: i64) -> &mut Obj {
        self.sep();
        esc(key, &mut self.0);
        self.0.push(':');
        self.0.push_str(&val.to_string());
        self
    }
    fn sep(&mut self) {
        if self.0.len() > 1 {
            self.0.push(',');
        }
    }
    fn finish(&mut self) -> String {
        self.0.push('}');
        std::mem::take(&mut self.0)
    }
}

/// Encodes one record as a single JSON object (no trailing newline).
pub fn record_to_json(rec: &TraceRecord) -> String {
    let mut o = Obj::new();
    o.str("func", &rec.func);
    o.str("pass", rec.event.pass());
    match &rec.event {
        PassEvent::Remark { remark, .. } => match remark {
            Remark::Promoted {
                tag,
                in_loop,
                lifted_from,
            } => {
                o.str("kind", "promoted")
                    .str("tag", tag)
                    .int("loop_header", in_loop.header as i64)
                    .int("loop_depth", in_loop.depth as i64)
                    .int("lifted_from", *lifted_from as i64);
            }
            Remark::Blocked {
                tag,
                in_loop,
                reason,
            } => {
                o.str("kind", "blocked")
                    .str("tag", tag)
                    .int("loop_header", in_loop.header as i64)
                    .int("loop_depth", in_loop.depth as i64)
                    .str("reason", reason.label());
            }
            Remark::PointerPromoted { base_reg, in_loop } => {
                o.str("kind", "pointer-promoted")
                    .int("base_reg", *base_reg as i64)
                    .int("loop_header", in_loop.header as i64)
                    .int("loop_depth", in_loop.depth as i64);
            }
            Remark::Spilled { reg, round } => {
                o.str("kind", "spilled")
                    .int("reg", *reg as i64)
                    .int("round", *round as i64);
            }
        },
        PassEvent::Delta {
            instrs_removed,
            loads_removed,
            stores_removed,
            ..
        } => {
            o.str("kind", "delta")
                .int("instrs_removed", *instrs_removed)
                .int("loads_removed", *loads_removed)
                .int("stores_removed", *stores_removed);
        }
    }
    o.finish()
}

/// A parsed flat JSON value.
enum Val {
    Str(String),
    Int(i64),
}

/// Parses one flat JSON object: string keys, string or integer values.
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Val>, JsonlError> {
    let bytes: Vec<char> = line.trim().chars().collect();
    let mut i = 0;
    let err = |m: &str| JsonlError::new(m.to_string());
    let mut map = BTreeMap::new();
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, JsonlError> {
        if bytes.get(*i) != Some(&'"') {
            return Err(err("expected string"));
        }
        *i += 1;
        let mut s = String::new();
        while let Some(&c) = bytes.get(*i) {
            *i += 1;
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let e = bytes.get(*i).copied().ok_or_else(|| err("bad escape"))?;
                    *i += 1;
                    match e {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        '/' => s.push('/'),
                        'n' => s.push('\n'),
                        't' => s.push('\t'),
                        'r' => s.push('\r'),
                        'u' => {
                            if *i + 4 > bytes.len() {
                                return Err(err("short \\u escape"));
                            }
                            let hex: String = bytes[*i..*i + 4].iter().collect();
                            *i += 4;
                            let code =
                                u32::from_str_radix(&hex, 16).map_err(|_| err("bad \\u escape"))?;
                            s.push(char::from_u32(code).ok_or_else(|| err("bad \\u code point"))?);
                        }
                        _ => return Err(err("unknown escape")),
                    }
                }
                c => s.push(c),
            }
        }
        Err(err("unterminated string"))
    };
    skip_ws(&mut i);
    if bytes.get(i) != Some(&'{') {
        return Err(err("expected '{'"));
    }
    i += 1;
    skip_ws(&mut i);
    if bytes.get(i) == Some(&'}') {
        return Ok(map);
    }
    loop {
        skip_ws(&mut i);
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if bytes.get(i) != Some(&':') {
            return Err(err("expected ':'"));
        }
        i += 1;
        skip_ws(&mut i);
        let val = match bytes.get(i) {
            Some('"') => Val::Str(parse_string(&mut i)?),
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let start = i;
                if bytes[i] == '-' {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                Val::Int(text.parse().map_err(|_| err("bad integer"))?)
            }
            _ => return Err(err("expected string or integer value")),
        };
        map.insert(key, val);
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(',') => {
                i += 1;
            }
            Some('}') => {
                i += 1;
                break;
            }
            _ => return Err(err("expected ',' or '}'")),
        }
    }
    skip_ws(&mut i);
    if i != bytes.len() {
        return Err(err("trailing characters after object"));
    }
    Ok(map)
}

fn get_str(map: &BTreeMap<String, Val>, key: &str) -> Result<String, JsonlError> {
    match map.get(key) {
        Some(Val::Str(s)) => Ok(s.clone()),
        _ => Err(JsonlError::new(format!("missing string field \"{key}\""))),
    }
}

fn get_int(map: &BTreeMap<String, Val>, key: &str) -> Result<i64, JsonlError> {
    match map.get(key) {
        Some(Val::Int(n)) => Ok(*n),
        _ => Err(JsonlError::new(format!("missing integer field \"{key}\""))),
    }
}

fn get_u32(map: &BTreeMap<String, Val>, key: &str) -> Result<u32, JsonlError> {
    u32::try_from(get_int(map, key)?)
        .map_err(|_| JsonlError::new(format!("field \"{key}\" out of range")))
}

/// Pass labels survive the round trip as `&'static str` by interning into
/// the known label set; an unknown pass (written by a future version)
/// maps onto a leaked string. The set of passes is small and fixed per
/// build, so leakage is bounded in practice.
fn intern_pass(name: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "normalize",
        "analysis",
        "ssa-construct",
        "ssa-destruct",
        "strengthen",
        "promote",
        "pointer-promote",
        "lvn",
        "lvn(2)",
        "loadelim",
        "constprop",
        "licm",
        "dce",
        "clean",
        "clean(final)",
        "regalloc",
    ];
    for k in KNOWN {
        if *k == name {
            return k;
        }
    }
    Box::leak(name.to_string().into_boxed_str())
}

/// Decodes one JSONL line back into a record. Unknown keys are ignored.
///
/// # Errors
///
/// Returns an error for malformed JSON, a missing required field, or an
/// unknown `kind`.
pub fn record_from_json(line: &str) -> Result<TraceRecord, JsonlError> {
    let map = parse_flat_object(line)?;
    let func = get_str(&map, "func")?;
    let pass = intern_pass(&get_str(&map, "pass")?);
    let kind = get_str(&map, "kind")?;
    let in_loop = |map: &BTreeMap<String, Val>| -> Result<LoopRef, JsonlError> {
        Ok(LoopRef {
            header: get_u32(map, "loop_header")?,
            depth: get_u32(map, "loop_depth")?,
        })
    };
    let event = match kind.as_str() {
        "promoted" => PassEvent::Remark {
            pass,
            remark: Remark::Promoted {
                tag: get_str(&map, "tag")?,
                in_loop: in_loop(&map)?,
                lifted_from: get_u32(&map, "lifted_from")?,
            },
        },
        "blocked" => {
            let label = get_str(&map, "reason")?;
            let reason = BlockReason::from_label(&label)
                .ok_or_else(|| JsonlError::new(format!("unknown block reason \"{label}\"")))?;
            PassEvent::Remark {
                pass,
                remark: Remark::Blocked {
                    tag: get_str(&map, "tag")?,
                    in_loop: in_loop(&map)?,
                    reason,
                },
            }
        }
        "pointer-promoted" => PassEvent::Remark {
            pass,
            remark: Remark::PointerPromoted {
                base_reg: get_u32(&map, "base_reg")?,
                in_loop: in_loop(&map)?,
            },
        },
        "spilled" => PassEvent::Remark {
            pass,
            remark: Remark::Spilled {
                reg: get_u32(&map, "reg")?,
                round: get_int(&map, "round")? as usize,
            },
        },
        "delta" => PassEvent::Delta {
            pass,
            instrs_removed: get_int(&map, "instrs_removed")?,
            loads_removed: get_int(&map, "loads_removed")?,
            stores_removed: get_int(&map, "stores_removed")?,
        },
        other => return Err(JsonlError::new(format!("unknown kind \"{other}\""))),
    };
    Ok(TraceRecord { func, event })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceLog;

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.extend_func(
            "main",
            vec![
                PassEvent::Remark {
                    pass: "promote",
                    remark: Remark::Promoted {
                        tag: "C".into(),
                        in_loop: LoopRef {
                            header: 1,
                            depth: 1,
                        },
                        lifted_from: 1,
                    },
                },
                PassEvent::Remark {
                    pass: "promote",
                    remark: Remark::Blocked {
                        tag: "A".into(),
                        in_loop: LoopRef {
                            header: 1,
                            depth: 1,
                        },
                        reason: BlockReason::CallModRef,
                    },
                },
                PassEvent::Remark {
                    pass: "regalloc",
                    remark: Remark::Spilled { reg: 40, round: 2 },
                },
                PassEvent::Remark {
                    pass: "pointer-promote",
                    remark: Remark::PointerPromoted {
                        base_reg: 3,
                        in_loop: LoopRef {
                            header: 4,
                            depth: 2,
                        },
                    },
                },
                PassEvent::Delta {
                    pass: "dce",
                    instrs_removed: 5,
                    loads_removed: -2,
                    stores_removed: 1,
                },
            ],
        );
        log
    }

    #[test]
    fn round_trip_is_exact() {
        let log = sample_log();
        let encoded = log.to_jsonl();
        let decoded = TraceLog::from_jsonl(&encoded).expect("parses");
        assert_eq!(decoded, log);
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let line = r#"{"func":"main","pass":"dce","kind":"delta","instrs_removed":1,"loads_removed":0,"stores_removed":0,"program":"tsp"}"#;
        let rec = record_from_json(line).expect("parses");
        assert_eq!(rec.func, "main");
    }

    #[test]
    fn escaped_names_round_trip() {
        let mut log = TraceLog::new();
        log.extend_func(
            "we\"ird\\name",
            vec![PassEvent::Delta {
                pass: "clean",
                instrs_removed: -1,
                loads_removed: 0,
                stores_removed: 7,
            }],
        );
        let decoded = TraceLog::from_jsonl(&log.to_jsonl()).expect("parses");
        assert_eq!(decoded, log);
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let good = r#"{"func":"f","pass":"dce","kind":"delta","instrs_removed":1,"loads_removed":0,"stores_removed":0}"#;
        let bad = format!("{good}\n{{\"func\":\"f\",\"kind\":17}}\n");
        let e = TraceLog::from_jsonl(&bad).unwrap_err();
        assert!(e.message().contains("line 2"), "{e}");
        for broken in [
            "{",
            "{\"func\"}",
            "{\"func\":}",
            r#"{"func":"f"} trailing"#,
            r#"{"func":"f","pass":"dce","kind":"mystery"}"#,
            r#"{"func":"f","pass":"dce","kind":"blocked","tag":"t","loop_header":1,"loop_depth":1,"reason":"nope"}"#,
        ] {
            assert!(record_from_json(broken).is_err(), "accepted: {broken}");
        }
    }
}
