//! The event vocabulary: remarks, block reasons, and per-pass deltas.

use std::fmt;

/// A loop, identified the way the paper's figures identify one: by the
/// block id of its header plus its nesting depth (outermost = 1).
///
/// Block ids are stable across worker counts (the pipeline is
/// bit-deterministic), so a `LoopRef` is a stable coordinate for
/// cross-run comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LoopRef {
    /// Block id of the loop header.
    pub header: u32,
    /// Nesting depth; outermost loops are depth 1.
    pub depth: u32,
}

impl fmt::Display for LoopRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop@B{} (depth {})", self.header, self.depth)
    }
}

/// Why a promotion candidate was rejected — the `L_AMBIGUOUS` membership
/// of Figure 1, decomposed into its concrete causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// A pointer-based reference in the loop may touch the tag along with
    /// others (its tag set is not a provable singleton cell).
    AmbiguousRef,
    /// The only ambiguous references are singleton pointer accesses that
    /// fail the unique-cell test for a storage reason: the tag names an
    /// aggregate, a heap site, or another function's local.
    AddressTaken,
    /// A call in the loop mods or refs the tag (interprocedural MOD/REF).
    CallModRef,
    /// The tag is a local of a function on a call-graph cycle: one tag
    /// names a cell per live activation, so no single register can hold it.
    RecursionFlag,
}

impl BlockReason {
    /// Stable serialization label.
    pub fn label(self) -> &'static str {
        match self {
            BlockReason::AmbiguousRef => "ambiguous-ref",
            BlockReason::AddressTaken => "address-taken",
            BlockReason::CallModRef => "call-mod-ref",
            BlockReason::RecursionFlag => "recursion-flag",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<BlockReason> {
        Some(match s {
            "ambiguous-ref" => BlockReason::AmbiguousRef,
            "address-taken" => BlockReason::AddressTaken,
            "call-mod-ref" => BlockReason::CallModRef,
            "recursion-flag" => BlockReason::RecursionFlag,
            _ => return None,
        })
    }
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured observation from one pass.
#[derive(Debug, Clone, PartialEq)]
pub enum Remark {
    /// A tag was promoted to a register for the extent of a loop.
    Promoted {
        /// Tag name (tag names are unique per module).
        tag: String,
        /// The loop in which references were rewritten to copies.
        in_loop: LoopRef,
        /// Header block id of the loop at which the lift (the
        /// load-before/store-after pair) was placed — the outermost
        /// enclosing loop where the tag is still promotable, per
        /// equation (4).
        lifted_from: u32,
    },
    /// A tag was referenced explicitly in a loop but stayed in memory.
    Blocked {
        /// Tag name.
        tag: String,
        /// The loop in which the candidate was rejected.
        in_loop: LoopRef,
        /// Why `L_AMBIGUOUS` claimed it.
        reason: BlockReason,
    },
    /// A loop-invariant pointer cell (§3.3) was promoted.
    PointerPromoted {
        /// The loop-invariant base register of the promoted accesses.
        base_reg: u32,
        /// The loop for whose extent the cell is register-resident.
        in_loop: LoopRef,
    },
    /// The allocator spilled a virtual register to memory.
    Spilled {
        /// The spilled virtual register.
        reg: u32,
        /// Which simplify/select round demanded the spill.
        round: usize,
    },
}

/// One event attributed to a pass: a [`Remark`] or a delta counter.
#[derive(Debug, Clone, PartialEq)]
pub enum PassEvent {
    /// A structured remark.
    Remark {
        /// Pass label (`promote`, `regalloc`, ...).
        pass: &'static str,
        /// The observation.
        remark: Remark,
    },
    /// What a pass did to the static shape of the function, as
    /// before-minus-after counts. Negative values mean the pass *inserted*
    /// (spill code, lift code).
    Delta {
        /// Pass label.
        pass: &'static str,
        /// Instructions removed.
        instrs_removed: i64,
        /// Static load operations removed (`sload`/`cload`/`load`).
        loads_removed: i64,
        /// Static store operations removed (`sstore`/`store`).
        stores_removed: i64,
    },
}

impl PassEvent {
    /// The pass that emitted this event.
    pub fn pass(&self) -> &'static str {
        match self {
            PassEvent::Remark { pass, .. } | PassEvent::Delta { pass, .. } => pass,
        }
    }
}

/// A [`PassEvent`] attributed to the function it happened in — the unit a
/// [`crate::TraceSink`] consumes and a JSONL line encodes.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Function name (without the `@`).
    pub func: String,
    /// The event.
    pub event: PassEvent,
}

impl TraceRecord {
    /// Renders the record as one LLVM-style remark line (no trailing
    /// newline), e.g.
    /// `remark: @main: promote: 'C' promoted in loop@B1 (depth 1); lifted at B1`.
    pub fn render(&self) -> String {
        let f = &self.func;
        match &self.event {
            PassEvent::Remark { pass, remark } => match remark {
                Remark::Promoted {
                    tag,
                    in_loop,
                    lifted_from,
                } => format!(
                    "remark: @{f}: {pass}: '{tag}' promoted in {in_loop}; lifted at B{lifted_from}"
                ),
                Remark::Blocked {
                    tag,
                    in_loop,
                    reason,
                } => format!("remark: @{f}: {pass}: '{tag}' blocked in {in_loop}: {reason}"),
                Remark::PointerPromoted { base_reg, in_loop } => {
                    format!("remark: @{f}: {pass}: cell [r{base_reg}] promoted in {in_loop}")
                }
                Remark::Spilled { reg, round } => {
                    format!("remark: @{f}: {pass}: r{reg} spilled (round {round})")
                }
            },
            PassEvent::Delta {
                pass,
                instrs_removed,
                loads_removed,
                stores_removed,
            } => format!(
                "remark: @{f}: {pass}: removed {instrs_removed} instrs, \
                 {loads_removed} loads, {stores_removed} stores"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_labels_round_trip() {
        for r in [
            BlockReason::AmbiguousRef,
            BlockReason::AddressTaken,
            BlockReason::CallModRef,
            BlockReason::RecursionFlag,
        ] {
            assert_eq!(BlockReason::from_label(r.label()), Some(r));
        }
        assert_eq!(BlockReason::from_label("nope"), None);
    }

    #[test]
    fn render_is_llvm_style() {
        let rec = TraceRecord {
            func: "main".into(),
            event: PassEvent::Remark {
                pass: "promote",
                remark: Remark::Blocked {
                    tag: "A".into(),
                    in_loop: LoopRef {
                        header: 1,
                        depth: 1,
                    },
                    reason: BlockReason::CallModRef,
                },
            },
        };
        assert_eq!(
            rec.render(),
            "remark: @main: promote: 'A' blocked in loop@B1 (depth 1): call-mod-ref"
        );
    }
}
