//! Event buffers and consumers.

use crate::event::{PassEvent, Remark, TraceRecord};
use crate::jsonl::{self, JsonlError};

/// The per-function event buffer a worker fills while it carries one
/// function through the fused pass chain.
///
/// The `Off` variant is the whole zero-cost story: every hook is
/// `if !tr.enabled() { return }` — one enum-discriminant test, no
/// allocation, no string formatting, no tag-name resolution. A disabled
/// pipeline run never constructs a single event.
#[derive(Debug, Default)]
pub enum FuncTrace {
    /// Tracing disabled; every emit is a no-op.
    #[default]
    Off,
    /// Tracing enabled; events accumulate in chain order.
    On {
        /// The buffered events.
        events: Vec<PassEvent>,
        /// Cached `(instrs, loads, stores)` snapshot of the function as
        /// of the last delta-recorded pass exit. Consecutive delta
        /// passes chain through it — pass N's after-scan is pass N+1's
        /// before-count — halving the body scans tracing costs. Any
        /// stage that mutates the function without recording a delta
        /// must call [`FuncTrace::invalidate_stats`].
        stats: Option<(usize, usize, usize)>,
    },
}

impl FuncTrace {
    /// A disabled trace.
    pub fn off() -> FuncTrace {
        FuncTrace::Off
    }

    /// An enabled, empty trace. The vector is lazily grown; an enabled
    /// trace over a function no pass touches stays allocation-free.
    pub fn on() -> FuncTrace {
        FuncTrace::On {
            events: Vec::new(),
            stats: None,
        }
    }

    /// True when events are being collected. Passes must guard any work
    /// done *only* to build events (set scans, reason classification)
    /// behind this, which is what keeps disabled tracing free.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, FuncTrace::On { .. })
    }

    /// Records a structured remark.
    #[inline]
    pub fn remark(&mut self, pass: &'static str, remark: Remark) {
        if let FuncTrace::On { events, .. } = self {
            events.push(PassEvent::Remark { pass, remark });
        }
    }

    /// Records a per-pass delta (before-minus-after static counts). An
    /// all-zero delta is dropped: a pass that changed nothing says
    /// nothing.
    #[inline]
    pub fn delta(
        &mut self,
        pass: &'static str,
        instrs_removed: i64,
        loads_removed: i64,
        stores_removed: i64,
    ) {
        if let FuncTrace::On { events, .. } = self {
            if instrs_removed != 0 || loads_removed != 0 || stores_removed != 0 {
                events.push(PassEvent::Delta {
                    pass,
                    instrs_removed,
                    loads_removed,
                    stores_removed,
                });
            }
        }
    }

    /// The cached `(instrs, loads, stores)` snapshot, if one is current.
    #[inline]
    pub fn cached_stats(&self) -> Option<(usize, usize, usize)> {
        match self {
            FuncTrace::Off => None,
            FuncTrace::On { stats, .. } => *stats,
        }
    }

    /// Replaces the cached snapshot with the function's state as just
    /// scanned by a delta-recording stage.
    #[inline]
    pub fn set_stats(&mut self, snapshot: (usize, usize, usize)) {
        if let FuncTrace::On { stats, .. } = self {
            *stats = Some(snapshot);
        }
    }

    /// Drops the cached snapshot. Required after any mutation that did
    /// not record a delta, or the next delta would be computed against a
    /// stale baseline.
    #[inline]
    pub fn invalidate_stats(&mut self) {
        if let FuncTrace::On { stats, .. } = self {
            *stats = None;
        }
    }

    /// Drains the buffered events, leaving the trace enabled-and-empty
    /// (or `Off`, if it was off).
    pub fn take_events(&mut self) -> Vec<PassEvent> {
        match self {
            FuncTrace::Off => Vec::new(),
            FuncTrace::On { events, stats } => {
                *stats = None;
                std::mem::take(events)
            }
        }
    }

    /// Number of events buffered so far. The incremental driver snapshots
    /// this before the fused chain runs so it can carve out exactly the
    /// chain's event suffix for caching.
    pub fn event_count(&self) -> usize {
        match self {
            FuncTrace::Off => 0,
            FuncTrace::On { events, .. } => events.len(),
        }
    }

    /// Clones the events from index `from` to the end — the suffix a
    /// cached function's chain trip appended past an
    /// [`event_count`](Self::event_count) snapshot.
    pub fn events_from(&self, from: usize) -> Vec<PassEvent> {
        match self {
            FuncTrace::Off => Vec::new(),
            FuncTrace::On { events, .. } => events.get(from..).unwrap_or_default().to_vec(),
        }
    }

    /// Appends pre-recorded events (a cached chain suffix being replayed
    /// into a live trace). No-op when the trace is off.
    pub fn append_events(&mut self, replayed: Vec<PassEvent>) {
        if let FuncTrace::On { events, .. } = self {
            events.extend(replayed);
        }
    }
}

/// A consumer of aggregated trace records: feed it a [`TraceLog`] through
/// [`TraceLog::replay`], or individual records directly. Implementations
/// decide what "consume" means — collect, write, export.
pub trait TraceSink {
    /// Consumes one record.
    fn record(&mut self, record: &TraceRecord);
}

/// A sink that drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _record: &TraceRecord) {}
}

/// A sink that collects records in arrival order (tests, in-process
/// consumers).
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    /// The collected records.
    pub records: Vec<TraceRecord>,
}

impl TraceSink for CollectSink {
    fn record(&mut self, record: &TraceRecord) {
        self.records.push(record.clone());
    }
}

/// The whole-module trace: every function's events, in function-index
/// order. This is what a [`crate::TraceLog`]-returning pipeline run hands
/// back, what `--trace-json` serializes, and what the determinism tests
/// compare across worker counts.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TraceLog {
    /// Records in deterministic (function-index, then chain) order.
    pub records: Vec<TraceRecord>,
    /// Functions whose chain events were *replayed* from the incremental
    /// cache rather than produced by a live pass run, in function-index
    /// order. Kept out of band — serialization
    /// ([`to_jsonl`](Self::to_jsonl)) and rendering are unaffected, so a
    /// cached compile's remark stream stays byte-identical to a cold one.
    cached: Vec<String>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded (always the case when tracing was
    /// disabled).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends every event of one function, in order.
    pub fn extend_func(&mut self, func: &str, events: Vec<PassEvent>) {
        for event in events {
            self.records.push(TraceRecord {
                func: func.to_string(),
                event,
            });
        }
    }

    /// Marks one function's chain events as `Cached` (replayed from the
    /// incremental cache). Out-of-band metadata: it never changes the
    /// serialized or rendered remark stream.
    pub fn mark_cached(&mut self, func: &str) {
        self.cached.push(func.to_string());
    }

    /// Functions marked [`mark_cached`](Self::mark_cached), in marking
    /// order.
    pub fn cached_funcs(&self) -> &[String] {
        &self.cached
    }

    /// True if `func`'s chain events came from the incremental cache.
    pub fn is_cached(&self, func: &str) -> bool {
        self.cached.iter().any(|f| f == func)
    }

    /// Streams every record into `sink`, in order.
    pub fn replay(&self, sink: &mut dyn TraceSink) {
        for r in &self.records {
            sink.record(r);
        }
    }

    /// Iterates the structured remarks (deltas skipped), with their pass
    /// labels and owning functions: `(func, pass, remark)`.
    pub fn remarks(&self) -> impl Iterator<Item = (&str, &'static str, &Remark)> {
        self.records.iter().filter_map(|r| match &r.event {
            PassEvent::Remark { pass, remark } => Some((r.func.as_str(), *pass, remark)),
            PassEvent::Delta { .. } => None,
        })
    }

    /// Prefixes every record's function name with `prefix::` — used when
    /// logs from several modules are concatenated into one artifact (the
    /// benchmark suite's remark dump).
    pub fn prefix_funcs(&mut self, prefix: &str) {
        for r in &mut self.records {
            r.func = format!("{prefix}::{}", r.func);
        }
    }

    /// Serializes the log as JSONL: one self-contained JSON object per
    /// line, schema documented in [`crate::jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&jsonl::record_to_json(r));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL string produced by [`to_jsonl`](Self::to_jsonl)
    /// (round-trip guaranteed; unknown keys are ignored for forward
    /// compatibility).
    ///
    /// # Errors
    ///
    /// Returns the first malformed line with its line number.
    pub fn from_jsonl(s: &str) -> Result<TraceLog, JsonlError> {
        let mut log = TraceLog::new();
        for (i, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec = jsonl::record_from_json(line)
                .map_err(|e| JsonlError::new(format!("line {}: {}", i + 1, e.message())))?;
            log.records.push(rec);
        }
        Ok(log)
    }

    /// Renders the whole log as human-readable LLVM-style remark lines.
    pub fn render_remarks(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BlockReason, LoopRef};

    #[test]
    fn off_trace_records_nothing() {
        let mut tr = FuncTrace::off();
        assert!(!tr.enabled());
        tr.remark("promote", Remark::Spilled { reg: 1, round: 1 });
        tr.delta("dce", 3, 1, 0);
        assert!(tr.take_events().is_empty());
    }

    #[test]
    fn zero_deltas_are_dropped() {
        let mut tr = FuncTrace::on();
        tr.delta("lvn", 0, 0, 0);
        tr.delta("dce", 2, 0, 1);
        let events = tr.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].pass(), "dce");
    }

    #[test]
    fn replay_feeds_sinks_in_order() {
        let mut log = TraceLog::new();
        log.extend_func(
            "main",
            vec![
                PassEvent::Delta {
                    pass: "dce",
                    instrs_removed: 1,
                    loads_removed: 0,
                    stores_removed: 0,
                },
                PassEvent::Remark {
                    pass: "promote",
                    remark: Remark::Blocked {
                        tag: "g".into(),
                        in_loop: LoopRef {
                            header: 2,
                            depth: 1,
                        },
                        reason: BlockReason::AmbiguousRef,
                    },
                },
            ],
        );
        let mut sink = CollectSink::default();
        log.replay(&mut sink);
        assert_eq!(sink.records, log.records);
        assert_eq!(log.remarks().count(), 1);
    }
}
