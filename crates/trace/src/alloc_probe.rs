//! A counting global allocator for allocation-budget measurement.
//!
//! The zero-allocation hot loop is a *measured* property, not an aspired
//! one: the benchmark binary (and the allocation-regression test) install
//! [`CountingAlloc`] as `#[global_allocator]` and read the counters
//! around the pipeline's steady-state compile. The counters are plain
//! statics, so code that reports them (e.g. the benchmark's per-phase
//! tables) links and runs unchanged even in binaries that did *not*
//! install the probe — everything just reads zero there.
//!
//! The probe counts every `alloc`/`realloc` call and its requested bytes;
//! frees are not tracked (the budget is about allocator traffic, not
//! peak footprint). Counters are process-wide and atomic, so
//! multi-threaded phases attribute their allocations to whichever phase
//! is being measured — which is exactly what a "the steady state
//! allocates nothing" gate wants, and why per-phase numbers are only
//! exact on single-threaded runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` wrapper over [`System`] that counts
/// allocations and allocated bytes.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: trace::CountingAlloc = trace::CountingAlloc;
/// ```
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A snapshot of the process-wide allocation counters.
///
/// Subtract two snapshots ([`AllocStats::since`]) to charge a region of
/// code. All zeros when [`CountingAlloc`] is not installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocator calls (`alloc` + `realloc`).
    pub count: u64,
    /// Bytes requested across those calls.
    pub bytes: u64,
}

impl AllocStats {
    /// Reads the current counter values.
    pub fn now() -> AllocStats {
        AllocStats {
            count: ALLOC_COUNT.load(Ordering::Relaxed),
            bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        }
    }

    /// Accumulates `other`'s counters into `self` — for summing per-pass
    /// deltas across functions.
    pub fn merge(&mut self, other: &AllocStats) {
        self.count += other.count;
        self.bytes += other.bytes;
    }

    /// The traffic between `earlier` and this snapshot.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            count: self.count.saturating_sub(earlier.count),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = AllocStats {
            count: 10,
            bytes: 100,
        };
        let b = AllocStats {
            count: 25,
            bytes: 160,
        };
        assert_eq!(
            b.since(&a),
            AllocStats {
                count: 15,
                bytes: 60
            }
        );
    }

    #[test]
    fn now_is_monotonic() {
        let a = AllocStats::now();
        let b = AllocStats::now();
        assert!(b.count >= a.count && b.bytes >= a.bytes);
    }
}
