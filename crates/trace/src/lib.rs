//! Optimization-remark telemetry for the register-promotion pipeline.
//!
//! The paper's entire evaluation is *counting what promotion did* —
//! loads/stores removed per loop, tags promoted versus blocked — so the
//! pipeline needs a structured way to say "tag `C` was promoted in the
//! loop at `B1`" or "tag `A` stayed in memory because a call mods it".
//! This crate is that layer:
//!
//! * [`Remark`] — one structured observation from one pass
//!   (`Promoted`/`Blocked`/`Spilled`/...), with [`BlockReason`] naming
//!   exactly *why* a candidate was rejected;
//! * [`PassEvent`] — a remark or a per-pass delta counter (instructions
//!   removed, loads/stores eliminated);
//! * [`FuncTrace`] — the per-function event buffer each worker fills while
//!   it carries a function through the fused pass chain. The `Off` variant
//!   makes disabled tracing a no-op: one enum-discriminant test per hook,
//!   no allocation, no formatting;
//! * [`TraceLog`] — the per-module aggregate, assembled in deterministic
//!   function-index order after the parallel fan-out, serializable as
//!   JSONL ([`TraceLog::to_jsonl`] / [`TraceLog::from_jsonl`]) and as
//!   LLVM-style human-readable remarks ([`TraceLog::render_remarks`]);
//! * [`TraceSink`] — a consumer trait for streaming the aggregated events
//!   somewhere else (a file, a test collector, a metrics exporter).
//!
//! Determinism contract: events are buffered per function inside the
//! worker that owns the function (no cross-thread contention) and replayed
//! in function-index order, so the remark stream is byte-identical at any
//! worker count.

#![warn(missing_docs)]

mod alloc_probe;
mod event;
pub mod jsonl;
mod sink;

pub use alloc_probe::{AllocStats, CountingAlloc};
pub use event::{BlockReason, LoopRef, PassEvent, Remark, TraceRecord};
pub use jsonl::JsonlError;
pub use sink::{CollectSink, FuncTrace, NullSink, TraceLog, TraceSink};
