//! Execution tests for the IL interpreter.

use vm::{Value, Vm, VmError, VmOptions};

fn run(src: &str) -> vm::Outcome {
    let module = ir::parse_module(src).expect("parse");
    ir::validate(&module).expect("valid");
    Vm::run_main(&module, VmOptions::default()).expect("run")
}

fn run_err(src: &str) -> VmError {
    let module = ir::parse_module(src).expect("parse");
    Vm::run_main(&module, VmOptions::default()).expect_err("should fail")
}

#[test]
fn arithmetic_and_output() {
    let out = run(r#"
func @main(0) result {
B0:
  r0 = iconst 7
  r1 = iconst 3
  r2 = mul r0, r1
  r3 = sub r2, r1
  r4 = rem r3, r0
  call $print_int(r4) mods{} refs{}
  ret r4
}
"#);
    assert_eq!(out.output, vec!["4"]); // (7*3-3) % 7 = 18 % 7 = 4
    assert_eq!(out.exit_code, 4);
}

#[test]
fn float_arithmetic() {
    let out = run(r#"
func @main(0) {
B0:
  r0 = fconst 2.0
  r1 = fconst 0.5
  r2 = div r0, r1
  r3 = call $sqrt(r2) mods{} refs{}
  call $print_float(r3) mods{} refs{}
  ret
}
"#);
    assert_eq!(out.output, vec!["2.000000"]);
}

#[test]
fn loop_counts_operations() {
    // 10-iteration countdown: per iteration 1 sub + 1 branch; plus setup.
    let out = run(r#"
func @main(0) {
B0:
  r0 = iconst 10
  r1 = iconst 1
  jump B1
B1:
  r0 = sub r0, r1
  branch r0, B1, B2
B2:
  ret
}
"#);
    // 2 iconst + 1 jump + 10*(sub+branch) + ret = 24
    assert_eq!(out.counts.total, 24);
    assert_eq!(out.counts.loads, 0);
    assert_eq!(out.counts.control, 12);
    assert_eq!(out.counts.arith, 12);
}

#[test]
fn memory_classes_are_counted_separately() {
    let out = run(r#"
tag "g:x" global size=1 addressed
global "g:x" ints 5
func @main(0) {
B0:
  r0 = sload "g:x"
  r1 = lea "g:x"
  r2 = load [r1] {"g:x"}
  store r2, [r1] {"g:x"}
  sstore r0, "g:x"
  ret
}
"#);
    assert_eq!(out.counts.scalar_loads, 1);
    assert_eq!(out.counts.ptr_loads, 1);
    assert_eq!(out.counts.scalar_stores, 1);
    assert_eq!(out.counts.ptr_stores, 1);
    assert_eq!(out.counts.loads, 2);
    assert_eq!(out.counts.stores, 2);
}

#[test]
fn calls_and_recursion() {
    let out = run(r#"
func @fib(1) result {
B0:
  r1 = iconst 2
  r2 = cmplt r0, r1
  branch r2, B1, B2
B1:
  ret r0
B2:
  r3 = iconst 1
  r4 = sub r0, r3
  r5 = call @fib(r4) mods{} refs{}
  r6 = iconst 2
  r7 = sub r0, r6
  r8 = call @fib(r7) mods{} refs{}
  r9 = add r5, r8
  ret r9
}
func @main(0) result {
B0:
  r0 = iconst 12
  r1 = call @fib(r0) mods{} refs{}
  call $print_int(r1) mods{} refs{}
  ret r1
}
"#);
    assert_eq!(out.output, vec!["144"]);
    assert!(out.counts.calls > 100);
}

#[test]
fn recursion_with_addressed_locals_gets_fresh_storage() {
    // Each activation of @f has its own local cell even though one tag
    // names them all.
    let out = run(r#"
tag "f.x" local owner=0 size=1 addressed
func @f(1) result {
B0:
  sstore r0, "f.x"
  branch r0, B1, B2
B1:
  r1 = iconst 1
  r2 = sub r0, r1
  r3 = call @f(r2) mods{"f.x"} refs{"f.x"}
  r4 = sload "f.x"
  r5 = add r3, r4
  ret r5
B2:
  r6 = sload "f.x"
  ret r6
}
func @main(0) result {
B0:
  r0 = iconst 4
  r1 = call @f(r0) mods{"f.x"} refs{"f.x"}
  call $print_int(r1) mods{} refs{}
  ret r1
}
"#);
    // 4+3+2+1+0 = 10; a single shared cell would give a different sum.
    assert_eq!(out.output, vec!["10"]);
}

#[test]
fn heap_allocation_and_pointer_arithmetic() {
    let out = run(r#"
tag "heap@0" heap site=0 size=1
func @main(0) result {
B0:
  r0 = iconst 8
  r1 = alloc r0, "heap@0"
  r2 = iconst 3
  r3 = ptradd r1, r2
  r4 = iconst 99
  store r4, [r3] {"heap@0"}
  r5 = load [r3] {"heap@0"}
  ret r5
}
"#);
    assert_eq!(out.exit_code, 99);
    assert_eq!(out.counts.allocs, 1);
}

#[test]
fn global_arrays_initialize() {
    let out = run(r#"
tag "g:a" global size=4 addressed
global "g:a" ints 10 20 30 40
func @main(0) result {
B0:
  r0 = lea "g:a"
  r1 = iconst 2
  r2 = ptradd r0, r1
  r3 = load [r2] {"g:a"}
  ret r3
}
"#);
    assert_eq!(out.exit_code, 30);
}

#[test]
fn phi_execution() {
    let out = run(r#"
func @main(0) result {
B0:
  r0 = iconst 0
  branch r0, B1, B2
B1:
  r1 = iconst 111
  jump B3
B2:
  r2 = iconst 222
  jump B3
B3:
  r3 = phi [B1: r1, B2: r2]
  ret r3
}
"#);
    assert_eq!(out.exit_code, 222);
}

#[test]
fn function_pointers() {
    let out = run(r#"
func @double(1) result {
B0:
  r1 = iconst 2
  r2 = mul r0, r1
  ret r2
}
func @main(0) result {
B0:
  r0 = funcaddr @double
  r1 = iconst 21
  r2 = call *r0(r1) mods{} refs{}
  ret r2
}
"#);
    assert_eq!(out.exit_code, 42);
}

#[test]
fn exit_intrinsic_stops_early() {
    let out = run(r#"
func @main(0) {
B0:
  r0 = iconst 5
  call $exit(r0) mods{} refs{}
  r1 = iconst 0
  call $print_int(r1) mods{} refs{}
  ret
}
"#);
    assert_eq!(out.exit_code, 5);
    assert!(out.output.is_empty());
}

#[test]
fn division_by_zero_is_an_error() {
    let e = run_err(
        r#"
func @main(0) {
B0:
  r0 = iconst 1
  r1 = iconst 0
  r2 = div r0, r1
  ret
}
"#,
    );
    assert_eq!(e, VmError::DivisionByZero);
}

#[test]
fn out_of_bounds_is_an_error() {
    let e = run_err(
        r#"
tag "g:a" global size=2 addressed
global "g:a" zero
func @main(0) {
B0:
  r0 = lea "g:a"
  r1 = iconst 5
  r2 = ptradd r0, r1
  r3 = load [r2] {"g:a"}
  ret
}
"#,
    );
    assert!(matches!(e, VmError::OutOfBounds(_)));
}

#[test]
fn use_after_return_is_detected() {
    // @leak returns the address of its own local.
    let e = run_err(
        r#"
tag "leak.x" local owner=0 size=1 addressed
func @leak(0) result {
B0:
  r0 = lea "leak.x"
  ret r0
}
func @main(0) {
B0:
  r0 = call @leak() mods{} refs{}
  r1 = load [r0] {"leak.x"}
  ret
}
"#,
    );
    assert_eq!(e, VmError::UseAfterFree);
}

#[test]
fn uninit_memory_may_be_moved_but_not_computed() {
    // Promotion-style load/store of never-written memory is fine...
    let ok = run(r#"
tag "g:x" global size=1
tag "g:y" global size=1
global "g:x" zero
global "g:y" zero
func @main(0) {
B0:
  r0 = sload "g:x"
  sstore r0, "g:y"
  ret
}
"#);
    assert_eq!(ok.counts.loads, 1);
    // ...but arithmetic on an uninitialized *register* is a type error.
    let e = run_err(
        r#"
func @main(0) result {
B0:
  r1 = iconst 1
  r2 = add r0, r1
  ret r2
}
"#,
    );
    assert!(matches!(e, VmError::TypeError(_)));
}

#[test]
fn step_limit_enforced() {
    let module = ir::parse_module(
        r#"
func @main(0) {
B0:
  jump B1
B1:
  jump B1
}
"#,
    )
    .unwrap();
    let e = Vm::run_main(
        &module,
        VmOptions {
            max_steps: 100,
            ..Default::default()
        },
    )
    .expect_err("infinite loop");
    assert_eq!(e, VmError::StepLimit(100));
}

#[test]
fn stack_overflow_enforced() {
    let module = ir::parse_module(
        r#"
func @main(0) {
B0:
  call @main() mods{} refs{}
  ret
}
"#,
    )
    .unwrap();
    let e = Vm::run_main(
        &module,
        VmOptions {
            max_depth: 50,
            ..Default::default()
        },
    )
    .expect_err("unbounded recursion");
    assert_eq!(e, VmError::StackOverflow(50));
}

#[test]
fn run_entry_with_arguments() {
    let module = ir::parse_module(
        r#"
func @add(2) result {
B0:
  r2 = add r0, r1
  ret r2
}
"#,
    )
    .unwrap();
    let f = module.lookup_func("add").unwrap();
    let out = Vm::run(
        &module,
        f,
        &[Value::Int(40), Value::Int(2)],
        VmOptions::default(),
    )
    .expect("run");
    assert_eq!(out.result, Some(Value::Int(42)));
}

#[test]
fn nops_and_phis_are_free() {
    let out = run(r#"
func @main(0) {
B0:
  nop
  nop
  ret
}
"#);
    assert_eq!(out.counts.total, 1); // just the ret
}
