//! Focused tests of the VM's fat-pointer memory model: object
//! generations, frame recycling, heap/stack separation, and the counting
//! discipline under each opcode class.

use vm::{Value, Vm, VmError, VmOptions};

fn run(src: &str) -> vm::Outcome {
    let m = ir::parse_module(src).expect("parse");
    Vm::run_main(&m, VmOptions::default()).expect("run")
}

fn run_err(src: &str) -> VmError {
    let m = ir::parse_module(src).expect("parse");
    Vm::run_main(&m, VmOptions::default()).expect_err("should fail")
}

#[test]
fn frame_objects_are_recycled_across_calls() {
    // Thousands of calls must not leak: each call's locals reuse slots.
    // (Indirectly observable: the program completes within the step limit
    // and computes correct per-activation values.)
    let out = run(r#"
tag "leaf.x" local owner=0 size=4
func @leaf(1) result {
B0:
  sstore r0, "leaf.x"
  r1 = sload "leaf.x"
  ret r1
}
func @main(0) result {
B0:
  r0 = iconst 0
  r1 = iconst 5000
  jump B1
B1:
  r2 = call @leaf(r0) mods{"leaf.x"} refs{"leaf.x"}
  r3 = iconst 1
  r0 = add r0, r3
  r4 = cmplt r0, r1
  branch r4, B1, B2
B2:
  ret r2
}
"#);
    assert_eq!(out.result, Some(Value::Int(4999)));
}

#[test]
fn generations_distinguish_recycled_slots() {
    // A pointer into a dead frame must fault even after the slot is
    // reused by a later call.
    let e = run_err(
        r#"
tag "a.x" local owner=0 size=1 addressed
tag "b.y" local owner=1 size=1 addressed
func @a(0) result {
B0:
  r0 = lea "a.x"
  ret r0
}
func @b(0) result {
B0:
  r0 = iconst 7
  sstore r0, "b.y"
  r1 = sload "b.y"
  ret r1
}
func @main(0) result {
B0:
  r0 = call @a() mods{} refs{}
  r1 = call @b() mods{} refs{}
  r2 = load [r0] {"a.x"}
  ret r2
}
"#,
    );
    assert_eq!(e, VmError::UseAfterFree);
}

#[test]
fn heap_objects_outlive_their_allocating_frame() {
    let out = run(r#"
tag "heap@0" heap site=0 size=1
func @make(1) result {
B0:
  r1 = iconst 1
  r2 = alloc r1, "heap@0"
  store r0, [r2] {"heap@0"}
  ret r2
}
func @main(0) result {
B0:
  r0 = iconst 77
  r1 = call @make(r0) mods{} refs{}
  r2 = load [r1] {"heap@0"}
  ret r2
}
"#);
    assert_eq!(out.result, Some(Value::Int(77)));
    assert_eq!(out.counts.allocs, 1);
}

#[test]
fn negative_offsets_fault() {
    let e = run_err(
        r#"
tag "g:a" global size=4 addressed
global "g:a" zero
func @main(0) {
B0:
  r0 = lea "g:a"
  r1 = iconst -1
  r2 = ptradd r0, r1
  r3 = load [r2] {"g:a"}
  ret
}
"#,
    );
    assert!(matches!(e, VmError::OutOfBounds(_)));
}

#[test]
fn interior_pointers_are_legal_until_dereferenced_oob() {
    // One-past-the-end arithmetic is fine; only dereference faults.
    let out = run(r#"
tag "g:a" global size=2 addressed
global "g:a" ints 5 6
func @main(0) result {
B0:
  r0 = lea "g:a"
  r1 = iconst 2
  r2 = ptradd r0, r1
  r3 = iconst -1
  r4 = ptradd r2, r3
  r5 = load [r4] {"g:a"}
  ret r5
}
"#);
    assert_eq!(out.result, Some(Value::Int(6)));
}

#[test]
fn float_and_int_cells_coexist() {
    let out = run(r#"
tag "g:f" global size=2
global "g:f" floats 1.5 2.5
func @main(0) {
B0:
  r0 = cload "g:f"
  r1 = fconst 0.5
  r2 = add r0, r1
  call $print_float(r2) mods{} refs{}
  ret
}
"#);
    assert_eq!(out.output, vec!["2.000000"]);
    // cload counts as a load.
    assert_eq!(out.counts.loads, 1);
}

#[test]
fn pointer_comparisons_order_within_an_object() {
    let out = run(r#"
tag "g:a" global size=8 addressed
global "g:a" zero
func @main(0) result {
B0:
  r0 = lea "g:a"
  r1 = iconst 3
  r2 = ptradd r0, r1
  r3 = cmplt r0, r2
  r4 = cmpeq r0, r2
  r5 = shl r3, r4
  ret r3
}
"#);
    assert_eq!(out.result, Some(Value::Int(1)));
}

#[test]
fn step_budget_counts_only_real_operations() {
    let m = ir::parse_module(
        r#"
func @main(0) {
B0:
  nop
  nop
  nop
  ret
}
"#,
    )
    .unwrap();
    let out = Vm::run_main(
        &m,
        VmOptions {
            max_steps: 1,
            ..Default::default()
        },
    )
    .expect("ret fits");
    assert_eq!(out.counts.total, 1);
}

#[test]
fn exit_code_follows_main_result_then_exit_intrinsic() {
    let out = run(r#"
func @main(0) result {
B0:
  r0 = iconst 9
  ret r0
}
"#);
    assert_eq!(out.exit_code, 9);
    let out = run(r#"
func @main(0) result {
B0:
  r0 = iconst 3
  call $exit(r0) mods{} refs{}
  r1 = iconst 9
  ret r1
}
"#);
    assert_eq!(out.exit_code, 3);
}
