//! The IL interpreter.
//!
//! Memory is a store of *objects*; every pointer is a fat `(object,
//! generation, offset)` triple, so pointer arithmetic is well defined and
//! use-after-return is detected rather than silently misread. The
//! interpreter counts every executed operation into [`ExecCounts`], which is
//! how the paper's dynamic load/store/operation figures are regenerated.

use crate::counts::ExecCounts;
use crate::value::{ObjId, Ptr, Value};
use ir::{
    BinOp, BlockId, Callee, CmpOp, FuncId, GlobalInit, Instr, Intrinsic, Module, Reg, TagId,
    TagKind, UnaryOp,
};
use std::error::Error;
use std::fmt;

/// Execution limits and switches.
#[derive(Debug, Clone)]
pub struct VmOptions {
    /// Abort after this many executed operations.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            max_steps: 1 << 33,
            max_depth: 2_000,
        }
    }
}

/// A dynamic execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Arithmetic on incompatible or uninitialized operands.
    TypeError(String),
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Dereference outside an object's bounds.
    OutOfBounds(String),
    /// Dereference of a pointer whose object has been freed.
    UseAfterFree,
    /// A non-pointer was dereferenced or a non-function was called.
    BadAddress(String),
    /// Reference to a tag with no live object (e.g. another function's
    /// local accessed by name).
    NoObject(String),
    /// The step budget was exhausted.
    StepLimit(u64),
    /// The call-depth budget was exhausted.
    StackOverflow(usize),
    /// `main` is missing or a function fell off its end.
    Malformed(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::TypeError(m) => write!(f, "type error: {m}"),
            VmError::DivisionByZero => write!(f, "division by zero"),
            VmError::OutOfBounds(m) => write!(f, "out-of-bounds access: {m}"),
            VmError::UseAfterFree => write!(f, "use after free"),
            VmError::BadAddress(m) => write!(f, "bad address: {m}"),
            VmError::NoObject(m) => write!(f, "no live object: {m}"),
            VmError::StepLimit(n) => write!(f, "step limit of {n} exceeded"),
            VmError::StackOverflow(n) => write!(f, "call depth limit of {n} exceeded"),
            VmError::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl Error for VmError {}

/// The result of a completed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The value returned by the entry function, if any.
    pub result: Option<Value>,
    /// Exit code (from `$exit`, else the integer result of `main`, else 0).
    pub exit_code: i64,
    /// Lines printed by the `print_*` intrinsics.
    pub output: Vec<String>,
    /// Dynamic instruction counts.
    pub counts: ExecCounts,
}

enum Stop {
    Error(VmError),
    Exit(i64),
}

impl From<VmError> for Stop {
    fn from(e: VmError) -> Self {
        Stop::Error(e)
    }
}

type Exec<T> = Result<T, Stop>;

#[derive(Debug, Clone, Copy)]
struct ObjRef {
    id: ObjId,
    gen: u32,
}

#[derive(Debug)]
struct Obj {
    gen: u32,
    live: bool,
    data: Vec<Value>,
}

struct Frame {
    regs: Vec<Value>,
    locals: Vec<(TagId, ObjRef)>,
}

/// The interpreter.
pub struct Vm<'m> {
    module: &'m Module,
    options: VmOptions,
    objects: Vec<Obj>,
    free_slots: Vec<u32>,
    global_map: Vec<Option<ObjRef>>,
    /// Tags owned by each function (locals, addressed params, spill slots).
    owned_tags: Vec<Vec<TagId>>,
    /// `phi_ends[func][block]` is the block's first non-φ instruction
    /// index, precomputed once so block dispatch doesn't rescan the
    /// instruction list every time a loop re-enters its header.
    phi_ends: Vec<Vec<u32>>,
    /// Reusable buffer for parallel φ evaluation. Only live within a
    /// single block entry (φ rows never call back into the interpreter),
    /// so one buffer serves every frame of the call stack.
    phi_updates: Vec<(Reg, Value)>,
    counts: ExecCounts,
    output: Vec<String>,
    depth: usize,
}

impl<'m> Vm<'m> {
    /// Prepares a VM over `module`: allocates and initializes globals.
    pub fn new(module: &'m Module, options: VmOptions) -> Self {
        let mut owned_tags = vec![Vec::new(); module.funcs.len()];
        for (id, info) in module.tags.iter() {
            if let Some(owner) = info.kind.owner() {
                if let Some(v) = owned_tags.get_mut(owner as usize) {
                    v.push(id);
                }
            }
        }
        let phi_ends = module
            .funcs
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.first_non_phi() as u32).collect())
            .collect();
        let mut vm = Vm {
            module,
            options,
            objects: Vec::new(),
            free_slots: Vec::new(),
            global_map: vec![None; module.tags.len()],
            owned_tags,
            phi_ends,
            phi_updates: Vec::new(),
            counts: ExecCounts::new(),
            output: Vec::new(),
            depth: 0,
        };
        for g in &module.globals {
            let size = module.tags.info(g.tag).size;
            let mut data = vec![Value::Int(0); size];
            match &g.init {
                GlobalInit::Zero => {}
                GlobalInit::Ints(vs) => {
                    for (i, v) in vs.iter().enumerate().take(size) {
                        data[i] = Value::Int(*v);
                    }
                }
                GlobalInit::Floats(vs) => {
                    // A float global is fully float-typed.
                    data = vec![Value::Float(0.0); size];
                    for (i, v) in vs.iter().enumerate().take(size) {
                        data[i] = Value::Float(*v);
                    }
                }
            }
            let r = vm.alloc_object(data);
            vm.global_map[g.tag.index()] = Some(r);
        }
        vm
    }

    /// Runs `main` with no arguments.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any dynamic failure, including a missing
    /// `main`.
    pub fn run_main(module: &'m Module, options: VmOptions) -> Result<Outcome, VmError> {
        let main = module
            .main()
            .ok_or_else(|| VmError::Malformed("no @main function".into()))?;
        Self::run(module, main, &[], options)
    }

    /// Runs `func` with `args`.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any dynamic failure (type errors, bounds
    /// violations, step/stack limits, ...).
    pub fn run(
        module: &'m Module,
        func: FuncId,
        args: &[Value],
        options: VmOptions,
    ) -> Result<Outcome, VmError> {
        let mut vm = Vm::new(module, options);
        match vm.exec_function(func, args.to_vec()) {
            Ok(result) => {
                let exit_code = match result {
                    Some(Value::Int(v)) => v,
                    _ => 0,
                };
                Ok(Outcome {
                    result,
                    exit_code,
                    output: vm.output,
                    counts: vm.counts,
                })
            }
            Err(Stop::Exit(code)) => Ok(Outcome {
                result: None,
                exit_code: code,
                output: vm.output,
                counts: vm.counts,
            }),
            Err(Stop::Error(e)) => Err(e),
        }
    }

    fn alloc_object(&mut self, data: Vec<Value>) -> ObjRef {
        if let Some(slot) = self.free_slots.pop() {
            let obj = &mut self.objects[slot as usize];
            obj.data = data;
            obj.live = true;
            ObjRef {
                id: ObjId(slot),
                gen: obj.gen,
            }
        } else {
            let id = ObjId(self.objects.len() as u32);
            self.objects.push(Obj {
                gen: 0,
                live: true,
                data,
            });
            ObjRef { id, gen: 0 }
        }
    }

    fn free_object(&mut self, r: ObjRef) {
        let obj = &mut self.objects[r.id.index()];
        obj.live = false;
        obj.gen = obj.gen.wrapping_add(1);
        obj.data = Vec::new();
        self.free_slots.push(r.id.0);
    }

    fn tag_object(&self, frame: &Frame, tag: TagId) -> Exec<ObjRef> {
        let info = self.module.tags.info(tag);
        match info.kind {
            TagKind::Global => self.global_map[tag.index()].ok_or_else(|| {
                Stop::Error(VmError::NoObject(format!(
                    "global \"{}\" has no definition",
                    info.name
                )))
            }),
            _ => frame
                .locals
                .iter()
                .find(|(t, _)| *t == tag)
                .map(|(_, r)| *r)
                .ok_or_else(|| {
                    Stop::Error(VmError::NoObject(format!(
                        "tag \"{}\" not owned by the running function",
                        info.name
                    )))
                }),
        }
    }

    fn read_cell(&self, p: Ptr) -> Exec<Value> {
        let obj = self
            .objects
            .get(p.obj.index())
            .ok_or_else(|| Stop::Error(VmError::BadAddress(format!("object {}", p.obj.0))))?;
        if !obj.live || obj.gen != p.gen {
            return Err(VmError::UseAfterFree.into());
        }
        if p.off < 0 || p.off as usize >= obj.data.len() {
            return Err(VmError::OutOfBounds(format!(
                "offset {} in object of {} cells",
                p.off,
                obj.data.len()
            ))
            .into());
        }
        Ok(obj.data[p.off as usize])
    }

    fn write_cell(&mut self, p: Ptr, v: Value) -> Exec<()> {
        let obj = self
            .objects
            .get_mut(p.obj.index())
            .ok_or_else(|| Stop::Error(VmError::BadAddress(format!("object {}", p.obj.0))))?;
        if !obj.live || obj.gen != p.gen {
            return Err(VmError::UseAfterFree.into());
        }
        if p.off < 0 || p.off as usize >= obj.data.len() {
            return Err(VmError::OutOfBounds(format!(
                "offset {} in object of {} cells",
                p.off,
                obj.data.len()
            ))
            .into());
        }
        obj.data[p.off as usize] = v;
        Ok(())
    }

    fn step(&mut self) -> Exec<()> {
        self.counts.total += 1;
        if self.counts.total > self.options.max_steps {
            Err(VmError::StepLimit(self.options.max_steps).into())
        } else {
            Ok(())
        }
    }

    fn exec_function(&mut self, func_id: FuncId, args: Vec<Value>) -> Exec<Option<Value>> {
        self.depth += 1;
        if self.depth > self.options.max_depth {
            self.depth -= 1;
            return Err(VmError::StackOverflow(self.options.max_depth).into());
        }
        let func = self.module.func(func_id);
        if args.len() != func.arity {
            self.depth -= 1;
            return Err(VmError::Malformed(format!(
                "@{} called with {} args, arity {}",
                func.name,
                args.len(),
                func.arity
            ))
            .into());
        }
        let mut regs = vec![Value::Uninit; func.next_reg as usize];
        regs[..args.len()].copy_from_slice(&args);
        let mut frame = Frame {
            regs,
            locals: Vec::new(),
        };
        for &tag in &self.owned_tags[func_id.index()].clone() {
            let size = self.module.tags.info(tag).size;
            let r = self.alloc_object(vec![Value::Uninit; size]);
            frame.locals.push((tag, r));
        }
        let result = self.exec_blocks(func_id, &mut frame);
        for &(_, r) in &frame.locals {
            self.free_object(r);
        }
        self.depth -= 1;
        result
    }

    fn exec_blocks(&mut self, func_id: FuncId, frame: &mut Frame) -> Exec<Option<Value>> {
        let func = self.module.func(func_id);
        let mut cur = func.entry;
        let mut prev: Option<BlockId> = None;
        loop {
            let block = func.block(cur);
            // φ-nodes evaluate in parallel against the previous block; the
            // span was precomputed in `Vm::new`, so re-entering a block is
            // an indexed lookup rather than an instruction rescan.
            let phi_end = self.phi_ends[func_id.index()][cur.index()] as usize;
            if phi_end > 0 {
                let pb = prev.ok_or_else(|| {
                    Stop::Error(VmError::Malformed(format!(
                        "phi in entry block of @{}",
                        func.name
                    )))
                })?;
                self.phi_updates.clear();
                for instr in &block.instrs[..phi_end] {
                    if let Instr::Phi { dst, args } = instr {
                        let (_, src) = args.iter().find(|(b, _)| *b == pb).ok_or_else(|| {
                            Stop::Error(VmError::Malformed(format!(
                                "phi in {cur} lacks entry for predecessor {pb}"
                            )))
                        })?;
                        self.phi_updates.push((*dst, frame.regs[src.index()]));
                    }
                }
                for &(dst, v) in &self.phi_updates {
                    frame.regs[dst.index()] = v;
                }
            }
            let mut next: Option<BlockId> = None;
            for instr in &block.instrs[phi_end..] {
                match self.exec_instr(instr, frame)? {
                    Flow::Continue => {}
                    Flow::Jump(b) => {
                        next = Some(b);
                        break;
                    }
                    Flow::Return(v) => return Ok(v),
                }
            }
            match next {
                Some(b) => {
                    prev = Some(cur);
                    cur = b;
                }
                None => {
                    return Err(VmError::Malformed(format!(
                        "block {cur} of @{} fell through without a terminator",
                        func.name
                    ))
                    .into())
                }
            }
        }
    }

    fn exec_instr(&mut self, instr: &Instr, frame: &mut Frame) -> Exec<Flow> {
        let get = |frame: &Frame, r: Reg| frame.regs[r.index()];
        match instr {
            Instr::Nop | Instr::Phi { .. } => return Ok(Flow::Continue),
            _ => self.step()?,
        }
        match instr {
            Instr::IConst { dst, value } => {
                self.counts.arith += 1;
                frame.regs[dst.index()] = Value::Int(*value);
            }
            Instr::FConst { dst, value } => {
                self.counts.arith += 1;
                frame.regs[dst.index()] = Value::Float(*value);
            }
            Instr::FuncAddr { dst, func } => {
                self.counts.arith += 1;
                frame.regs[dst.index()] = Value::Func(*func);
            }
            Instr::Copy { dst, src } => {
                self.counts.copies += 1;
                frame.regs[dst.index()] = get(frame, *src);
            }
            Instr::Unary { op, dst, src } => {
                self.counts.arith += 1;
                frame.regs[dst.index()] = eval_unary(*op, get(frame, *src))?;
            }
            Instr::Binary { op, dst, lhs, rhs } => {
                self.counts.arith += 1;
                frame.regs[dst.index()] = eval_binary(*op, get(frame, *lhs), get(frame, *rhs))?;
            }
            Instr::Cmp { op, dst, lhs, rhs } => {
                self.counts.arith += 1;
                frame.regs[dst.index()] = eval_cmp(*op, get(frame, *lhs), get(frame, *rhs))?;
            }
            Instr::CLoad { dst, tag } => {
                self.counts.loads += 1;
                self.counts.scalar_loads += 1;
                let r = self.tag_object(frame, *tag)?;
                frame.regs[dst.index()] = self.read_cell(Ptr {
                    obj: r.id,
                    gen: r.gen,
                    off: 0,
                })?;
            }
            Instr::SLoad { dst, tag } => {
                self.counts.loads += 1;
                self.counts.scalar_loads += 1;
                let r = self.tag_object(frame, *tag)?;
                frame.regs[dst.index()] = self.read_cell(Ptr {
                    obj: r.id,
                    gen: r.gen,
                    off: 0,
                })?;
            }
            Instr::SStore { src, tag } => {
                self.counts.stores += 1;
                self.counts.scalar_stores += 1;
                let r = self.tag_object(frame, *tag)?;
                let v = get(frame, *src);
                self.write_cell(
                    Ptr {
                        obj: r.id,
                        gen: r.gen,
                        off: 0,
                    },
                    v,
                )?;
            }
            Instr::Load { dst, addr, .. } => {
                self.counts.loads += 1;
                self.counts.ptr_loads += 1;
                let p = expect_ptr(get(frame, *addr))?;
                frame.regs[dst.index()] = self.read_cell(p)?;
            }
            Instr::Store { src, addr, .. } => {
                self.counts.stores += 1;
                self.counts.ptr_stores += 1;
                let p = expect_ptr(get(frame, *addr))?;
                let v = get(frame, *src);
                self.write_cell(p, v)?;
            }
            Instr::Lea { dst, tag } => {
                self.counts.arith += 1;
                let r = self.tag_object(frame, *tag)?;
                frame.regs[dst.index()] = ptr_value(r, 0);
            }
            Instr::PtrAdd { dst, base, offset } => {
                self.counts.arith += 1;
                let p = expect_ptr(get(frame, *base))?;
                let off = get(frame, *offset).as_int().ok_or_else(|| {
                    Stop::Error(VmError::TypeError(format!(
                        "ptradd offset must be int, got {}",
                        get(frame, *offset).kind_name()
                    )))
                })?;
                frame.regs[dst.index()] = Value::Ptr(Ptr {
                    obj: p.obj,
                    gen: p.gen,
                    off: p.off + off,
                });
            }
            Instr::Alloc { dst, size, .. } => {
                self.counts.allocs += 1;
                let n = get(frame, *size).as_int().ok_or_else(|| {
                    Stop::Error(VmError::TypeError("alloc size must be int".into()))
                })?;
                if n < 0 {
                    return Err(VmError::TypeError(format!("negative alloc size {n}")).into());
                }
                let r = self.alloc_object(vec![Value::Uninit; n as usize]);
                frame.regs[dst.index()] = ptr_value(r, 0);
            }
            Instr::Call {
                dst, callee, args, ..
            } => {
                self.counts.calls += 1;
                let argv: Vec<Value> = args.iter().map(|r| get(frame, *r)).collect();
                let result = match callee {
                    Callee::Direct(f) => self.exec_function(*f, argv)?,
                    Callee::Indirect(r) => match get(frame, *r) {
                        Value::Func(f) => self.exec_function(f, argv)?,
                        other => {
                            return Err(VmError::BadAddress(format!(
                                "indirect call through {}",
                                other.kind_name()
                            ))
                            .into())
                        }
                    },
                    Callee::Intrinsic(i) => self.exec_intrinsic(*i, &argv)?,
                };
                if let Some(d) = dst {
                    frame.regs[d.index()] = result.ok_or_else(|| {
                        Stop::Error(VmError::Malformed("void callee used for its result".into()))
                    })?;
                }
            }
            Instr::Jump { target } => {
                self.counts.control += 1;
                return Ok(Flow::Jump(*target));
            }
            Instr::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                self.counts.control += 1;
                let c = get(frame, *cond).as_int().ok_or_else(|| {
                    Stop::Error(VmError::TypeError(format!(
                        "branch condition must be int, got {}",
                        get(frame, *cond).kind_name()
                    )))
                })?;
                return Ok(Flow::Jump(if c != 0 { *then_bb } else { *else_bb }));
            }
            Instr::Ret { value } => {
                self.counts.control += 1;
                return Ok(Flow::Return(value.map(|r| get(frame, r))));
            }
            Instr::Nop | Instr::Phi { .. } => unreachable!("handled above"),
        }
        Ok(Flow::Continue)
    }

    fn exec_intrinsic(&mut self, intr: Intrinsic, args: &[Value]) -> Exec<Option<Value>> {
        let float = |v: Value| {
            v.as_float().ok_or_else(|| {
                Stop::Error(VmError::TypeError(format!(
                    "${} expects float, got {}",
                    intr.name(),
                    v.kind_name()
                )))
            })
        };
        let int = |v: Value| {
            v.as_int().ok_or_else(|| {
                Stop::Error(VmError::TypeError(format!(
                    "${} expects int, got {}",
                    intr.name(),
                    v.kind_name()
                )))
            })
        };
        Ok(match intr {
            Intrinsic::PrintInt => {
                self.output.push(int(args[0])?.to_string());
                None
            }
            Intrinsic::PrintFloat => {
                self.output.push(format!("{:.6}", float(args[0])?));
                None
            }
            Intrinsic::Sqrt => Some(Value::Float(float(args[0])?.sqrt())),
            Intrinsic::Sin => Some(Value::Float(float(args[0])?.sin())),
            Intrinsic::Cos => Some(Value::Float(float(args[0])?.cos())),
            Intrinsic::Pow => Some(Value::Float(float(args[0])?.powf(float(args[1])?))),
            Intrinsic::AbsInt => Some(Value::Int(int(args[0])?.wrapping_abs())),
            Intrinsic::AbsFloat => Some(Value::Float(float(args[0])?.abs())),
            Intrinsic::Exit => return Err(Stop::Exit(int(args[0])?)),
        })
    }
}

enum Flow {
    Continue,
    Jump(BlockId),
    Return(Option<Value>),
}

fn ptr_value(r: ObjRef, off: i64) -> Value {
    Value::Ptr(Ptr {
        obj: r.id,
        gen: r.gen,
        off,
    })
}

fn expect_ptr(v: Value) -> Exec<Ptr> {
    match v {
        Value::Ptr(p) => Ok(p),
        other => {
            Err(VmError::BadAddress(format!("expected pointer, got {}", other.kind_name())).into())
        }
    }
}

fn type_err(op: &str, a: Value, b: Value) -> Stop {
    Stop::Error(VmError::TypeError(format!(
        "{op} on {} and {}",
        a.kind_name(),
        b.kind_name()
    )))
}

fn eval_unary(op: UnaryOp, v: Value) -> Exec<Value> {
    Ok(match (op, v) {
        (UnaryOp::Neg, Value::Int(a)) => Value::Int(a.wrapping_neg()),
        (UnaryOp::Neg, Value::Float(a)) => Value::Float(-a),
        (UnaryOp::Not, Value::Int(a)) => Value::Int((a == 0) as i64),
        (UnaryOp::IntToFloat, Value::Int(a)) => Value::Float(a as f64),
        (UnaryOp::FloatToInt, Value::Float(a)) => Value::Int(a as i64),
        (op, v) => {
            return Err(Stop::Error(VmError::TypeError(format!(
                "{} on {}",
                op.mnemonic(),
                v.kind_name()
            ))))
        }
    })
}

fn eval_binary(op: BinOp, a: Value, b: Value) -> Exec<Value> {
    use BinOp::*;
    Ok(match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(VmError::DivisionByZero.into());
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return Err(VmError::DivisionByZero.into());
                }
                x.wrapping_rem(y)
            }
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
            Shl => x.wrapping_shl((y & 63) as u32),
            Shr => x.wrapping_shr((y & 63) as u32),
        }),
        (Value::Float(x), Value::Float(y)) => match op {
            Add => Value::Float(x + y),
            Sub => Value::Float(x - y),
            Mul => Value::Float(x * y),
            Div => Value::Float(x / y),
            Rem => Value::Float(x % y),
            _ => return Err(type_err(op.mnemonic(), a, b)),
        },
        _ => return Err(type_err(op.mnemonic(), a, b)),
    })
}

fn eval_cmp(op: CmpOp, a: Value, b: Value) -> Exec<Value> {
    use std::cmp::Ordering;
    // The null-pointer idiom: a pointer may be equality-compared with the
    // integer 0 (and is never equal to it).
    match (op, a, b) {
        (CmpOp::Eq, Value::Ptr(_), Value::Int(0))
        | (CmpOp::Eq, Value::Int(0), Value::Ptr(_))
        | (CmpOp::Eq, Value::Func(_), Value::Int(0))
        | (CmpOp::Eq, Value::Int(0), Value::Func(_)) => return Ok(Value::Int(0)),
        (CmpOp::Ne, Value::Ptr(_), Value::Int(0))
        | (CmpOp::Ne, Value::Int(0), Value::Ptr(_))
        | (CmpOp::Ne, Value::Func(_), Value::Int(0))
        | (CmpOp::Ne, Value::Int(0), Value::Func(_)) => return Ok(Value::Int(1)),
        _ => {}
    }
    let ord = match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(&y),
        (Value::Float(x), Value::Float(y)) => {
            x.partial_cmp(&y).unwrap_or(Ordering::Greater) // NaN compares greater
        }
        (Value::Ptr(p), Value::Ptr(q)) => (p.obj.0, p.gen, p.off).cmp(&(q.obj.0, q.gen, q.off)),
        (Value::Func(f), Value::Func(g)) => f.0.cmp(&g.0),
        _ => return Err(type_err(op.mnemonic(), a, b)),
    };
    let r = match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    };
    Ok(Value::Int(r as i64))
}
