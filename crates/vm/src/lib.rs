//! An instrumented interpreter for the register-promotion IL.
//!
//! The paper instruments each compiled program "to record the total number
//! of operations executed, stores executed, and loads executed" (its
//! Figures 5–7). This crate provides exactly that measurement substrate: a
//! direct interpreter over [`ir`] modules with per-class dynamic counters.
//!
//! ```
//! use vm::{Vm, VmOptions};
//!
//! let module = ir::parse_module(r#"
//! tag "g:x" global size=1
//! global "g:x" ints 20
//! func @main(0) result {
//! B0:
//!   r0 = sload "g:x"
//!   r1 = iconst 22
//!   r2 = add r0, r1
//!   sstore r2, "g:x"
//!   r3 = sload "g:x"
//!   call $print_int(r3) mods{} refs{}
//!   ret r3
//! }
//! "#)?;
//! let out = Vm::run_main(&module, VmOptions::default())?;
//! assert_eq!(out.output, vec!["42"]);
//! assert_eq!(out.counts.loads, 2);
//! assert_eq!(out.counts.stores, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod counts;
mod machine;
mod value;

pub use counts::ExecCounts;
pub use machine::{Outcome, Vm, VmError, VmOptions};
pub use value::{ObjId, Ptr, Value};
