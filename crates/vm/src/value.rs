//! Runtime values and the fat-pointer memory model.

use ir::FuncId;
use std::fmt;

/// Index of a runtime memory object in the VM store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A runtime pointer: an object plus a cell offset.
///
/// Pointer arithmetic moves the offset and may go out of bounds as an
/// intermediate value (like C one-past-the-end pointers); bounds are checked
/// only when the pointer is dereferenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ptr {
    /// The object pointed into.
    pub obj: ObjId,
    /// Allocation generation of the object slot; a mismatch with the live
    /// object's generation means the pointer dangles.
    pub gen: u32,
    /// Cell offset within the object.
    pub off: i64,
}

/// A dynamically typed VM value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Pointer into a memory object.
    Ptr(Ptr),
    /// A function address (for function pointers).
    Func(FuncId),
    /// Undefined contents (uninitialized register or memory cell).
    ///
    /// `Uninit` may be copied, loaded, and stored freely — the promoter's
    /// landing-pad loads may legitimately read not-yet-written memory — but
    /// any *computation* on it is a VM error.
    Uninit,
}

impl Default for Value {
    fn default() -> Self {
        Value::Uninit
    }
}

impl Value {
    /// The integer payload.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The float payload.
    pub fn as_float(self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The pointer payload.
    pub fn as_ptr(self) -> Option<Ptr> {
        match self {
            Value::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// A short type name for diagnostics.
    pub fn kind_name(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Ptr(_) => "ptr",
            Value::Func(_) => "func",
            Value::Uninit => "uninit",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:?}"),
            Value::Ptr(p) => write!(f, "&obj{}+{}", p.obj.0, p.off),
            Value::Func(id) => write!(f, "@{id}"),
            Value::Uninit => write!(f, "<uninit>"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Int(3).as_float(), None);
        assert_eq!(Value::default(), Value::Uninit);
        let p = Ptr {
            obj: ObjId(1),
            gen: 0,
            off: 2,
        };
        assert_eq!(Value::Ptr(p).as_ptr(), Some(p));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Uninit.to_string(), "<uninit>");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
    }
}
