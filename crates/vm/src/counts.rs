//! Dynamic instruction counters — the paper's measurement apparatus.
//!
//! The evaluation in the paper reports, per program version, the dynamic
//! number of **total operations**, **stores**, and **loads** executed
//! (Figures 5–7). [`ExecCounts`] collects exactly those, plus a finer
//! per-class breakdown used by the ablation reports.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Dynamic instruction counts for one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounts {
    /// All executed operations (φ-nodes and `nop`s excluded).
    pub total: u64,
    /// Executed loads: `cload` + `sload` + `load`.
    pub loads: u64,
    /// Executed stores: `sstore` + `store`.
    pub stores: u64,
    /// Executed scalar loads (`sload` only).
    pub scalar_loads: u64,
    /// Executed scalar stores (`sstore` only).
    pub scalar_stores: u64,
    /// Executed pointer-based loads (`load` only).
    pub ptr_loads: u64,
    /// Executed pointer-based stores (`store` only).
    pub ptr_stores: u64,
    /// Executed register copies.
    pub copies: u64,
    /// Executed calls (direct + indirect + intrinsic).
    pub calls: u64,
    /// Executed control transfers (`jump` + `branch` + `ret`).
    pub control: u64,
    /// Executed arithmetic/compare/constant operations.
    pub arith: u64,
    /// Executed heap allocations.
    pub allocs: u64,
}

impl ExecCounts {
    /// All counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memory traffic: loads + stores.
    pub fn memory_ops(&self) -> u64 {
        self.loads + self.stores
    }
}

impl Add for ExecCounts {
    type Output = ExecCounts;

    fn add(mut self, rhs: ExecCounts) -> ExecCounts {
        self += rhs;
        self
    }
}

impl AddAssign for ExecCounts {
    fn add_assign(&mut self, rhs: ExecCounts) {
        self.total += rhs.total;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.scalar_loads += rhs.scalar_loads;
        self.scalar_stores += rhs.scalar_stores;
        self.ptr_loads += rhs.ptr_loads;
        self.ptr_stores += rhs.ptr_stores;
        self.copies += rhs.copies;
        self.calls += rhs.calls;
        self.control += rhs.control;
        self.arith += rhs.arith;
        self.allocs += rhs.allocs;
    }
}

impl fmt::Display for ExecCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total={} loads={} stores={} copies={} calls={}",
            self.total, self.loads, self.stores, self.copies, self.calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition() {
        let a = ExecCounts {
            total: 10,
            loads: 2,
            stores: 1,
            ..Default::default()
        };
        let b = ExecCounts {
            total: 5,
            loads: 1,
            stores: 4,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.total, 15);
        assert_eq!(c.memory_ops(), 8);
    }
}
