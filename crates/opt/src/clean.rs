//! The basic-block cleaning pass.
//!
//! The paper's pipeline ends with "a basic block cleaning pass", and its
//! CFG construction notes that "empty blocks are automatically removed
//! after optimization". This pass removes `nop`s, threads jumps through
//! empty forwarding blocks, folds constant branches left by constant
//! propagation, and deletes unreachable blocks.

use cfg::{remove_unreachable_blocks_in, FunctionAnalyses};
use ir::{BlockId, Function, Instr, Module};

/// Reusable buffers for [`clean_function_in`]: the jump-forwarding table,
/// length-reset per call so its capacity survives across functions.
#[derive(Default)]
pub struct CleanScratch {
    forward: Vec<Option<BlockId>>,
}

/// Runs the cleaner on one function. Returns the number of changes.
///
/// Convenience wrapper over [`clean_function_in`] with a throwaway scratch.
pub fn clean_function(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    clean_function_in(func, analyses, &mut CleanScratch::default())
}

/// [`clean_function`] against caller-owned scratch buffers: the
/// zero-allocation path the fused pipeline chain uses.
pub fn clean_function_in(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut CleanScratch,
) -> usize {
    let mut changes = 0;
    // 1. Drop nops. Removing a nop changes no live range and no edge, so
    //    it does not dirty the cache at all.
    for block in &mut func.blocks {
        let before = block.instrs.len();
        block.instrs.retain(|i| !matches!(i, Instr::Nop));
        changes += before - block.instrs.len();
    }
    // 2. Fold branches with equal targets into jumps (shape tier: the
    //    duplicate edge collapses).
    let mut shape_changes = 0;
    for block in &mut func.blocks {
        if let Some(Instr::Branch {
            then_bb, else_bb, ..
        }) = block.instrs.last()
        {
            if then_bb == else_bb {
                let t = *then_bb;
                *block.instrs.last_mut().expect("terminator") = Instr::Jump { target: t };
                changes += 1;
                shape_changes += 1;
            }
        }
    }
    // 3. Thread jumps through empty forwarding blocks (a block whose only
    //    instruction is `jump`). Do not thread the entry block away and
    //    respect φ-nodes in targets (their predecessor labels would have to
    //    change; the pipeline is φ-free, but stay safe).
    let n = func.blocks.len();
    let forward = &mut scratch.forward;
    forward.clear();
    forward.resize(n, None);
    for id in func.block_ids() {
        let block = func.block(id);
        if block.instrs.len() == 1 {
            if let Some(Instr::Jump { target }) = block.instrs.first() {
                if *target != id {
                    forward[id.index()] = Some(*target);
                }
            }
        }
    }
    let has_phis = func
        .blocks
        .iter()
        .any(|b| b.instrs.iter().any(|i| matches!(i, Instr::Phi { .. })));
    if !has_phis {
        // Resolve forwarding chains (with cycle guard).
        let resolve = |mut b: BlockId| {
            let mut hops = 0;
            while let Some(next) = forward[b.index()] {
                b = next;
                hops += 1;
                if hops > n {
                    break;
                }
            }
            b
        };
        for id in func.block_ids() {
            let mut local = 0;
            if let Some(t) = func.block_mut(id).terminator_mut() {
                t.retarget_blocks(|b| {
                    let r = resolve(b);
                    if r != b {
                        local += 1;
                    }
                    r
                });
            }
            changes += local;
            shape_changes += local;
        }
        let new_entry = resolve(func.entry);
        if new_entry != func.entry {
            func.entry = new_entry;
            shape_changes += 1;
        }
    }
    if shape_changes > 0 {
        analyses.note_shape_changed();
    }
    // 4. Delete newly unreachable blocks (reports its own invalidation).
    changes += remove_unreachable_blocks_in(func, analyses);
    changes
}

/// Runs the cleaner over every function, sharing one scratch.
pub fn clean(module: &mut Module) -> usize {
    let mut changes = 0;
    let mut scratch = CleanScratch::default();
    for func in &mut module.funcs {
        changes += clean_function_in(func, &mut FunctionAnalyses::new(), &mut scratch);
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::FunctionBuilder;

    #[test]
    fn removes_nops_and_threads_jumps() {
        let mut b = FunctionBuilder::new("f", 0);
        let fwd = b.new_block();
        let end = b.new_block();
        b.emit(Instr::Nop);
        b.jump(fwd);
        b.switch_to(fwd);
        b.jump(end);
        b.switch_to(end);
        b.ret(None);
        let mut f = b.finish();
        let changes = clean_function(&mut f, &mut FunctionAnalyses::new());
        assert!(changes >= 2);
        // After nop removal B0 itself becomes a forwarder, so everything
        // collapses to the single return block.
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(
            f.block(f.entry).terminator(),
            Some(Instr::Ret { .. })
        ));
    }

    #[test]
    fn folds_same_target_branches() {
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let t = b.new_block();
        b.branch(c, t, t);
        b.switch_to(t);
        b.ret(None);
        let mut f = b.finish();
        clean_function(&mut f, &mut FunctionAnalyses::new());
        assert!(matches!(
            f.block(f.entry).terminator(),
            Some(Instr::Jump { .. })
        ));
    }

    #[test]
    fn entry_forwarder_is_resolved() {
        let mut b = FunctionBuilder::new("f", 0);
        let real = b.new_block();
        b.jump(real);
        b.switch_to(real);
        b.ret(None);
        let mut f = b.finish();
        clean_function(&mut f, &mut FunctionAnalyses::new());
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(
            f.block(f.entry).terminator(),
            Some(Instr::Ret { .. })
        ));
    }

    #[test]
    fn self_loop_jump_is_kept() {
        // A single-block infinite loop must not be threaded into nothing.
        let mut b = FunctionBuilder::new("f", 0);
        let l = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.jump(l);
        let mut f = b.finish();
        clean_function(&mut f, &mut FunctionAnalyses::new());
        let m = {
            let mut m = Module::new();
            m.add_func(f);
            m
        };
        ir::validate(&m).expect("still valid");
    }
}

/// [`clean_function_in`] with per-pass delta recording (see
/// [`crate::with_delta`]).
pub fn clean_function_traced(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut CleanScratch,
    tr: &mut trace::FuncTrace,
) -> usize {
    crate::with_delta("clean", func, tr, |f| {
        clean_function_in(f, analyses, scratch)
    })
}
