//! Loop-invariant code motion.
//!
//! Hoists pure computations — and scalar loads of tags that nothing in the
//! loop can modify — into the loop's landing pad. On the non-SSA IL a
//! hoist is legal when the destination register has exactly one definition
//! in the whole function and every operand is defined outside the loop (or
//! by something already hoisted); faulting operations (`div`/`rem` by a
//! non-constant) are never speculated.

use cfg::{FunctionAnalyses, LoopForest};
use ir::{BinOp, DenseMap, Function, Instr, Module, Reg, TagSet};

/// The payload of a cloneable constant definition — enough to mint a fresh
/// copy in the landing pad without keeping a cloned [`Instr`] around.
#[derive(Clone, Copy)]
enum ConstVal {
    Int(i64),
    Float(f64),
}

impl Default for ConstVal {
    fn default() -> Self {
        ConstVal::Int(0)
    }
}

impl ConstVal {
    fn mint(self, dst: Reg) -> Instr {
        match self {
            ConstVal::Int(value) => Instr::IConst { dst, value },
            ConstVal::Float(value) => Instr::FConst { dst, value },
        }
    }
}

/// Reusable hoisting state for [`licm_function_in`]: dense per-register
/// side tables (definition counts, per-loop in-loop counts, cloneable
/// constants, per-loop pad clones) plus the block list, hoist mask, and
/// pending-hoist buffer that let each block be rebuilt in one compaction
/// sweep instead of one `Vec::remove`/`insert` shift per hoist.
#[derive(Default)]
pub struct LicmScratch {
    def_count: DenseMap<u32>,
    defs_in_loop: Vec<DenseMap<u32>>,
    const_of: DenseMap<ConstVal>,
    pad_clones: DenseMap<u32>,
    blocks: Vec<ir::BlockId>,
    to_pad: Vec<Instr>,
    hoist_mask: Vec<bool>,
    const_operands: Vec<Reg>,
}

/// Constants are never *moved* out of loops — on the paper's ILOC they
/// would be immediate operands with no live range at all, so stretching
/// them across a loop only manufactures register pressure. Instead, when a
/// hoisted consumer needs one, the constant is *cloned* into the landing
/// pad.
fn constant_def(instr: &Instr) -> bool {
    matches!(instr, Instr::IConst { .. } | Instr::FConst { .. })
}

/// True for instructions that may be executed speculatively.
fn is_speculable(instr: &Instr, func: &Function) -> bool {
    match instr {
        Instr::FuncAddr { .. }
        | Instr::Copy { .. }
        | Instr::Unary { .. }
        | Instr::Cmp { .. }
        | Instr::Lea { .. }
        | Instr::PtrAdd { .. } => true,
        Instr::Binary {
            op: BinOp::Div | BinOp::Rem,
            rhs,
            ..
        } => {
            // Only speculate division by a nonzero constant.
            func.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .any(|i| matches!(i, Instr::IConst { dst, value } if dst == rhs && *value != 0))
        }
        Instr::Binary { .. } => true,
        _ => false,
    }
}

/// Tags possibly modified anywhere in the loop `li` of `func`.
fn loop_mods(func: &Function, forest: &LoopForest, li: usize) -> TagSet {
    let mut mods = TagSet::empty();
    for &b in &forest.loops[li].blocks {
        for instr in &func.blocks[b.index()].instrs {
            if let Some(m) = instr.mod_tags() {
                mods.union_with(&m);
            }
        }
    }
    mods
}

/// Runs LICM over one (normalized) function. Returns instructions moved.
///
/// Convenience wrapper over [`licm_function_in`] with a throwaway scratch.
pub fn licm_function(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    licm_function_in(func, analyses, &mut LicmScratch::default())
}

/// [`licm_function`] against caller-owned scratch tables: the
/// zero-allocation path the fused pipeline chain uses.
///
/// Semantics are identical to hoisting one instruction at a time; the
/// difference is mechanical. Hoist decisions mark instructions (the slot
/// is replaced by a nop and the instruction moves to a pending buffer, so
/// later decisions in the same sweep observe exactly the
/// already-hoisted state), and each swept block is then compacted once
/// and its pending hoists spliced into the landing pad in one shift —
/// instead of one `Vec::remove` plus one `insert_before_terminator` per
/// hoist.
pub fn licm_function_in(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut LicmScratch,
) -> usize {
    let (_, forest, geom) = analyses.loop_view(func);
    if forest.is_empty() {
        return 0;
    }
    let nregs = func.next_reg as usize;
    let LicmScratch {
        def_count,
        defs_in_loop,
        const_of,
        pad_clones,
        blocks,
        to_pad,
        hoist_mask,
        const_operands,
    } = scratch;
    // Whole-function definition counts (single-def requirement).
    def_count.reset(nregs);
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                let c = def_count.get(d.0).unwrap_or(0);
                def_count.insert(d.0, c + 1);
            }
        }
    }
    // Per-loop in-loop definition counts, updated as hoists happen.
    if defs_in_loop.len() < forest.len() {
        defs_in_loop.resize_with(forest.len(), DenseMap::default);
    }
    for (li, l) in forest.loops.iter().enumerate() {
        let dl = &mut defs_in_loop[li];
        dl.reset(nregs);
        for &b in &l.blocks {
            for instr in &func.blocks[b.index()].instrs {
                if let Some(d) = instr.def() {
                    let c = dl.get(d.0).unwrap_or(0);
                    dl.insert(d.0, c + 1);
                }
            }
        }
    }
    // Single-definition constants, for pad cloning (payload only — no
    // instruction clones).
    const_of.reset(nregs);
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                if constant_def(instr) && def_count.get(d.0) == Some(1) {
                    let val = match instr {
                        Instr::IConst { value, .. } => ConstVal::Int(*value),
                        Instr::FConst { value, .. } => ConstVal::Float(*value),
                        _ => unreachable!("constant_def"),
                    };
                    const_of.insert(d.0, val);
                }
            }
        }
    }
    let mut moved = 0;
    for li in forest.inner_to_outer() {
        let li = li.index();
        let pad = geom.landing_pads[li];
        let mods = loop_mods(func, forest, li);
        // Constants already cloned into this loop's pad: original -> clone.
        pad_clones.reset(0);
        blocks.clear();
        blocks.extend(
            forest.loops[li]
                .blocks
                .iter()
                .copied()
                .filter(|b| forest.block_loop[b.index()] == Some(cfg::LoopId(li as u32))),
        );
        // Iterate to fixpoint so chains of invariant ops cascade out.
        loop {
            let mut hoisted_any = false;
            for &b in blocks.iter() {
                let len = func.blocks[b.index()].instrs.len();
                hoist_mask.clear();
                hoist_mask.resize(len, false);
                debug_assert!(to_pad.is_empty());
                for i in 0..len {
                    let hoist = {
                        let instr = &func.blocks[b.index()].instrs[i];
                        let hoistable = match instr {
                            Instr::SLoad { tag, .. } | Instr::CLoad { tag, .. } => {
                                !mods.contains(*tag)
                            }
                            other => is_speculable(other, func),
                        };
                        let single_def = instr
                            .def()
                            .map(|d| def_count.get(d.0) == Some(1))
                            .unwrap_or(false);
                        // An operand is invariant if it is not defined in
                        // the loop, or is a single-def constant we can
                        // clone into the pad.
                        let mut operands_invariant = true;
                        const_operands.clear();
                        let dl = &defs_in_loop[li];
                        instr.visit_uses(|r| {
                            if dl.get(r.0).unwrap_or(0) > 0 {
                                if const_of.get(r.0).is_some() {
                                    const_operands.push(r);
                                } else {
                                    operands_invariant = false;
                                }
                            }
                        });
                        hoistable && single_def && operands_invariant && !instr.is_terminator()
                    };
                    if !hoist {
                        continue;
                    }
                    // Clone any in-loop constant operands into the pad and
                    // retarget the hoisted instruction to the clones. The
                    // clones enter the pending buffer *before* their
                    // consumer, preserving the one-at-a-time pad order.
                    for k in 0..const_operands.len() {
                        let r = const_operands[k];
                        let clone_reg = match pad_clones.get(r.0) {
                            Some(c) => Reg(c),
                            None => {
                                let nr = Reg(func.next_reg);
                                func.next_reg += 1;
                                to_pad.push(const_of.get(r.0).expect("const operand").mint(nr));
                                pad_clones.insert(r.0, nr.0);
                                // The clone lives in this loop's pad,
                                // which sits inside every enclosing
                                // loop: record the definition there so
                                // outer-loop hoisting cannot float a
                                // consumer above it.
                                let mut anc = forest.loops[li].parent;
                                while let Some(a) = anc {
                                    let dl = &mut defs_in_loop[a.index()];
                                    let c = dl.get(nr.0).unwrap_or(0);
                                    dl.insert(nr.0, c + 1);
                                    anc = forest.loops[a.index()].parent;
                                }
                                nr
                            }
                        };
                        func.blocks[b.index()].instrs[i].visit_uses_mut(|u| {
                            if *u == r {
                                *u = clone_reg;
                            }
                        });
                    }
                    // Mark: move the instruction to the pending buffer and
                    // leave a nop in its slot until the block compacts.
                    let instr =
                        std::mem::replace(&mut func.blocks[b.index()].instrs[i], Instr::Nop);
                    let d = instr.def().expect("hoistable instructions define");
                    // The register is no longer defined in this loop;
                    // enclosing loops still contain it (the pad is
                    // inside the parent loop), so only this level
                    // changes.
                    if let Some(c) = defs_in_loop[li].get(d.0) {
                        defs_in_loop[li].insert(d.0, c - 1);
                    }
                    to_pad.push(instr);
                    hoist_mask[i] = true;
                    moved += 1;
                    hoisted_any = true;
                }
                if !to_pad.is_empty() {
                    // Compact the swept block (drop the nop placeholders)
                    // and splice all pending hoists before the pad's
                    // terminator in one shift.
                    let instrs = &mut func.blocks[b.index()].instrs;
                    let mut w = 0;
                    for r in 0..len {
                        if !hoist_mask[r] {
                            instrs.swap(w, r);
                            w += 1;
                        }
                    }
                    instrs.truncate(w);
                    func.block_mut(pad)
                        .splice_before_terminator(to_pad.drain(..));
                }
            }
            if !hoisted_any {
                break;
            }
        }
    }
    // Hoisting moves instructions between existing blocks and mints pad
    // constants: live ranges change, edges do not.
    if moved > 0 {
        analyses.note_body_changed();
    }
    moved
}

/// Runs LICM over every function, sharing one scratch.
pub fn licm(module: &mut Module) -> usize {
    let mut moved = 0;
    let mut scratch = LicmScratch::default();
    for func in &mut module.funcs {
        let mut analyses = FunctionAnalyses::new();
        cfg::normalize_loops_in(func, &mut analyses);
        moved += licm_function_in(func, &mut analyses, &mut scratch);
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{Vm, VmOptions};

    fn check_behaviour(src: &str) -> (vm::Outcome, vm::Outcome, usize) {
        let mut m = minic::compile(src).unwrap();
        analysis::analyze(&mut m, analysis::AnalysisLevel::ModRef);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let n = licm(&mut m);
        ir::validate(&m).expect("valid after licm");
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(before.output, after.output);
        (before, after, n)
    }

    #[test]
    fn hoists_invariant_arithmetic() {
        let (before, after, n) = check_behaviour(
            r#"
int main() {
    int i;
    int n = 40;
    int s = 0;
    for (i = 0; i < 1000; i++) {
        s = s + (n * n + 2);
    }
    print_int(s);
    return 0;
}
"#,
        );
        assert!(n >= 1, "hoisted something");
        // n*n and +2 leave the loop: at least ~2000 ops saved.
        assert!(after.counts.total + 1500 < before.counts.total);
    }

    #[test]
    fn hoists_loads_of_unmodified_tags() {
        let (before, after, n) = check_behaviour(
            r#"
int k = 17;
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 500; i++) {
        s = s + k;
    }
    print_int(s);
    return 0;
}
"#,
        );
        assert!(n >= 1);
        // The 500 loads of k become 1.
        assert!(after.counts.loads <= before.counts.loads - 499);
    }

    #[test]
    fn does_not_hoist_loads_of_modified_tags() {
        let (before, after, _) = check_behaviour(
            r#"
int k = 0;
int main() {
    int i;
    for (i = 0; i < 100; i++) {
        k = k + i;
    }
    print_int(k);
    return 0;
}
"#,
        );
        // k is stored in the loop: its loads must stay put.
        assert_eq!(after.counts.loads, before.counts.loads);
    }

    #[test]
    fn does_not_speculate_division() {
        let (_, _, _) = check_behaviour(
            r#"
int main() {
    int i;
    int d = 0;
    int s = 0;
    for (i = 1; i < 10; i++) {
        if (i > 5) { d = i; }
        if (d != 0) { s = s + 100 / d; }
    }
    print_int(s);
    return 0;
}
"#,
        );
        // Reaching here means the guarded division was not hoisted into a
        // path where d == 0 (the VM would have trapped).
    }

    #[test]
    fn nested_loops_cascade_outward() {
        let (before, after, _) = check_behaviour(
            r#"
int main() {
    int i; int j;
    int a = 3;
    int s = 0;
    for (i = 0; i < 50; i++) {
        for (j = 0; j < 50; j++) {
            s = s + a * a * a;
        }
    }
    print_int(s);
    return 0;
}
"#,
        );
        // a*a*a leaves both loops: ~2 ops × 2500 iterations saved.
        assert!(after.counts.total + 4000 < before.counts.total);
    }
}

/// [`licm_function_in`] with per-pass delta recording (see
/// [`crate::with_delta`]).
pub fn licm_function_traced(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut LicmScratch,
    tr: &mut trace::FuncTrace,
) -> usize {
    crate::with_delta("licm", func, tr, |f| licm_function_in(f, analyses, scratch))
}
