//! Loop-invariant code motion.
//!
//! Hoists pure computations — and scalar loads of tags that nothing in the
//! loop can modify — into the loop's landing pad. On the non-SSA IL a
//! hoist is legal when the destination register has exactly one definition
//! in the whole function and every operand is defined outside the loop (or
//! by something already hoisted); faulting operations (`div`/`rem` by a
//! non-constant) are never speculated.

use cfg::{FunctionAnalyses, LoopForest};
use ir::{BinOp, Function, Instr, Module, Reg, TagSet};
use std::collections::HashMap;

/// Constants are never *moved* out of loops — on the paper's ILOC they
/// would be immediate operands with no live range at all, so stretching
/// them across a loop only manufactures register pressure. Instead, when a
/// hoisted consumer needs one, the constant is *cloned* into the landing
/// pad.
fn constant_def(instr: &Instr) -> bool {
    matches!(instr, Instr::IConst { .. } | Instr::FConst { .. })
}

/// True for instructions that may be executed speculatively.
fn is_speculable(instr: &Instr, func: &Function) -> bool {
    match instr {
        Instr::FuncAddr { .. }
        | Instr::Copy { .. }
        | Instr::Unary { .. }
        | Instr::Cmp { .. }
        | Instr::Lea { .. }
        | Instr::PtrAdd { .. } => true,
        Instr::Binary {
            op: BinOp::Div | BinOp::Rem,
            rhs,
            ..
        } => {
            // Only speculate division by a nonzero constant.
            func.blocks
                .iter()
                .flat_map(|b| &b.instrs)
                .any(|i| matches!(i, Instr::IConst { dst, value } if dst == rhs && *value != 0))
        }
        Instr::Binary { .. } => true,
        _ => false,
    }
}

/// Tags possibly modified anywhere in the loop `li` of `func`.
fn loop_mods(func: &Function, forest: &LoopForest, li: usize) -> TagSet {
    let mut mods = TagSet::empty();
    for &b in &forest.loops[li].blocks {
        for instr in &func.blocks[b.index()].instrs {
            if let Some(m) = instr.mod_tags() {
                mods.union_with(&m);
            }
        }
    }
    mods
}

/// Runs LICM over one (normalized) function. Returns instructions moved.
pub fn licm_function(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    let (_, forest, geom) = analyses.loop_view(func);
    if forest.is_empty() {
        return 0;
    }
    // Whole-function definition counts (single-def requirement).
    let mut def_count: HashMap<Reg, usize> = HashMap::new();
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                *def_count.entry(d).or_default() += 1;
            }
        }
    }
    // Per-loop in-loop definition counts, updated as hoists happen.
    let mut defs_in_loop: Vec<HashMap<Reg, usize>> = vec![HashMap::new(); forest.len()];
    for (li, l) in forest.loops.iter().enumerate() {
        for &b in &l.blocks {
            for instr in &func.blocks[b.index()].instrs {
                if let Some(d) = instr.def() {
                    *defs_in_loop[li].entry(d).or_default() += 1;
                }
            }
        }
    }
    // Single-definition constants, for pad cloning.
    let mut const_of: HashMap<Reg, Instr> = HashMap::new();
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                if constant_def(instr) && def_count.get(&d) == Some(&1) {
                    const_of.insert(d, instr.clone());
                }
            }
        }
    }
    let mut moved = 0;
    for li in forest.inner_to_outer() {
        let li = li.index();
        let pad = geom.landing_pads[li];
        let mods = loop_mods(func, forest, li);
        // Constants already cloned into this loop's pad: original -> clone.
        let mut pad_clones: HashMap<Reg, Reg> = HashMap::new();
        // Iterate to fixpoint so chains of invariant ops cascade out.
        loop {
            let mut hoisted_any = false;
            let blocks: Vec<_> = forest.loops[li]
                .blocks
                .iter()
                .copied()
                .filter(|b| forest.block_loop[b.index()] == Some(cfg::LoopId(li as u32)))
                .collect();
            for b in blocks {
                let mut i = 0;
                while i < func.blocks[b.index()].instrs.len() {
                    let instr = &func.blocks[b.index()].instrs[i];
                    let hoistable = match instr {
                        Instr::SLoad { tag, .. } | Instr::CLoad { tag, .. } => !mods.contains(*tag),
                        other => is_speculable(other, func),
                    };
                    let single_def = instr
                        .def()
                        .map(|d| def_count.get(&d) == Some(&1))
                        .unwrap_or(false);
                    // An operand is invariant if it is not defined in the
                    // loop, or is a single-def constant we can clone into
                    // the pad.
                    let mut operands_invariant = true;
                    let mut const_operands: Vec<Reg> = Vec::new();
                    instr.visit_uses(|r| {
                        if defs_in_loop[li].get(&r).copied().unwrap_or(0) > 0 {
                            if const_of.contains_key(&r) {
                                const_operands.push(r);
                            } else {
                                operands_invariant = false;
                            }
                        }
                    });
                    if hoistable && single_def && operands_invariant && !instr.is_terminator() {
                        let mut instr = func.blocks[b.index()].instrs.remove(i);
                        // Clone any in-loop constant operands into the pad
                        // and retarget the hoisted instruction to the
                        // clones.
                        for r in const_operands {
                            let clone_reg = match pad_clones.get(&r) {
                                Some(&c) => c,
                                None => {
                                    let nr = Reg(func.next_reg);
                                    func.next_reg += 1;
                                    let mut c = const_of[&r].clone();
                                    if let Some(d) = c.def_mut() {
                                        *d = nr;
                                    }
                                    func.blocks[pad.index()].insert_before_terminator(c);
                                    pad_clones.insert(r, nr);
                                    // The clone lives in this loop's pad,
                                    // which sits inside every enclosing
                                    // loop: record the definition there so
                                    // outer-loop hoisting cannot float a
                                    // consumer above it.
                                    let mut anc = forest.loops[li].parent;
                                    while let Some(a) = anc {
                                        *defs_in_loop[a.index()].entry(nr).or_default() += 1;
                                        anc = forest.loops[a.index()].parent;
                                    }
                                    nr
                                }
                            };
                            instr.visit_uses_mut(|u| {
                                if *u == r {
                                    *u = clone_reg;
                                }
                            });
                        }
                        let d = instr.def().expect("hoistable instructions define");
                        // The register is no longer defined in this loop;
                        // enclosing loops still contain it (the pad is
                        // inside the parent loop), so only this level
                        // changes.
                        if let Some(c) = defs_in_loop[li].get_mut(&d) {
                            *c -= 1;
                        }
                        func.block_mut(pad).insert_before_terminator(instr);
                        moved += 1;
                        hoisted_any = true;
                    } else {
                        i += 1;
                    }
                }
            }
            if !hoisted_any {
                break;
            }
        }
    }
    // Hoisting moves instructions between existing blocks and mints pad
    // constants: live ranges change, edges do not.
    if moved > 0 {
        analyses.note_body_changed();
    }
    moved
}

/// Runs LICM over every function.
pub fn licm(module: &mut Module) -> usize {
    let mut moved = 0;
    for func in &mut module.funcs {
        let mut analyses = FunctionAnalyses::new();
        cfg::normalize_loops_in(func, &mut analyses);
        moved += licm_function(func, &mut analyses);
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{Vm, VmOptions};

    fn check_behaviour(src: &str) -> (vm::Outcome, vm::Outcome, usize) {
        let mut m = minic::compile(src).unwrap();
        analysis::analyze(&mut m, analysis::AnalysisLevel::ModRef);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let n = licm(&mut m);
        ir::validate(&m).expect("valid after licm");
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(before.output, after.output);
        (before, after, n)
    }

    #[test]
    fn hoists_invariant_arithmetic() {
        let (before, after, n) = check_behaviour(
            r#"
int main() {
    int i;
    int n = 40;
    int s = 0;
    for (i = 0; i < 1000; i++) {
        s = s + (n * n + 2);
    }
    print_int(s);
    return 0;
}
"#,
        );
        assert!(n >= 1, "hoisted something");
        // n*n and +2 leave the loop: at least ~2000 ops saved.
        assert!(after.counts.total + 1500 < before.counts.total);
    }

    #[test]
    fn hoists_loads_of_unmodified_tags() {
        let (before, after, n) = check_behaviour(
            r#"
int k = 17;
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 500; i++) {
        s = s + k;
    }
    print_int(s);
    return 0;
}
"#,
        );
        assert!(n >= 1);
        // The 500 loads of k become 1.
        assert!(after.counts.loads <= before.counts.loads - 499);
    }

    #[test]
    fn does_not_hoist_loads_of_modified_tags() {
        let (before, after, _) = check_behaviour(
            r#"
int k = 0;
int main() {
    int i;
    for (i = 0; i < 100; i++) {
        k = k + i;
    }
    print_int(k);
    return 0;
}
"#,
        );
        // k is stored in the loop: its loads must stay put.
        assert_eq!(after.counts.loads, before.counts.loads);
    }

    #[test]
    fn does_not_speculate_division() {
        let (_, _, _) = check_behaviour(
            r#"
int main() {
    int i;
    int d = 0;
    int s = 0;
    for (i = 1; i < 10; i++) {
        if (i > 5) { d = i; }
        if (d != 0) { s = s + 100 / d; }
    }
    print_int(s);
    return 0;
}
"#,
        );
        // Reaching here means the guarded division was not hoisted into a
        // path where d == 0 (the VM would have trapped).
    }

    #[test]
    fn nested_loops_cascade_outward() {
        let (before, after, _) = check_behaviour(
            r#"
int main() {
    int i; int j;
    int a = 3;
    int s = 0;
    for (i = 0; i < 50; i++) {
        for (j = 0; j < 50; j++) {
            s = s + a * a * a;
        }
    }
    print_int(s);
    return 0;
}
"#,
        );
        // a*a*a leaves both loops: ~2 ops × 2500 iterations saved.
        assert!(after.counts.total + 4000 < before.counts.total);
    }
}

/// [`licm_function`] with per-pass delta recording (see [`crate::with_delta`]).
pub fn licm_function_traced(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    tr: &mut trace::FuncTrace,
) -> usize {
    crate::with_delta("licm", func, tr, |f| licm_function(f, analyses))
}
