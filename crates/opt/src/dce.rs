//! Dead-code elimination.
//!
//! Classic mark-and-sweep over virtual registers: roots are the operands
//! of side-effecting instructions (stores, calls, terminators); any pure
//! instruction whose result is transitively unused is deleted. Loads count
//! as pure — deleting a dead load is precisely the payoff of register
//! promotion's rewrites.

use cfg::FunctionAnalyses;
use ir::{Function, Module};

/// Runs DCE on one function. Returns the number of instructions removed.
pub fn dce_function(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    let nregs = func.next_reg as usize;
    let mut live = vec![false; nregs];
    // Seed with uses of side-effecting/control instructions.
    for block in &func.blocks {
        for instr in &block.instrs {
            if instr.has_side_effects() {
                instr.visit_uses(|r| live[r.index()] = true);
            }
        }
    }
    // Propagate: a live def makes its operands live. Iterate to fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for block in &func.blocks {
            for instr in &block.instrs {
                if let Some(d) = instr.def() {
                    if live[d.index()] && !instr.has_side_effects() {
                        instr.visit_uses(|r| {
                            if !live[r.index()] {
                                live[r.index()] = true;
                                changed = true;
                            }
                        });
                    }
                }
            }
        }
    }
    // Sweep.
    let mut removed = 0;
    for block in &mut func.blocks {
        let before = block.instrs.len();
        block.instrs.retain(|instr| {
            if instr.has_side_effects() {
                return true;
            }
            match instr.def() {
                Some(d) => live[d.index()],
                // Pure instructions without a def cannot exist, but keep
                // anything unknown.
                None => true,
            }
        });
        removed += before - block.instrs.len();
    }
    // Deleting pure instructions never touches terminators: body tier.
    if removed > 0 {
        analyses.note_body_changed();
    }
    removed
}

/// Runs DCE over every function.
pub fn dce(module: &mut Module) -> usize {
    let mut removed = 0;
    for func in &mut module.funcs {
        removed += dce_function(func, &mut FunctionAnalyses::new());
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{BinOp, FunctionBuilder, Intrinsic};

    #[test]
    fn removes_dead_chains() {
        let mut b = FunctionBuilder::new("f", 0);
        let a = b.iconst(1);
        let c = b.iconst(2);
        let _dead = b.binary(BinOp::Add, a, c); // unused
        let live = b.binary(BinOp::Mul, a, c);
        b.ret(Some(live));
        let mut f = b.finish();
        f.has_result = true;
        assert_eq!(dce_function(&mut f, &mut FunctionAnalyses::new()), 1);
        assert_eq!(f.instr_count(), 4);
    }

    #[test]
    fn keeps_side_effects() {
        let mut b = FunctionBuilder::new("f", 0);
        let a = b.iconst(7);
        b.call_intrinsic(Intrinsic::PrintInt, vec![a]);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(dce_function(&mut f, &mut FunctionAnalyses::new()), 0);
    }

    #[test]
    fn removes_dead_loads_and_their_addressing() {
        let src = r#"
tag "g:a" global size=8 addressed
global "g:a" zero
func @main(0) {
B0:
  r0 = lea "g:a"
  r1 = iconst 3
  r2 = ptradd r0, r1
  r3 = load [r2] {"g:a"}
  ret
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let removed = dce(&mut m);
        assert_eq!(removed, 4);
        assert_eq!(m.funcs[0].instr_count(), 1);
    }

    #[test]
    fn transitive_liveness_through_copies() {
        let mut b = FunctionBuilder::new("f", 0);
        let a = b.iconst(1);
        let c = b.copy(a);
        let d = b.copy(c);
        b.ret(Some(d));
        let mut f = b.finish();
        f.has_result = true;
        assert_eq!(dce_function(&mut f, &mut FunctionAnalyses::new()), 0);
    }
}

/// [`dce_function`] with per-pass delta recording (see [`crate::with_delta`]).
pub fn dce_function_traced(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    tr: &mut trace::FuncTrace,
) -> usize {
    crate::with_delta("dce", func, tr, |f| dce_function(f, analyses))
}
