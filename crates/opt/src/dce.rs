//! Dead-code elimination.
//!
//! Classic mark-and-sweep over virtual registers: roots are the operands
//! of side-effecting instructions (stores, calls, terminators); any pure
//! instruction whose result is transitively unused is deleted. Loads count
//! as pure — deleting a dead load is precisely the payoff of register
//! promotion's rewrites.
//!
//! Liveness propagates sparsely along a def→uses map: when a register
//! first becomes live, the operands of its pure definitions are marked and
//! queued, so each definition's use list is walked once instead of once
//! per dense fixpoint sweep. The old full-resweep propagation survives as
//! the benchmark's dense baseline.

use cfg::{DataflowStats, FunctionAnalyses};
use ir::{Function, Module, Reg};

/// Reusable mark-and-sweep buffers for [`dce_function_in`]: the live
/// bitmap plus the CSR def→uses map of the sparse marker. All vectors are
/// length-reset (`clear` + `resize`) per call, so their capacity survives
/// across functions and the steady state allocates nothing.
#[derive(Default)]
pub struct DceScratch {
    live: Vec<bool>,
    counts: Vec<usize>,
    offsets: Vec<usize>,
    fill: Vec<usize>,
    operands: Vec<Reg>,
    wl: Vec<Reg>,
}

/// Marks live registers by dense full-function resweeps (the measured
/// baseline).
fn mark_dense(func: &Function, live: &mut [bool], stats: &mut DataflowStats) {
    let mut changed = true;
    while changed {
        changed = false;
        for block in &func.blocks {
            stats.blocks_visited += 1;
            for instr in &block.instrs {
                if let Some(d) = instr.def() {
                    stats.transfer_evals += 1;
                    if live[d.index()] && !instr.has_side_effects() {
                        instr.visit_uses(|r| {
                            if !live[r.index()] {
                                live[r.index()] = true;
                                changed = true;
                            }
                        });
                    }
                }
            }
        }
    }
}

/// Marks live registers sparsely: a CSR def→uses map (for each register,
/// the operands of all its pure definitions) plus a stack of registers
/// whose liveness is new.
fn mark_sparse(func: &Function, scratch: &mut DceScratch, stats: &mut DataflowStats) {
    let nregs = func.next_reg as usize;
    // Count each pure definition's operands against its destination.
    let counts = &mut scratch.counts;
    counts.clear();
    counts.resize(nregs + 1, 0);
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                if !instr.has_side_effects() {
                    instr.visit_uses(|_| counts[d.index()] += 1);
                }
            }
        }
    }
    // Prefix-sum into CSR offsets.
    let offsets = &mut scratch.offsets;
    offsets.clear();
    offsets.resize(nregs + 1, 0);
    let mut total = 0;
    for r in 0..nregs {
        offsets[r] = total;
        total += counts[r];
    }
    offsets[nregs] = total;
    let fill = &mut scratch.fill;
    fill.clear();
    fill.extend_from_slice(offsets);
    let operands = &mut scratch.operands;
    operands.clear();
    operands.resize(total, Reg(0));
    for block in &func.blocks {
        for instr in &block.instrs {
            if let Some(d) = instr.def() {
                if !instr.has_side_effects() {
                    instr.visit_uses(|r| {
                        operands[fill[d.index()]] = r;
                        fill[d.index()] += 1;
                    });
                }
            }
        }
    }
    // Worklist of registers that just became live.
    let live = &mut scratch.live;
    let wl = &mut scratch.wl;
    wl.clear();
    wl.extend(
        live.iter()
            .enumerate()
            .filter(|(_, l)| **l)
            .map(|(r, _)| Reg(r as u32)),
    );
    stats.worklist_pushes += wl.len() as u64;
    while let Some(r) = wl.pop() {
        stats.transfer_evals += 1;
        for &u in &operands[offsets[r.index()]..offsets[r.index() + 1]] {
            if !live[u.index()] {
                live[u.index()] = true;
                stats.worklist_pushes += 1;
                wl.push(u);
            }
        }
    }
}

/// Runs DCE on one function. Returns the number of instructions removed.
///
/// Convenience wrapper over [`dce_function_in`] with a throwaway scratch.
pub fn dce_function(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    dce_function_in(func, analyses, &mut DceScratch::default())
}

/// [`dce_function`] against caller-owned scratch buffers: the
/// zero-allocation path the fused pipeline chain uses.
pub fn dce_function_in(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut DceScratch,
) -> usize {
    let nregs = func.next_reg as usize;
    scratch.live.clear();
    scratch.live.resize(nregs, false);
    // Seed with uses of side-effecting/control instructions.
    for block in &func.blocks {
        for instr in &block.instrs {
            if instr.has_side_effects() {
                instr.visit_uses(|r| scratch.live[r.index()] = true);
            }
        }
    }
    // Propagate: a live def makes its operands live.
    let mut stats = DataflowStats::default();
    if analyses.dense_dataflow() {
        mark_dense(func, &mut scratch.live, &mut stats);
    } else {
        mark_sparse(func, scratch, &mut stats);
    }
    analyses.dataflow.add(&stats);
    // Sweep.
    let live = &scratch.live;
    let mut removed = 0;
    for block in &mut func.blocks {
        let before = block.instrs.len();
        block.instrs.retain(|instr| {
            if instr.has_side_effects() {
                return true;
            }
            match instr.def() {
                Some(d) => live[d.index()],
                // Pure instructions without a def cannot exist, but keep
                // anything unknown.
                None => true,
            }
        });
        removed += before - block.instrs.len();
    }
    // Deleting pure instructions never touches terminators: body tier.
    if removed > 0 {
        analyses.note_body_changed();
    }
    removed
}

/// Runs DCE over every function, sharing one scratch.
pub fn dce(module: &mut Module) -> usize {
    let mut removed = 0;
    let mut scratch = DceScratch::default();
    for func in &mut module.funcs {
        removed += dce_function_in(func, &mut FunctionAnalyses::new(), &mut scratch);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{BinOp, FunctionBuilder, Intrinsic};

    #[test]
    fn removes_dead_chains() {
        let mut b = FunctionBuilder::new("f", 0);
        let a = b.iconst(1);
        let c = b.iconst(2);
        let _dead = b.binary(BinOp::Add, a, c); // unused
        let live = b.binary(BinOp::Mul, a, c);
        b.ret(Some(live));
        let mut f = b.finish();
        f.has_result = true;
        assert_eq!(dce_function(&mut f, &mut FunctionAnalyses::new()), 1);
        assert_eq!(f.instr_count(), 4);
    }

    #[test]
    fn keeps_side_effects() {
        let mut b = FunctionBuilder::new("f", 0);
        let a = b.iconst(7);
        b.call_intrinsic(Intrinsic::PrintInt, vec![a]);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(dce_function(&mut f, &mut FunctionAnalyses::new()), 0);
    }

    #[test]
    fn removes_dead_loads_and_their_addressing() {
        let src = r#"
tag "g:a" global size=8 addressed
global "g:a" zero
func @main(0) {
B0:
  r0 = lea "g:a"
  r1 = iconst 3
  r2 = ptradd r0, r1
  r3 = load [r2] {"g:a"}
  ret
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let removed = dce(&mut m);
        assert_eq!(removed, 4);
        assert_eq!(m.funcs[0].instr_count(), 1);
    }

    #[test]
    fn transitive_liveness_through_copies() {
        let mut b = FunctionBuilder::new("f", 0);
        let a = b.iconst(1);
        let c = b.copy(a);
        let d = b.copy(c);
        b.ret(Some(d));
        let mut f = b.finish();
        f.has_result = true;
        assert_eq!(dce_function(&mut f, &mut FunctionAnalyses::new()), 0);
    }
}

/// [`dce_function_in`] with per-pass delta recording (see
/// [`crate::with_delta`]).
pub fn dce_function_traced(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut DceScratch,
    tr: &mut trace::FuncTrace,
) -> usize {
    crate::with_delta("dce", func, tr, |f| dce_function_in(f, analyses, scratch))
}
