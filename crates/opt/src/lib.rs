//! The supporting optimizer of the register-promotion compiler.
//!
//! The paper optimizes every program version with "value numbering,
//! partial redundancy elimination, constant propagation, loop invariant
//! code motion, dead code elimination, register allocation, and a basic
//! block cleaning pass". This crate provides those scalar passes (register
//! allocation lives in its own crate):
//!
//! * [`lvn`] — local value numbering with constant folding and tag-aware
//!   scalar-memory forwarding;
//! * [`loadelim`] — the tag-aware redundant-load core of PRE;
//! * [`constprop`] — global constant propagation with branch folding;
//! * [`licm`] — loop-invariant code motion (including loads of tags the
//!   loop cannot modify);
//! * [`dce`] — dead-code elimination;
//! * [`clean`] — nop removal, jump threading, empty-block removal;
//! * [`strengthen`] — Table-1 opcode strengthening after analysis.
//!
//! ```
//! let mut module = minic::compile(r#"
//!     int main() {
//!         int x = 6 * 7;
//!         return x;
//!     }
//! "#)?;
//! opt::lvn(&mut module);
//! opt::dce(&mut module);
//! opt::clean(&mut module);
//! ir::validate(&module)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod clean;
mod constprop;
mod dce;
mod licm;
mod loadelim;
mod lvn;
mod strengthen;

pub use clean::{clean, clean_function};
pub use constprop::{constprop, constprop_function};
pub use dce::{dce, dce_function};
pub use licm::{licm, licm_function};
pub use loadelim::{loadelim, loadelim_function};
pub use lvn::{lvn, lvn_function};
pub use strengthen::{strengthen, strengthen_function};
