//! The supporting optimizer of the register-promotion compiler.
//!
//! The paper optimizes every program version with "value numbering,
//! partial redundancy elimination, constant propagation, loop invariant
//! code motion, dead code elimination, register allocation, and a basic
//! block cleaning pass". This crate provides those scalar passes (register
//! allocation lives in its own crate):
//!
//! * [`lvn`] — local value numbering with constant folding and tag-aware
//!   scalar-memory forwarding;
//! * [`loadelim`] — the tag-aware redundant-load core of PRE;
//! * [`constprop`] — global constant propagation with branch folding;
//! * [`licm`] — loop-invariant code motion (including loads of tags the
//!   loop cannot modify);
//! * [`dce`] — dead-code elimination;
//! * [`clean`] — nop removal, jump threading, empty-block removal;
//! * [`strengthen`] — Table-1 opcode strengthening after analysis.
//!
//! ```
//! let mut module = minic::compile(r#"
//!     int main() {
//!         int x = 6 * 7;
//!         return x;
//!     }
//! "#)?;
//! opt::lvn(&mut module);
//! opt::dce(&mut module);
//! opt::clean(&mut module);
//! ir::validate(&module)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod clean;
mod constprop;
mod dce;
mod licm;
mod loadelim;
mod lvn;
mod strengthen;

pub use clean::{clean, clean_function, clean_function_in, clean_function_traced, CleanScratch};
pub use constprop::{
    analyze_constants, constprop, constprop_function, constprop_function_in,
    constprop_function_traced, ConstLattice, ConstScratch, Lat,
};
pub use dce::{dce, dce_function, dce_function_in, dce_function_traced, DceScratch};
pub use licm::{licm, licm_function, licm_function_in, licm_function_traced, LicmScratch};
pub use loadelim::{
    loadelim, loadelim_function, loadelim_function_in, loadelim_function_traced, LoadelimScratch,
};
pub use lvn::{lvn, lvn_function, lvn_function_in, lvn_function_traced, LvnScratch};
pub use strengthen::{strengthen, strengthen_function, strengthen_function_traced};

/// One scratch arena covering every pass in this crate: what a pipeline
/// worker owns (one per thread) and threads through the fused pass chain,
/// so the steady-state hot loop runs without allocating. Each field is the
/// corresponding pass's reusable state; all of them reset cheaply (epoch
/// bumps and length-resets) at the start of each pass invocation.
#[derive(Default)]
pub struct OptScratch {
    /// [`lvn_function_in`] tables.
    pub lvn: LvnScratch,
    /// [`constprop_function_in`] lattice and worklist.
    pub constprop: ConstScratch,
    /// [`loadelim_function_in`] fact maps and worklist.
    pub loadelim: LoadelimScratch,
    /// [`licm_function_in`] hoisting tables.
    pub licm: LicmScratch,
    /// [`dce_function_in`] mark buffers.
    pub dce: DceScratch,
    /// [`clean_function_in`] forwarding table.
    pub clean: CleanScratch,
}

use ir::{BodyStats, Function};
use trace::FuncTrace;

/// Runs one pass body over `func` and, when tracing is enabled, records a
/// before-minus-after [`trace::PassEvent::Delta`] under `pass`.
///
/// When tracing is off this is a direct call — the stats scans are never
/// performed, which is what keeps the disabled path free. When it is on,
/// consecutive delta stages share scans through the [`FuncTrace`] stats
/// cache: this pass's after-scan becomes the next pass's before-count,
/// and a pass that reports zero rewrites costs no scan at all.
///
/// Contract: `pass_fn` must return 0 **only** when it left the function
/// body untouched — true of every counting pass in this crate — because
/// a zero return keeps the cached stats live without rescanning.
pub fn with_delta(
    pass: &'static str,
    func: &mut Function,
    tr: &mut FuncTrace,
    pass_fn: impl FnOnce(&mut Function) -> usize,
) -> usize {
    if !tr.enabled() {
        return pass_fn(func);
    }
    let before = match tr.cached_stats() {
        Some((instrs, loads, stores)) => BodyStats {
            instrs,
            loads,
            stores,
        },
        None => func.body_stats(),
    };
    let n = pass_fn(func);
    let after = if n == 0 { before } else { func.body_stats() };
    let (instrs, loads, stores) = before.delta(&after);
    tr.delta(pass, instrs, loads, stores);
    tr.set_stats((after.instrs, after.loads, after.stores));
    n
}
