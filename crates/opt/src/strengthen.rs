//! Memory-opcode strengthening.
//!
//! After interprocedural analysis shrinks tag sets, a pointer-based
//! `load`/`store` whose tag set is a singleton naming a unique cell (see
//! [`analysis::singleton_is_unique_cell`]) carries exactly the information
//! of the scalar opcodes — so it is rewritten up the paper's Table-1
//! hierarchy to `sload`/`sstore`. This is the mechanism by which "shrinking
//! the tag sets ... produces better results from several of the
//! optimizations": value numbering and load elimination then treat the
//! access like any other scalar reference.

use analysis::{singleton_is_unique_cell, tarjan_sccs, CallGraph};
use cfg::FunctionAnalyses;
use ir::{FuncId, Function, Instr, Module, TagTable};

/// Strengthens qualifying pointer ops to scalar ops module-wide. Returns
/// the number of instructions rewritten.
pub fn strengthen(module: &mut Module) -> usize {
    let graph = CallGraph::build(module, None);
    let sccs = tarjan_sccs(&graph);
    let mut rewrites = 0;
    for fi in 0..module.funcs.len() {
        let f = FuncId(fi as u32);
        let recursive = graph.is_recursive(f, &sccs);
        rewrites += strengthen_function(
            &module.tags,
            &mut module.funcs[fi],
            f,
            recursive,
            &mut FunctionAnalyses::new(),
        );
    }
    rewrites
}

/// Per-function strengthening: reads only the tag table, so the parallel
/// pipeline can fan it out once the driver has computed the recursive-set.
pub fn strengthen_function(
    tags_table: &TagTable,
    func: &mut Function,
    func_id: FuncId,
    func_is_recursive: bool,
    analyses: &mut FunctionAnalyses,
) -> usize {
    let mut rewrites = 0;
    for block in &mut func.blocks {
        for instr in &mut block.instrs {
            let new = match &*instr {
                Instr::Load { dst, tags, .. } => match tags.as_singleton() {
                    Some(t)
                        if singleton_is_unique_cell(tags_table, func_id, func_is_recursive, t) =>
                    {
                        Some(Instr::SLoad { dst: *dst, tag: t })
                    }
                    _ => None,
                },
                Instr::Store { src, tags, .. } => match tags.as_singleton() {
                    Some(t)
                        if singleton_is_unique_cell(tags_table, func_id, func_is_recursive, t) =>
                    {
                        Some(Instr::SStore { src: *src, tag: t })
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some(n) = new {
                *instr = n;
                rewrites += 1;
            }
        }
    }
    // Opcode swaps on straight-line memory ops: body tier.
    if rewrites > 0 {
        analyses.note_body_changed();
    }
    rewrites
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{Vm, VmOptions};

    #[test]
    fn strengthens_unique_singleton_ops() {
        let src = r#"
int g;
int main() {
    int *p = &g;
    *p = 5;
    int v = *p;
    print_int(v);
    return 0;
}
"#;
        let mut m = minic::compile(src).unwrap();
        analysis::analyze(&mut m, analysis::AnalysisLevel::PointsTo);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let n = strengthen(&mut m);
        ir::validate(&m).unwrap();
        assert_eq!(n, 2);
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(before.output, after.output);
        assert_eq!(after.counts.scalar_loads, before.counts.scalar_loads + 1);
        assert_eq!(after.counts.ptr_loads, before.counts.ptr_loads - 1);
    }

    #[test]
    fn leaves_arrays_and_multi_target_ops() {
        let src = r#"
int a[4];
int g;
int h;
int pick;
int main() {
    int *q = &g;
    if (pick) { q = &h; }
    a[1] = 2;
    *q = 3;
    return a[1] + g;
}
"#;
        let mut m = minic::compile(src).unwrap();
        analysis::analyze(&mut m, analysis::AnalysisLevel::PointsTo);
        let n = strengthen(&mut m);
        // a[1] is a singleton but an array tag; *q has two targets.
        assert_eq!(n, 0);
    }

    #[test]
    fn recursion_blocks_local_strengthening() {
        let src = r#"
int walk(int n) {
    int slot = n;
    int *p = &slot;
    if (n == 0) return *p;
    return walk(n - 1) + *p;
}
int main() { return walk(3); }
"#;
        let mut m = minic::compile(src).unwrap();
        analysis::analyze(&mut m, analysis::AnalysisLevel::PointsTo);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let n = strengthen(&mut m);
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(n, 0, "walk is recursive; slot has many live cells");
        assert_eq!(before.exit_code, after.exit_code);
    }
}

/// [`strengthen_function`] with per-pass delta recording (see
/// [`crate::with_delta`]).
pub fn strengthen_function_traced(
    tags_table: &TagTable,
    func: &mut Function,
    func_id: FuncId,
    func_is_recursive: bool,
    analyses: &mut FunctionAnalyses,
    tr: &mut trace::FuncTrace,
) -> usize {
    crate::with_delta("strengthen", func, tr, |f| {
        strengthen_function(tags_table, f, func_id, func_is_recursive, analyses)
    })
}
