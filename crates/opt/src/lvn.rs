//! Local value numbering.
//!
//! Per-block value numbering with constant folding, commutative
//! canonicalization, a few algebraic identities, copy propagation, and
//! tag-aware forwarding of scalar memory values (a `sload` after an
//! `sstore`/`sload` of the same tag with no intervening kill reuses the
//! register instead of touching memory).

use cfg::FunctionAnalyses;
use ir::{BinOp, CmpOp, DenseMap, Function, Instr, Module, Reg, TagId, TagSet, UnaryOp};
use std::collections::HashMap;

type Vn = u32;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    IntConst(i64),
    FloatConst(u64),
    FuncAddr(u32),
    Unary(UnaryOp, Vn),
    Binary(BinOp, Vn, Vn),
    Cmp(CmpOp, Vn, Vn),
    Lea(TagId),
    PtrAdd(Vn, Vn),
}

/// Reusable value-numbering tables: the per-block state of [`lvn_function`],
/// hoisted into a scratch arena so the steady state allocates nothing.
///
/// The register- and value-number-keyed tables are epoch-cleared
/// [`DenseMap`]s; the expression and scalar-memory tables stay hashed
/// (their keys — structured expressions and tag ids, which may be huge
/// provisional-spill values — are not dense) but keep their capacity
/// across blocks and functions via `clear`.
#[derive(Default)]
pub struct LvnScratch {
    next_vn: Vn,
    reg_vn: DenseMap<Vn>,
    expr_vn: HashMap<ExprKey, Vn>,
    vn_const: DenseMap<i64>,
    vn_home: DenseMap<u32>,
    /// Scalar memory state: tag -> value number currently in the cell.
    mem: HashMap<TagId, Vn>,
}

impl LvnScratch {
    /// Forgets all block-local state; `nregs` sizes the register table.
    fn begin_block(&mut self, nregs: usize) {
        self.next_vn = 0;
        self.reg_vn.reset(nregs);
        self.vn_const.reset(0);
        self.vn_home.reset(0);
        self.expr_vn.clear();
        self.mem.clear();
    }

    fn fresh(&mut self) -> Vn {
        self.next_vn += 1;
        self.next_vn
    }

    fn vn_of(&mut self, r: Reg) -> Vn {
        if let Some(v) = self.reg_vn.get(r.0) {
            v
        } else {
            let v = self.fresh();
            self.reg_vn.insert(r.0, v);
            self.vn_home.insert(v, r.0);
            v
        }
    }

    /// The register currently holding `vn`, if any (validated against
    /// redefinition).
    fn home(&self, vn: Vn) -> Option<Reg> {
        let r = self.vn_home.get(vn)?;
        (self.reg_vn.get(r) == Some(vn)).then_some(Reg(r))
    }

    fn set_reg(&mut self, r: Reg, vn: Vn) {
        self.reg_vn.insert(r.0, vn);
        // Prefer the earliest live home; adopt r if the old home died.
        match self.home(vn) {
            Some(_) => {}
            None => {
                self.vn_home.insert(vn, r.0);
            }
        }
    }

    fn kill_mem(&mut self, tags: &TagSet) {
        match tags {
            TagSet::All => self.mem.clear(),
            TagSet::Set(s) => {
                for t in s.iter() {
                    self.mem.remove(&t);
                }
            }
        }
    }
}

/// Rewrites operand `r` to the canonical home of its value number.
fn canon(t: &mut LvnScratch, r: Reg) -> Reg {
    let vn = t.vn_of(r);
    t.home(vn).unwrap_or(r)
}

fn fold_int_binary(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
    })
}

fn fold_cmp(op: CmpOp, a: i64, b: i64) -> i64 {
    let r = match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    };
    r as i64
}

/// Runs local value numbering over one function. Returns the number of
/// instructions rewritten.
///
/// Convenience wrapper over [`lvn_function_in`] with a throwaway scratch.
pub fn lvn_function(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    lvn_function_in(func, analyses, &mut LvnScratch::default())
}

/// [`lvn_function`] against caller-owned scratch tables: the zero-allocation
/// path the fused pipeline chain uses.
pub fn lvn_function_in(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut LvnScratch,
) -> usize {
    let mut changes = 0;
    let mut branch_folds = 0;
    let nregs = func.next_reg as usize;
    for block in &mut func.blocks {
        scratch.begin_block(nregs);
        for instr in &mut block.instrs {
            let was_branch = matches!(instr, Instr::Branch { .. });
            let c = lvn_instr(scratch, instr);
            changes += c;
            if c > 0 && was_branch && matches!(instr, Instr::Jump { .. }) {
                branch_folds += 1;
            }
        }
    }
    // A folded branch removes an edge; everything else only rewrites
    // operands within blocks.
    if branch_folds > 0 {
        analyses.note_shape_changed();
    } else if changes > 0 {
        analyses.note_body_changed();
    }
    changes
}

/// Processes one instruction; returns 1 if it was rewritten.
fn lvn_instr(t: &mut LvnScratch, instr: &mut Instr) -> usize {
    let mut changed = 0;
    // First canonicalize operands (copy propagation). Tracking the change
    // inside the visit avoids the old whole-instruction clone-and-compare
    // probe: only use operands can change here, so a reg-level comparison
    // is exact.
    match instr {
        // φ operands must not be rewritten with block-local information.
        Instr::Phi { .. } => {}
        _ => instr.visit_uses_mut(|r| {
            let c = canon(t, *r);
            if c != *r {
                *r = c;
                changed = 1;
            }
        }),
    }
    match instr {
        Instr::IConst { dst, value } => {
            let key = ExprKey::IntConst(*value);
            let vn = match t.expr_vn.get(&key) {
                Some(&vn) => vn,
                None => {
                    let vn = t.fresh();
                    t.expr_vn.insert(key, vn);
                    t.vn_const.insert(vn, *value);
                    vn
                }
            };
            t.set_reg(*dst, vn);
        }
        Instr::FConst { dst, value } => {
            let key = ExprKey::FloatConst(value.to_bits());
            let vn = *t.expr_vn.entry(key).or_insert_with(|| {
                t.next_vn += 1;
                t.next_vn
            });
            t.set_reg(*dst, vn);
        }
        Instr::FuncAddr { dst, func } => {
            let key = ExprKey::FuncAddr(func.0);
            let vn = *t.expr_vn.entry(key).or_insert_with(|| {
                t.next_vn += 1;
                t.next_vn
            });
            t.set_reg(*dst, vn);
        }
        Instr::Copy { dst, src } => {
            let vn = t.vn_of(*src);
            t.set_reg(*dst, vn);
        }
        Instr::Unary { op, dst, src } => {
            let vs = t.vn_of(*src);
            // Fold integer negation/not of constants.
            if let Some(c) = t.vn_const.get(vs) {
                let folded = match op {
                    UnaryOp::Neg => Some(c.wrapping_neg()),
                    UnaryOp::Not => Some((c == 0) as i64),
                    _ => None,
                };
                if let Some(v) = folded {
                    let d = *dst;
                    *instr = Instr::IConst { dst: d, value: v };
                    return 1 + lvn_instr(t, instr);
                }
            }
            let key = ExprKey::Unary(*op, vs);
            match t.expr_vn.get(&key) {
                Some(&vn) => {
                    if let Some(home) = t.home(vn) {
                        let d = *dst;
                        *instr = Instr::Copy { dst: d, src: home };
                        changed = 1;
                        t.set_reg(d, vn);
                    } else {
                        t.set_reg(*dst, vn);
                    }
                }
                None => {
                    let vn = t.fresh();
                    t.expr_vn.insert(key, vn);
                    t.set_reg(*dst, vn);
                }
            }
        }
        Instr::Binary { op, dst, lhs, rhs } => {
            let mut vl = t.vn_of(*lhs);
            let mut vr = t.vn_of(*rhs);
            let cl = t.vn_const.get(vl);
            let cr = t.vn_const.get(vr);
            // Constant folding.
            if let (Some(a), Some(b)) = (cl, cr) {
                if let Some(v) = fold_int_binary(*op, a, b) {
                    let d = *dst;
                    *instr = Instr::IConst { dst: d, value: v };
                    return 1 + lvn_instr(t, instr);
                }
            }
            // Algebraic identities (integer-only where value-safe).
            let identity: Option<Reg> = match (*op, cl, cr) {
                (BinOp::Add, Some(0), _) => t.home(vr),
                (BinOp::Add, _, Some(0)) | (BinOp::Sub, _, Some(0)) => t.home(vl),
                (BinOp::Mul, Some(1), _) => t.home(vr),
                (BinOp::Mul, _, Some(1)) | (BinOp::Div, _, Some(1)) => t.home(vl),
                _ => None,
            };
            if let Some(src) = identity {
                let d = *dst;
                *instr = Instr::Copy { dst: d, src };
                return 1 + lvn_instr(t, instr);
            }
            if (*op == BinOp::Sub || *op == BinOp::Xor) && vl == vr {
                let d = *dst;
                *instr = Instr::IConst { dst: d, value: 0 };
                return 1 + lvn_instr(t, instr);
            }
            if op.is_commutative() && vl > vr {
                std::mem::swap(&mut vl, &mut vr);
            }
            let key = ExprKey::Binary(*op, vl, vr);
            match t.expr_vn.get(&key) {
                Some(&vn) => {
                    if let Some(home) = t.home(vn) {
                        let d = *dst;
                        *instr = Instr::Copy { dst: d, src: home };
                        changed = 1;
                        t.set_reg(d, vn);
                    } else {
                        t.set_reg(*dst, vn);
                    }
                }
                None => {
                    let vn = t.fresh();
                    t.expr_vn.insert(key, vn);
                    t.set_reg(*dst, vn);
                }
            }
        }
        Instr::Cmp { op, dst, lhs, rhs } => {
            let vl = t.vn_of(*lhs);
            let vr = t.vn_of(*rhs);
            if let (Some(a), Some(b)) = (t.vn_const.get(vl), t.vn_const.get(vr)) {
                let d = *dst;
                let v = fold_cmp(*op, a, b);
                *instr = Instr::IConst { dst: d, value: v };
                return 1 + lvn_instr(t, instr);
            }
            let key = ExprKey::Cmp(*op, vl, vr);
            match t.expr_vn.get(&key) {
                Some(&vn) => {
                    if let Some(home) = t.home(vn) {
                        let d = *dst;
                        *instr = Instr::Copy { dst: d, src: home };
                        changed = 1;
                        t.set_reg(d, vn);
                    } else {
                        t.set_reg(*dst, vn);
                    }
                }
                None => {
                    let vn = t.fresh();
                    t.expr_vn.insert(key, vn);
                    t.set_reg(*dst, vn);
                }
            }
        }
        Instr::Lea { dst, tag } => {
            let key = ExprKey::Lea(*tag);
            let vn = *t.expr_vn.entry(key).or_insert_with(|| {
                t.next_vn += 1;
                t.next_vn
            });
            // No copy rewrite for lea (it is cheap), but CSE the number so
            // dependent ptradds unify.
            t.set_reg(*dst, vn);
        }
        Instr::PtrAdd { dst, base, offset } => {
            let vb = t.vn_of(*base);
            let vo = t.vn_of(*offset);
            let key = ExprKey::PtrAdd(vb, vo);
            match t.expr_vn.get(&key) {
                Some(&vn) => {
                    if let Some(home) = t.home(vn) {
                        let d = *dst;
                        *instr = Instr::Copy { dst: d, src: home };
                        changed = 1;
                        t.set_reg(d, vn);
                    } else {
                        t.set_reg(*dst, vn);
                    }
                }
                None => {
                    let vn = t.fresh();
                    t.expr_vn.insert(key, vn);
                    t.set_reg(*dst, vn);
                }
            }
        }
        // Scalar memory forwarding.
        Instr::SLoad { dst, tag } | Instr::CLoad { dst, tag } => {
            if let Some(&vn) = t.mem.get(tag) {
                if let Some(home) = t.home(vn) {
                    let d = *dst;
                    *instr = Instr::Copy { dst: d, src: home };
                    t.set_reg(d, vn);
                    return 1;
                }
            }
            let vn = t.fresh();
            t.mem.insert(*tag, vn);
            t.set_reg(*dst, vn);
        }
        Instr::SStore { src, tag } => {
            let vn = t.vn_of(*src);
            t.mem.insert(*tag, vn);
        }
        Instr::Load { dst, tags, .. } => {
            // Pointer loads invalidate nothing but their value is opaque.
            let _ = tags;
            let vn = t.fresh();
            t.set_reg(*dst, vn);
        }
        Instr::Store { tags, .. } => {
            let tags = tags.clone();
            t.kill_mem(&tags);
        }
        Instr::Alloc { dst, .. } => {
            let vn = t.fresh();
            t.set_reg(*dst, vn);
        }
        Instr::Call { dst, mods, .. } => {
            let mods = mods.clone();
            t.kill_mem(&mods);
            if let Some(d) = *dst {
                let vn = t.fresh();
                t.set_reg(d, vn);
            }
        }
        Instr::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            // Fold constant branches so `clean` can delete dead arms.
            let vn = t.vn_of(*cond);
            if let Some(c) = t.vn_const.get(vn) {
                let target = if c != 0 { *then_bb } else { *else_bb };
                *instr = Instr::Jump { target };
                return 1;
            }
        }
        Instr::Phi { dst, .. } => {
            let vn = t.fresh();
            t.set_reg(*dst, vn);
        }
        Instr::Jump { .. } | Instr::Ret { .. } | Instr::Nop => {}
    }
    changed
}

/// Runs local value numbering over every function, sharing one scratch.
pub fn lvn(module: &mut Module) -> usize {
    let mut changes = 0;
    let mut scratch = LvnScratch::default();
    for func in &mut module.funcs {
        changes += lvn_function_in(func, &mut FunctionAnalyses::new(), &mut scratch);
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> (ir::Module, usize) {
        let mut m = ir::parse_module(src).unwrap();
        let n = lvn(&mut m);
        ir::validate(&m).expect("valid after lvn");
        (m, n)
    }

    #[test]
    fn folds_constants_and_branches() {
        let (m, n) = run_src(
            r#"
func @main(0) {
B0:
  r0 = iconst 6
  r1 = iconst 7
  r2 = mul r0, r1
  r3 = cmpgt r2, r0
  branch r3, B1, B2
B1:
  ret
B2:
  ret
}
"#,
        );
        assert!(n >= 3);
        let f = &m.funcs[0];
        assert!(matches!(
            f.blocks[0].instrs[2],
            Instr::IConst { value: 42, .. }
        ));
        assert!(matches!(f.blocks[0].instrs[4], Instr::Jump { .. }));
    }

    #[test]
    fn cse_of_repeated_expressions() {
        let (m, _) = run_src(
            r#"
func @main(2) result {
B0:
  r2 = add r0, r1
  r3 = add r1, r0
  r4 = add r2, r3
  ret r4
}
"#,
        );
        // Commutativity: r3 = copy r2.
        assert!(matches!(m.funcs[0].blocks[0].instrs[1], Instr::Copy { .. }));
    }

    #[test]
    fn forwards_stored_scalar_values() {
        let (m, _) = run_src(
            r#"
tag "g" global size=1
global "g" zero
func @main(1) result {
B0:
  sstore r0, "g"
  r1 = sload "g"
  ret r1
}
"#,
        );
        assert!(matches!(m.funcs[0].blocks[0].instrs[1], Instr::Copy { .. }));
    }

    #[test]
    fn redundant_loads_collapse_until_killed() {
        let (m, _) = run_src(
            r#"
tag "g" global size=1 addressed
global "g" zero
func @main(1) result {
B0:
  r1 = sload "g"
  r2 = sload "g"
  r3 = lea "g"
  store r0, [r3] {"g"}
  r4 = sload "g"
  ret r4
}
"#,
        );
        let instrs = &m.funcs[0].blocks[0].instrs;
        assert!(
            matches!(instrs[1], Instr::Copy { .. }),
            "second load forwarded"
        );
        assert!(
            matches!(instrs[4], Instr::SLoad { .. }),
            "load after kill reloads"
        );
    }

    #[test]
    fn call_kills_modified_tags_only() {
        let (m, _) = run_src(
            r#"
tag "g" global size=1
tag "h" global size=1
global "g" zero
global "h" zero
func @touch(0) {
B0:
  ret
}
func @main(0) result {
B0:
  r0 = sload "g"
  r1 = sload "h"
  call @touch() mods{"h"} refs{}
  r2 = sload "g"
  r3 = sload "h"
  r4 = add r2, r3
  ret r4
}
"#,
        );
        let instrs = &m.funcs[1].blocks[0].instrs;
        assert!(
            matches!(instrs[3], Instr::Copy { .. }),
            "g survives the call"
        );
        assert!(matches!(instrs[4], Instr::SLoad { .. }), "h was killed");
    }

    #[test]
    fn algebraic_identities() {
        let (m, _) = run_src(
            r#"
func @main(1) result {
B0:
  r1 = iconst 0
  r2 = add r0, r1
  r3 = sub r0, r0
  ret r2
}
"#,
        );
        let instrs = &m.funcs[0].blocks[0].instrs;
        assert!(matches!(instrs[1], Instr::Copy { .. }));
        assert!(matches!(instrs[2], Instr::IConst { value: 0, .. }));
    }

    #[test]
    fn behaviour_preserved_end_to_end() {
        let src = r#"
int g;
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 10; i++) {
        s = s + i * 2 + i * 2;
        g = s;
    }
    print_int(g);
    return 0;
}
"#;
        let m0 = minic::compile(src).unwrap();
        let before = vm::Vm::run_main(&m0, vm::VmOptions::default()).unwrap();
        let mut m = m0.clone();
        lvn(&mut m);
        ir::validate(&m).unwrap();
        let after = vm::Vm::run_main(&m, vm::VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert!(after.counts.total <= before.counts.total);
    }
}

/// [`lvn_function_in`] with per-pass delta recording (see
/// [`crate::with_delta`]).
pub fn lvn_function_traced(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut LvnScratch,
    tr: &mut trace::FuncTrace,
) -> usize {
    crate::with_delta("lvn", func, tr, |f| lvn_function_in(f, analyses, scratch))
}
