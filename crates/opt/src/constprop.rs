//! Global constant propagation.
//!
//! A forward data-flow analysis over virtual registers with the classic
//! three-level lattice (⊤ / constant / ⊥). Definitions whose operands are
//! all constants are folded to `iconst`/`fconst`, and branches on constant
//! conditions become jumps (which `clean` then exploits to delete dead
//! arms).

use cfg::FunctionAnalyses;
use ir::{BinOp, CmpOp, Function, Instr, Module, Reg, UnaryOp};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Lat {
    Top,
    Int(i64),
    Float(f64),
    Bottom,
}

impl Lat {
    fn meet(self, other: Lat) -> Lat {
        match (self, other) {
            (Lat::Top, x) | (x, Lat::Top) => x,
            (a, b) if a == b => a,
            _ => Lat::Bottom,
        }
    }
}

fn transfer(instr: &Instr, state: &mut [Lat]) {
    let get = |state: &[Lat], r: Reg| state[r.index()];
    let val = match instr {
        Instr::IConst { value, .. } => Lat::Int(*value),
        Instr::FConst { value, .. } => Lat::Float(*value),
        Instr::Copy { src, .. } => get(state, *src),
        Instr::Unary { op, src, .. } => match (op, get(state, *src)) {
            (UnaryOp::Neg, Lat::Int(a)) => Lat::Int(a.wrapping_neg()),
            (UnaryOp::Neg, Lat::Float(a)) => Lat::Float(-a),
            (UnaryOp::Not, Lat::Int(a)) => Lat::Int((a == 0) as i64),
            (UnaryOp::IntToFloat, Lat::Int(a)) => Lat::Float(a as f64),
            (UnaryOp::FloatToInt, Lat::Float(a)) => Lat::Int(a as i64),
            (_, Lat::Top) => Lat::Top,
            _ => Lat::Bottom,
        },
        Instr::Binary { op, lhs, rhs, .. } => match (get(state, *lhs), get(state, *rhs)) {
            (Lat::Int(a), Lat::Int(b)) => {
                match fold_int(*op, a, b) {
                    Some(v) => Lat::Int(v),
                    None => Lat::Bottom, // division by zero traps at run time
                }
            }
            (Lat::Float(a), Lat::Float(b)) => match op {
                BinOp::Add => Lat::Float(a + b),
                BinOp::Sub => Lat::Float(a - b),
                BinOp::Mul => Lat::Float(a * b),
                BinOp::Div => Lat::Float(a / b),
                _ => Lat::Bottom,
            },
            (Lat::Top, _) | (_, Lat::Top) => Lat::Top,
            _ => Lat::Bottom,
        },
        Instr::Cmp { op, lhs, rhs, .. } => match (get(state, *lhs), get(state, *rhs)) {
            (Lat::Int(a), Lat::Int(b)) => Lat::Int(fold_cmp(*op, a, b)),
            (Lat::Top, _) | (_, Lat::Top) => Lat::Top,
            _ => Lat::Bottom,
        },
        Instr::Phi { args, .. } => {
            let mut v = Lat::Top;
            for (_, r) in args {
                v = v.meet(get(state, *r));
            }
            v
        }
        _ => Lat::Bottom,
    };
    if let Some(d) = instr.def() {
        state[d.index()] = val;
    }
}

fn fold_int(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
    })
}

fn fold_cmp(op: CmpOp, a: i64, b: i64) -> i64 {
    (match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }) as i64
}

/// Runs constant propagation over one function. Returns rewrites made.
pub fn constprop_function(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    let cfg = analyses.cfg(func);
    let nregs = func.next_reg as usize;
    let mut input: Vec<Vec<Lat>> = vec![vec![Lat::Top; nregs]; func.blocks.len()];
    // Parameters are unknown.
    for p in 0..func.arity {
        input[func.entry.index()][p] = Lat::Bottom;
    }
    // Iterate to fixpoint in reverse postorder.
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &cfg.rpo {
            let mut state = input[b.index()].clone();
            for instr in &func.block(b).instrs {
                transfer(instr, &mut state);
            }
            for s in cfg.succs[b.index()].iter() {
                let succ_in = &mut input[s.index()];
                for (i, v) in state.iter().enumerate() {
                    let m = succ_in[i].meet(*v);
                    if m != succ_in[i] {
                        succ_in[i] = m;
                        changed = true;
                    }
                }
            }
        }
    }
    // Rewrite pass: fold definitions and branches.
    let mut rewrites = 0;
    let mut branch_folds = 0;
    for &b in &cfg.rpo {
        let mut state = input[b.index()].clone();
        for instr in &mut func.block_mut(b).instrs {
            let folded: Option<Instr> = match instr {
                Instr::Binary { dst, .. } | Instr::Cmp { dst, .. } | Instr::Unary { dst, .. } => {
                    let dst = *dst;
                    let mut probe = state.clone();
                    transfer(instr, &mut probe);
                    match probe[dst.index()] {
                        Lat::Int(v) => Some(Instr::IConst { dst, value: v }),
                        Lat::Float(v) => Some(Instr::FConst { dst, value: v }),
                        _ => None,
                    }
                }
                Instr::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => match state[cond.index()] {
                    Lat::Int(c) => Some(Instr::Jump {
                        target: if c != 0 { *then_bb } else { *else_bb },
                    }),
                    _ => None,
                },
                _ => None,
            };
            transfer(instr, &mut state);
            if let Some(new) = folded {
                if *instr != new {
                    if matches!(new, Instr::Jump { .. }) {
                        branch_folds += 1;
                    }
                    *instr = new;
                    rewrites += 1;
                }
            }
        }
    }
    // Folding a branch to a jump deletes an edge; constant folds only
    // rewrite operands.
    if branch_folds > 0 {
        analyses.note_shape_changed();
    } else if rewrites > 0 {
        analyses.note_body_changed();
    }
    rewrites
}

/// Runs constant propagation over every function.
pub fn constprop(module: &mut Module) -> usize {
    let mut n = 0;
    for func in &mut module.funcs {
        n += constprop_function(func, &mut FunctionAnalyses::new());
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagates_across_blocks() {
        let src = r#"
func @main(0) result {
B0:
  r0 = iconst 21
  jump B1
B1:
  r1 = add r0, r0
  ret r1
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let n = constprop(&mut m);
        assert_eq!(n, 1);
        assert!(matches!(
            m.funcs[0].blocks[1].instrs[0],
            Instr::IConst { value: 42, .. }
        ));
    }

    #[test]
    fn merges_conflicting_paths_to_bottom() {
        let src = r#"
func @main(1) result {
B0:
  branch r0, B1, B2
B1:
  r1 = iconst 1
  jump B3
B2:
  r1 = iconst 2
  jump B3
B3:
  r2 = add r1, r1
  ret r2
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let n = constprop(&mut m);
        assert_eq!(n, 0, "r1 is not constant at the join");
    }

    #[test]
    fn agreeing_paths_stay_constant() {
        let src = r#"
func @main(1) result {
B0:
  branch r0, B1, B2
B1:
  r1 = iconst 5
  jump B3
B2:
  r1 = iconst 5
  jump B3
B3:
  r2 = add r1, r1
  ret r2
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let n = constprop(&mut m);
        assert_eq!(n, 1);
        assert!(matches!(
            m.funcs[0].blocks[3].instrs[0],
            Instr::IConst { value: 10, .. }
        ));
    }

    #[test]
    fn folds_constant_branches() {
        let src = r#"
func @main(0) result {
B0:
  r0 = iconst 0
  branch r0, B1, B2
B1:
  r1 = iconst 111
  ret r1
B2:
  r2 = iconst 222
  ret r2
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        constprop(&mut m);
        assert!(matches!(
            m.funcs[0].blocks[0].instrs[1],
            Instr::Jump { target } if target == ir::BlockId(2)
        ));
    }

    #[test]
    fn loop_carried_values_are_bottom() {
        let src = r#"
func @main(0) result {
B0:
  r0 = iconst 10
  jump B1
B1:
  r1 = iconst 1
  r0 = sub r0, r1
  branch r0, B1, B2
B2:
  ret r0
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let before = vm::Vm::run_main(&m, vm::VmOptions::default()).unwrap();
        constprop(&mut m);
        ir::validate(&m).unwrap();
        let after = vm::Vm::run_main(&m, vm::VmOptions::default()).unwrap();
        assert_eq!(before.exit_code, after.exit_code);
        // The loop body subtraction must not be folded.
        assert!(matches!(
            m.funcs[0].blocks[1].instrs[1],
            Instr::Binary { .. }
        ));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let src = r#"
func @main(0) result {
B0:
  r0 = iconst 1
  r1 = iconst 0
  r2 = div r0, r1
  ret r2
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        constprop(&mut m);
        assert!(matches!(
            m.funcs[0].blocks[0].instrs[2],
            Instr::Binary { .. }
        ));
    }
}

/// [`constprop_function`] with per-pass delta recording (see [`crate::with_delta`]).
pub fn constprop_function_traced(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    tr: &mut trace::FuncTrace,
) -> usize {
    crate::with_delta("constprop", func, tr, |f| constprop_function(f, analyses))
}
