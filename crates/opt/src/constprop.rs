//! Global conditional constant propagation.
//!
//! A forward data-flow analysis over virtual registers with the classic
//! three-level lattice (⊤ / constant / ⊥). Definitions whose operands are
//! all constants are folded to `iconst`/`fconst`, and branches on constant
//! conditions become jumps (which `clean` then exploits to delete dead
//! arms).
//!
//! The default solver is sparse *conditional* constant propagation in the
//! style of Wegman/Zadeck: it tracks which blocks are executable, marks
//! only the taken edge of a branch whose condition has resolved to a
//! constant, and never lets values flowing along a dead edge pollute a
//! join. That is strictly stronger than the dense sweep (which treats
//! every CFG edge as live) — a join reached constantly from only one arm
//! of a constant branch keeps its constant. The dense sweep survives as
//! the measured baseline ([`analyze_constants`] with `dense = true`).

use cfg::{BlockWorklist, Cfg, DataflowStats, Direction, FunctionAnalyses};
use ir::{BinOp, CmpOp, Function, Instr, Module, Reg, UnaryOp};

/// One register's abstract value: unknown-as-yet (⊤), a proven constant,
/// or proven varying (⊥).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lat {
    /// No executable definition seen yet.
    Top,
    /// Every executable path assigns this integer.
    Int(i64),
    /// Every executable path assigns this float.
    Float(f64),
    /// Conflicting or unfoldable definitions.
    Bottom,
}

impl Lat {
    /// Lattice meet (greatest lower bound).
    pub fn meet(self, other: Lat) -> Lat {
        match (self, other) {
            (Lat::Top, x) | (x, Lat::Top) => x,
            (a, b) if a == b => a,
            _ => Lat::Bottom,
        }
    }
}

/// Computes the lattice value `instr` assigns to its destination under
/// `state`, without touching `state`. Instructions with no destination
/// evaluate to ⊥.
fn eval(instr: &Instr, state: &[Lat]) -> Lat {
    let get = |state: &[Lat], r: Reg| state[r.index()];
    match instr {
        Instr::IConst { value, .. } => Lat::Int(*value),
        Instr::FConst { value, .. } => Lat::Float(*value),
        Instr::Copy { src, .. } => get(state, *src),
        Instr::Unary { op, src, .. } => match (op, get(state, *src)) {
            (UnaryOp::Neg, Lat::Int(a)) => Lat::Int(a.wrapping_neg()),
            (UnaryOp::Neg, Lat::Float(a)) => Lat::Float(-a),
            (UnaryOp::Not, Lat::Int(a)) => Lat::Int((a == 0) as i64),
            (UnaryOp::IntToFloat, Lat::Int(a)) => Lat::Float(a as f64),
            (UnaryOp::FloatToInt, Lat::Float(a)) => Lat::Int(a as i64),
            (_, Lat::Top) => Lat::Top,
            _ => Lat::Bottom,
        },
        Instr::Binary { op, lhs, rhs, .. } => match (get(state, *lhs), get(state, *rhs)) {
            (Lat::Int(a), Lat::Int(b)) => {
                match fold_int(*op, a, b) {
                    Some(v) => Lat::Int(v),
                    None => Lat::Bottom, // division by zero traps at run time
                }
            }
            (Lat::Float(a), Lat::Float(b)) => match op {
                BinOp::Add => Lat::Float(a + b),
                BinOp::Sub => Lat::Float(a - b),
                BinOp::Mul => Lat::Float(a * b),
                BinOp::Div => Lat::Float(a / b),
                _ => Lat::Bottom,
            },
            (Lat::Top, _) | (_, Lat::Top) => Lat::Top,
            _ => Lat::Bottom,
        },
        Instr::Cmp { op, lhs, rhs, .. } => match (get(state, *lhs), get(state, *rhs)) {
            (Lat::Int(a), Lat::Int(b)) => Lat::Int(fold_cmp(*op, a, b)),
            (Lat::Top, _) | (_, Lat::Top) => Lat::Top,
            _ => Lat::Bottom,
        },
        Instr::Phi { args, .. } => {
            let mut v = Lat::Top;
            for (_, r) in args {
                v = v.meet(get(state, *r));
            }
            v
        }
        _ => Lat::Bottom,
    }
}

/// Applies `instr` to `state`.
fn transfer(instr: &Instr, state: &mut [Lat]) {
    let val = eval(instr, state);
    if let Some(d) = instr.def() {
        state[d.index()] = val;
    }
}

fn fold_int(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
    })
}

fn fold_cmp(op: CmpOp, a: i64, b: i64) -> i64 {
    (match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }) as i64
}

/// The solved constant lattice: which blocks can execute given the
/// constants found so far, and each register's value at every block entry.
/// Exposed so differential tests can compare solver precision directly.
#[derive(Debug, Clone)]
pub struct ConstLattice {
    /// True for blocks reachable along executable edges only. The dense
    /// solver marks every CFG-reachable block; the sparse solver can prove
    /// fewer blocks executable.
    pub executable: Vec<bool>,
    /// Lattice value per register at each block's entry.
    pub input: Vec<Vec<Lat>>,
}

/// Reusable solver state for [`constprop_function_in`]: the per-block
/// lattice inputs flattened into one `blocks × nregs` vector, the
/// executable-block bitmap, the walking state, and the worklist. Length-
/// reset per call; capacity survives across functions.
#[derive(Default)]
pub struct ConstScratch {
    input: Vec<Lat>,
    executable: Vec<bool>,
    state: Vec<Lat>,
    wl: BlockWorklist,
}

/// [`analyze_constants`] into caller-owned scratch buffers. On return
/// `scratch.executable` and `scratch.input` (flat, `nregs` per block) hold
/// the solution.
fn analyze_constants_in(
    func: &Function,
    cfg: &Cfg,
    dense: bool,
    stats: &mut DataflowStats,
    scratch: &mut ConstScratch,
) {
    let nregs = func.next_reg as usize;
    let n = func.blocks.len();
    scratch.input.clear();
    scratch.input.resize(n * nregs, Lat::Top);
    scratch.executable.clear();
    scratch.executable.resize(n, false);
    // Parameters are unknown.
    for p in 0..func.arity {
        scratch.input[func.entry.index() * nregs + p] = Lat::Bottom;
    }
    let executable = &mut scratch.executable;
    let input = &mut scratch.input;
    let state = &mut scratch.state;
    if dense {
        for &b in &cfg.rpo {
            executable[b.index()] = true;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                stats.blocks_visited += 1;
                let bi = b.index();
                state.clear();
                state.extend_from_slice(&input[bi * nregs..(bi + 1) * nregs]);
                for instr in &func.block(b).instrs {
                    stats.transfer_evals += 1;
                    transfer(instr, state);
                }
                for s in cfg.succs[bi].iter() {
                    let si = s.index();
                    let succ_in = &mut input[si * nregs..(si + 1) * nregs];
                    for (i, v) in state.iter().enumerate() {
                        let m = succ_in[i].meet(*v);
                        if m != succ_in[i] {
                            succ_in[i] = m;
                            changed = true;
                        }
                    }
                }
            }
        }
        return;
    }
    // Sparse conditional constant propagation. The executable set and the
    // per-block inputs both grow monotonically, so the worklist terminates
    // at the least fixpoint over executable edges.
    executable[func.entry.index()] = true;
    let wl = &mut scratch.wl;
    wl.reset(cfg, Direction::Forward);
    wl.push(func.entry, stats);
    while let Some(b) = wl.pop(stats) {
        let bi = b.index();
        state.clear();
        state.extend_from_slice(&input[bi * nregs..(bi + 1) * nregs]);
        for instr in &func.block(b).instrs {
            stats.transfer_evals += 1;
            transfer(instr, state);
        }
        // A branch whose condition has resolved to a constant executes
        // only its taken edge; everything else keeps all successors.
        let taken: Option<ir::BlockId> = match func.block(b).instrs.last() {
            Some(Instr::Branch {
                cond,
                then_bb,
                else_bb,
            }) => match state[cond.index()] {
                Lat::Int(c) => Some(if c != 0 { *then_bb } else { *else_bb }),
                _ => None,
            },
            _ => None,
        };
        for &s in cfg.succs[bi].iter() {
            if let Some(t) = taken {
                if s != t {
                    continue;
                }
            }
            let si = s.index();
            let mut changed = !executable[si];
            executable[si] = true;
            let succ_in = &mut input[si * nregs..(si + 1) * nregs];
            for (i, v) in state.iter().enumerate() {
                let m = succ_in[i].meet(*v);
                if m != succ_in[i] {
                    succ_in[i] = m;
                    changed = true;
                }
            }
            if changed {
                wl.push(s, stats);
            }
        }
    }
}

/// Solves the constant lattice for `func`. With `dense = false` this is
/// sparse conditional constant propagation: only the entry is seeded, a
/// branch whose condition is a known constant marks only its taken edge,
/// and blocks are re-enqueued only when their input actually changes. With
/// `dense = true` it is the classic iterate-to-fixpoint sweep over every
/// reachable block and edge. Work is counted into `stats` either way.
pub fn analyze_constants(
    func: &Function,
    cfg: &Cfg,
    dense: bool,
    stats: &mut DataflowStats,
) -> ConstLattice {
    let mut scratch = ConstScratch::default();
    analyze_constants_in(func, cfg, dense, stats, &mut scratch);
    let nregs = func.next_reg as usize;
    let n = func.blocks.len();
    ConstLattice {
        executable: scratch.executable,
        input: (0..n)
            .map(|b| scratch.input[b * nregs..(b + 1) * nregs].to_vec())
            .collect(),
    }
}

/// Runs constant propagation over one function. Returns rewrites made.
///
/// Convenience wrapper over [`constprop_function_in`] with a throwaway
/// scratch.
pub fn constprop_function(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    constprop_function_in(func, analyses, &mut ConstScratch::default())
}

/// [`constprop_function`] against caller-owned scratch buffers: the
/// zero-allocation path the fused pipeline chain uses.
pub fn constprop_function_in(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut ConstScratch,
) -> usize {
    let nregs = func.next_reg as usize;
    let dense = analyses.dense_dataflow();
    let mut stats = DataflowStats::default();
    let cfg = analyses.cfg(func);
    analyze_constants_in(func, cfg, dense, &mut stats, scratch);
    // Rewrite pass: fold definitions and branches. Blocks the solver
    // proved non-executable are left untouched — once their incoming
    // branches fold to jumps, `clean` removes them outright.
    let mut rewrites = 0;
    let mut branch_folds = 0;
    let state = &mut scratch.state;
    for &b in &cfg.rpo {
        if !scratch.executable[b.index()] {
            continue;
        }
        let bi = b.index();
        state.clear();
        state.extend_from_slice(&scratch.input[bi * nregs..(bi + 1) * nregs]);
        for instr in &mut func.block_mut(b).instrs {
            let folded: Option<Instr> = match instr {
                Instr::Binary { dst, .. } | Instr::Cmp { dst, .. } | Instr::Unary { dst, .. } => {
                    let dst = *dst;
                    match eval(instr, &state) {
                        Lat::Int(v) => Some(Instr::IConst { dst, value: v }),
                        Lat::Float(v) => Some(Instr::FConst { dst, value: v }),
                        _ => None,
                    }
                }
                Instr::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => match state[cond.index()] {
                    Lat::Int(c) => Some(Instr::Jump {
                        target: if c != 0 { *then_bb } else { *else_bb },
                    }),
                    _ => None,
                },
                _ => None,
            };
            transfer(instr, state);
            if let Some(new) = folded {
                if *instr != new {
                    if matches!(new, Instr::Jump { .. }) {
                        branch_folds += 1;
                    }
                    *instr = new;
                    rewrites += 1;
                }
            }
        }
    }
    analyses.dataflow.add(&stats);
    // Folding a branch to a jump deletes an edge; constant folds only
    // rewrite operands.
    if branch_folds > 0 {
        analyses.note_shape_changed();
    } else if rewrites > 0 {
        analyses.note_body_changed();
    }
    rewrites
}

/// Runs constant propagation over every function, sharing one scratch.
pub fn constprop(module: &mut Module) -> usize {
    let mut n = 0;
    let mut scratch = ConstScratch::default();
    for func in &mut module.funcs {
        n += constprop_function_in(func, &mut FunctionAnalyses::new(), &mut scratch);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagates_across_blocks() {
        let src = r#"
func @main(0) result {
B0:
  r0 = iconst 21
  jump B1
B1:
  r1 = add r0, r0
  ret r1
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let n = constprop(&mut m);
        assert_eq!(n, 1);
        assert!(matches!(
            m.funcs[0].blocks[1].instrs[0],
            Instr::IConst { value: 42, .. }
        ));
    }

    #[test]
    fn merges_conflicting_paths_to_bottom() {
        let src = r#"
func @main(1) result {
B0:
  branch r0, B1, B2
B1:
  r1 = iconst 1
  jump B3
B2:
  r1 = iconst 2
  jump B3
B3:
  r2 = add r1, r1
  ret r2
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let n = constprop(&mut m);
        assert_eq!(n, 0, "r1 is not constant at the join");
    }

    #[test]
    fn agreeing_paths_stay_constant() {
        let src = r#"
func @main(1) result {
B0:
  branch r0, B1, B2
B1:
  r1 = iconst 5
  jump B3
B2:
  r1 = iconst 5
  jump B3
B3:
  r2 = add r1, r1
  ret r2
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let n = constprop(&mut m);
        assert_eq!(n, 1);
        assert!(matches!(
            m.funcs[0].blocks[3].instrs[0],
            Instr::IConst { value: 10, .. }
        ));
    }

    #[test]
    fn folds_constant_branches() {
        let src = r#"
func @main(0) result {
B0:
  r0 = iconst 0
  branch r0, B1, B2
B1:
  r1 = iconst 111
  ret r1
B2:
  r2 = iconst 222
  ret r2
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        constprop(&mut m);
        assert!(matches!(
            m.funcs[0].blocks[0].instrs[1],
            Instr::Jump { target } if target == ir::BlockId(2)
        ));
    }

    #[test]
    fn loop_carried_values_are_bottom() {
        let src = r#"
func @main(0) result {
B0:
  r0 = iconst 10
  jump B1
B1:
  r1 = iconst 1
  r0 = sub r0, r1
  branch r0, B1, B2
B2:
  ret r0
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let before = vm::Vm::run_main(&m, vm::VmOptions::default()).unwrap();
        constprop(&mut m);
        ir::validate(&m).unwrap();
        let after = vm::Vm::run_main(&m, vm::VmOptions::default()).unwrap();
        assert_eq!(before.exit_code, after.exit_code);
        // The loop body subtraction must not be folded.
        assert!(matches!(
            m.funcs[0].blocks[1].instrs[1],
            Instr::Binary { .. }
        ));
    }

    #[test]
    fn dead_branch_arm_does_not_pollute_the_join() {
        // r0 is the constant 1, so B2 never executes. The dense solver
        // still meets B2's r1 = 7 into the join and loses the fold; SCCP
        // keeps r1 = 5 and folds the add.
        let src = r#"
func @main(0) result {
B0:
  r0 = iconst 1
  branch r0, B1, B2
B1:
  r1 = iconst 5
  jump B3
B2:
  r1 = iconst 7
  jump B3
B3:
  r2 = add r1, r1
  ret r2
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let n = constprop(&mut m);
        assert!(
            matches!(
                m.funcs[0].blocks[3].instrs[0],
                Instr::IConst { value: 10, .. }
            ),
            "join fold lost: {:?}",
            m.funcs[0].blocks[3].instrs[0]
        );
        assert!(matches!(
            m.funcs[0].blocks[0].instrs[1],
            Instr::Jump { target } if target == ir::BlockId(1)
        ));
        assert!(n >= 2);
        ir::validate(&m).unwrap();
    }

    #[test]
    fn sparse_solver_skips_dead_work_the_dense_one_does() {
        let src = r#"
func @main(0) result {
B0:
  r0 = iconst 1
  branch r0, B1, B2
B1:
  r1 = iconst 5
  jump B3
B2:
  r1 = iconst 7
  jump B3
B3:
  r2 = add r1, r1
  ret r2
}
"#;
        let m = ir::parse_module(src).unwrap();
        let f = &m.funcs[0];
        let cfg = Cfg::build(f);
        let mut sparse = DataflowStats::default();
        let lat = analyze_constants(f, &cfg, false, &mut sparse);
        let mut dense = DataflowStats::default();
        let dense_lat = analyze_constants(f, &cfg, true, &mut dense);
        assert!(!lat.executable[2], "B2 is dead under SCCP");
        assert!(dense_lat.executable[2], "dense treats every edge as live");
        assert!(sparse.transfer_evals < dense.transfer_evals);
    }

    #[test]
    fn division_by_zero_not_folded() {
        let src = r#"
func @main(0) result {
B0:
  r0 = iconst 1
  r1 = iconst 0
  r2 = div r0, r1
  ret r2
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        constprop(&mut m);
        assert!(matches!(
            m.funcs[0].blocks[0].instrs[2],
            Instr::Binary { .. }
        ));
    }
}

/// [`constprop_function_in`] with per-pass delta recording (see
/// [`crate::with_delta`]).
pub fn constprop_function_traced(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut ConstScratch,
    tr: &mut trace::FuncTrace,
) -> usize {
    crate::with_delta("constprop", func, tr, |f| {
        constprop_function_in(f, analyses, scratch)
    })
}
