//! Global redundant-load elimination.
//!
//! The paper's compiler uses partial redundancy elimination with memory
//! tags to "achieve most of the effects of promotion in straight-line
//! code", chiefly by eliminating redundant loads (stores are treated
//! conservatively). This pass implements that load-elimination core as a
//! forward *available-scalar-values* data-flow problem: at each point, for
//! each tag, which register is known to hold the tag's current value. A
//! later `sload` of an available tag becomes a register copy.

use cfg::{BlockWorklist, DataflowStats, Direction, FunctionAnalyses};
use ir::{Function, Instr, Module, Reg, TagId, TagSet};
use std::collections::HashMap;

/// The per-point fact: tag -> register holding its value. `None` is ⊤
/// (unvisited).
type Avail = Option<HashMap<TagId, Reg>>;

/// Reusable solver state for [`loadelim_function_in`]: the per-block input
/// facts, a free pool of cleared fact maps the inputs are recycled
/// through, the walking fact map, and the worklist. Every map keeps its
/// hash-table capacity while parked in the pool, so the steady state
/// allocates nothing.
#[derive(Default)]
pub struct LoadelimScratch {
    input: Vec<Avail>,
    pool: Vec<HashMap<TagId, Reg>>,
    facts: HashMap<TagId, Reg>,
    wl: BlockWorklist,
}

impl LoadelimScratch {
    /// Recycles last call's fact maps into the pool and re-sizes the input
    /// vector to `n` ⊤ entries.
    fn begin(&mut self, n: usize) {
        for slot in self.input.iter_mut() {
            if let Some(mut m) = slot.take() {
                m.clear();
                self.pool.push(m);
            }
        }
        self.input.clear();
        self.input.resize(n, None);
    }
}

/// Meets `out` into a successor's input fact in place; returns true if the
/// input changed. ⊤ adopts `out` wholesale (into a map recycled from
/// `pool`); otherwise the intersection only ever shrinks, so retaining
/// agreeing entries suffices.
fn meet_into(
    input: &mut Avail,
    out: &HashMap<TagId, Reg>,
    pool: &mut Vec<HashMap<TagId, Reg>>,
) -> bool {
    match input {
        None => {
            let mut m = pool.pop().unwrap_or_default();
            m.extend(out.iter().map(|(&t, &r)| (t, r)));
            *input = Some(m);
            true
        }
        Some(m) => {
            let before = m.len();
            m.retain(|t, r| out.get(t) == Some(r));
            m.len() != before
        }
    }
}

/// Applies one instruction to the fact map. When `rewrite` is true,
/// redundant loads are rewritten; returns 1 for a rewrite.
fn transfer(instr: &mut Instr, facts: &mut HashMap<TagId, Reg>, rewrite: bool) -> usize {
    let mut changed = 0;
    // A definition of register r invalidates any fact r was holding.
    if let Some(d) = instr.def() {
        facts.retain(|_, r| *r != d);
    }
    match instr {
        Instr::SLoad { dst, tag } | Instr::CLoad { dst, tag } => {
            if let Some(&r) = facts.get(tag) {
                if rewrite {
                    let d = *dst;
                    *instr = Instr::Copy { dst: d, src: r };
                    facts.retain(|_, h| *h != d);
                    // d now also holds the value; keep the original home.
                    changed = 1;
                }
            } else {
                facts.insert(*tag, *dst);
            }
        }
        Instr::SStore { src, tag } => {
            facts.insert(*tag, *src);
        }
        Instr::Store { tags, .. } => match tags {
            TagSet::All => facts.clear(),
            TagSet::Set(s) => {
                for t in s.iter() {
                    facts.remove(&t);
                }
            }
        },
        Instr::Call { mods, .. } => match mods {
            TagSet::All => facts.clear(),
            TagSet::Set(s) => {
                for t in s.iter() {
                    facts.remove(&t);
                }
            }
        },
        _ => {}
    }
    changed
}

/// Runs redundant-load elimination on one function. Returns loads
/// rewritten to copies.
///
/// Convenience wrapper over [`loadelim_function_in`] with a throwaway
/// scratch.
pub fn loadelim_function(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    loadelim_function_in(func, analyses, &mut LoadelimScratch::default())
}

/// [`loadelim_function`] against caller-owned scratch state: the
/// zero-allocation path the fused pipeline chain uses.
pub fn loadelim_function_in(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut LoadelimScratch,
) -> usize {
    let dense = analyses.dense_dataflow();
    let mut stats = DataflowStats::default();
    let cfg = analyses.cfg(func);
    scratch.begin(func.blocks.len());
    let LoadelimScratch {
        input,
        pool,
        facts,
        wl,
    } = scratch;
    input[func.entry.index()] = Some(pool.pop().unwrap_or_default());
    if dense {
        // Dense fixpoint: resweep every visited block until stable.
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                if input[b.index()].is_none() {
                    continue;
                }
                facts.clear();
                facts.extend(input[b.index()].as_ref().unwrap());
                stats.blocks_visited += 1;
                for instr in &mut func.block_mut(b).instrs {
                    stats.transfer_evals += 1;
                    transfer(instr, facts, false);
                }
                for s in &cfg.succs[b.index()] {
                    if meet_into(&mut input[s.index()], facts, pool) {
                        changed = true;
                    }
                }
            }
        }
    } else {
        // Sparse worklist: a block re-runs only when its input shrank.
        wl.reset(cfg, Direction::Forward);
        wl.push(func.entry, &mut stats);
        while let Some(b) = wl.pop(&mut stats) {
            facts.clear();
            facts.extend(input[b.index()].as_ref().expect("queued implies visited"));
            for instr in &mut func.block_mut(b).instrs {
                stats.transfer_evals += 1;
                transfer(instr, facts, false);
            }
            for &s in &cfg.succs[b.index()] {
                if meet_into(&mut input[s.index()], facts, pool) {
                    wl.push(s, &mut stats);
                }
            }
        }
    }
    // Rewrite.
    let mut rewrites = 0;
    for &b in &cfg.rpo {
        let Some(block_in) = input[b.index()].as_ref() else {
            continue;
        };
        facts.clear();
        facts.extend(block_in);
        for instr in &mut func.block_mut(b).instrs {
            rewrites += transfer(instr, facts, true);
        }
    }
    analyses.dataflow.add(&stats);
    // Rewrites turn loads into copies in place: operand-only.
    if rewrites > 0 {
        analyses.note_body_changed();
    }
    rewrites
}

/// Runs redundant-load elimination over every function, sharing one
/// scratch.
pub fn loadelim(module: &mut Module) -> usize {
    let mut n = 0;
    let mut scratch = LoadelimScratch::default();
    for func in &mut module.funcs {
        n += loadelim_function_in(func, &mut FunctionAnalyses::new(), &mut scratch);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{Vm, VmOptions};

    fn run_pair(src: &str) -> (vm::Outcome, vm::Outcome, usize) {
        let mut m = minic::compile(src).unwrap();
        analysis::analyze(&mut m, analysis::AnalysisLevel::ModRef);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let n = loadelim(&mut m);
        ir::validate(&m).expect("valid");
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(before.output, after.output);
        (before, after, n)
    }

    #[test]
    fn straight_line_reloads_become_copies() {
        let (before, after, n) = run_pair(
            r#"
int g;
int main() {
    g = 4;
    int a = g + 1;
    int b = g + 2;
    int c = g + 3;
    print_int(a + b + c);
    return 0;
}
"#,
        );
        assert!(n >= 3, "all three loads forwarded from the store, got {n}");
        assert!(after.counts.loads + 3 <= before.counts.loads);
    }

    #[test]
    fn cross_block_availability() {
        let (before, after, n) = run_pair(
            r#"
int g = 9;
int pick;
int main() {
    int a = g;
    int b;
    if (pick) { b = g + 1; } else { b = g + 2; }
    int c = g;
    print_int(a + b + c);
    return 0;
}
"#,
        );
        // Loads in both arms and after the join forward from the first
        // (3 static rewrites; 2 of them execute on any one path).
        assert!(n >= 3);
        assert_eq!(after.counts.loads, before.counts.loads - 2);
    }

    #[test]
    fn kills_across_calls_that_mod() {
        let (before, after, _) = run_pair(
            r#"
int g = 1;
void bump() { g = g + 1; }
int main() {
    int a = g;
    bump();
    int b = g;
    print_int(a + b);
    return 0;
}
"#,
        );
        // The second load of g must survive (bump mods g); bump's internal
        // load of g forwards nothing.
        assert_eq!(after.counts.loads, before.counts.loads);
    }

    #[test]
    fn partial_availability_is_not_enough() {
        let (before, after, _) = run_pair(
            r#"
int g = 3;
int pick = 1;
int main() {
    int a = 0;
    if (pick) { a = g; }
    int b = g;
    print_int(a + b);
    return 0;
}
"#,
        );
        // g is available on only one path into the join: the must-analysis
        // keeps the load.
        assert_eq!(after.counts.loads, before.counts.loads);
    }

    #[test]
    fn register_redefinition_kills_facts() {
        let (_, after, _) = run_pair(
            r#"
int g = 5;
int h = 7;
int main() {
    int a = g;
    a = h;
    int b = g;
    print_int(a + b);
    return 0;
}
"#,
        );
        assert_eq!(after.output, vec!["12"]);
    }
}

/// [`loadelim_function_in`] with per-pass delta recording (see
/// [`crate::with_delta`]).
pub fn loadelim_function_traced(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    scratch: &mut LoadelimScratch,
    tr: &mut trace::FuncTrace,
) -> usize {
    crate::with_delta("loadelim", func, tr, |f| {
        loadelim_function_in(f, analyses, scratch)
    })
}
