//! Dominator analysis.
//!
//! Two algorithms are provided: the Lengauer–Tarjan algorithm the paper
//! cites (near-linear, used by default) and the simple iterative algorithm
//! of Cooper/Harvey/Kennedy (used as a cross-check in tests). Both produce a
//! [`DomTree`].

use crate::graph::Cfg;
use ir::BlockId;

/// The immediate-dominator tree of a CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block; `None` for the entry and for
    /// unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree.
    pub children: Vec<Vec<BlockId>>,
    /// Entry block.
    pub entry: BlockId,
    /// Child-list buffers parked by a shrinking rebuild, recycled when the
    /// block count grows again (see `util::resize_pooled`).
    spare: Vec<Vec<BlockId>>,
}

// Equality ignores the `spare` recycling pool: two trees describing the
// same function compare equal regardless of build history.
impl PartialEq for DomTree {
    fn eq(&self, other: &Self) -> bool {
        self.idom == other.idom && self.children == other.children && self.entry == other.entry
    }
}

impl Eq for DomTree {}

impl DomTree {
    /// An empty tree, ready for [`DomTree::lengauer_tarjan_into`].
    pub fn empty(entry: BlockId) -> DomTree {
        DomTree {
            idom: Vec::new(),
            children: Vec::new(),
            entry,
            spare: Vec::new(),
        }
    }

    /// Computes dominators with the Lengauer–Tarjan algorithm.
    pub fn lengauer_tarjan(cfg: &Cfg) -> DomTree {
        let mut out = DomTree::empty(cfg.entry);
        DomTree::lengauer_tarjan_into(cfg, &mut DomScratch::default(), &mut out);
        out
    }

    /// [`lengauer_tarjan`](Self::lengauer_tarjan) writing into an existing
    /// tree, reusing its buffers and `scratch`'s working memory — the
    /// allocation-free rebuild path for a warm analysis shell.
    pub fn lengauer_tarjan_into(cfg: &Cfg, scratch: &mut DomScratch, out: &mut DomTree) {
        scratch.lt.run_into(cfg, out);
    }

    /// Computes dominators with the iterative RPO data-flow algorithm.
    pub fn iterative(cfg: &Cfg) -> DomTree {
        iterative_doms(cfg)
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// True if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Computes dominance frontiers (Cytron et al.), used for SSA
    /// construction.
    pub fn dominance_frontiers(&self, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = cfg.len();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for &b in &cfg.rpo {
            if cfg.preds[b.index()].len() >= 2 {
                for &p in &cfg.preds[b.index()] {
                    if !cfg.is_reachable(p) {
                        continue;
                    }
                    let mut runner = p;
                    while Some(runner) != self.idom[b.index()] {
                        if !df[runner.index()].contains(&b) {
                            df[runner.index()].push(b);
                        }
                        match self.idom[runner.index()] {
                            Some(r) => runner = r,
                            None => break,
                        }
                    }
                }
            }
        }
        df
    }

    fn from_idom(idom: Vec<Option<BlockId>>, entry: BlockId) -> DomTree {
        let mut children = vec![Vec::new(); idom.len()];
        for (i, p) in idom.iter().enumerate() {
            if let Some(p) = p {
                children[p.index()].push(BlockId(i as u32));
            }
        }
        DomTree {
            idom,
            children,
            entry,
            spare: Vec::new(),
        }
    }
}

/// The iterative algorithm of Cooper, Harvey & Kennedy ("A Simple, Fast
/// Dominance Algorithm").
fn iterative_doms(cfg: &Cfg) -> DomTree {
    let n = cfg.len();
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[cfg.entry.index()] = Some(cfg.entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &cfg.rpo {
            if b == cfg.entry {
                continue;
            }
            let mut new_idom: Option<BlockId> = None;
            for &p in &cfg.preds[b.index()] {
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.index()] != Some(ni) {
                    idom[b.index()] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    // Convert the self-idom convention to None for the entry.
    idom[cfg.entry.index()] = None;
    DomTree::from_idom(idom, cfg.entry)
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed");
        }
    }
    a
}

/// Reusable working memory for [`DomTree::lengauer_tarjan_into`]. One of
/// these per analysis shell keeps every per-node vector of the algorithm
/// warm across rebuilds.
#[derive(Debug, Default)]
pub struct DomScratch {
    lt: LengauerTarjan,
}

/// Lengauer–Tarjan with simple (non-balanced) path compression: the
/// O(E·log V) variant, which the paper notes can be implemented to run in
/// near-linear time.
#[derive(Debug, Default)]
struct LengauerTarjan {
    /// DFS number per block index (usize::MAX if unreachable).
    dfnum: Vec<usize>,
    /// Block at each DFS number.
    vertex: Vec<BlockId>,
    /// DFS-tree parent, by DFS number.
    parent: Vec<usize>,
    /// Semidominator, by DFS number.
    semi: Vec<usize>,
    /// Union-find ancestor, by DFS number.
    ancestor: Vec<Option<usize>>,
    /// Best (min-semi) vertex on the compressed path.
    label: Vec<usize>,
    /// Buckets of vertices whose semidominator is the key.
    bucket: Vec<Vec<usize>>,
    idom_num: Vec<usize>,
    /// Scratch for [`compress`](Self::compress), reused across calls so
    /// path compression allocates nothing after the first deep path.
    path: Vec<usize>,
    /// DFS-numbering stack, reused across runs; always empty between them.
    dfs: Vec<(BlockId, Option<usize>)>,
}

impl LengauerTarjan {
    fn run_into(&mut self, cfg: &Cfg, out: &mut DomTree) {
        let n = cfg.len();
        let lt = self;
        lt.dfnum.clear();
        lt.dfnum.resize(n, usize::MAX);
        lt.vertex.clear();
        lt.parent.clear();
        lt.semi.clear();
        lt.ancestor.clear();
        lt.label.clear();
        // Buckets are indexed by semidominator DFS number; clear each in
        // place so its capacity survives the rebuild.
        for b in &mut lt.bucket {
            b.clear();
        }
        if lt.bucket.len() < n {
            lt.bucket.resize_with(n, Vec::new);
        }
        lt.idom_num.clear();
        // DFS numbering (iterative) through the persistent stack buffer.
        debug_assert!(lt.dfs.is_empty());
        let mut stack = std::mem::take(&mut lt.dfs);
        stack.push((cfg.entry, None));
        while let Some((b, par)) = stack.pop() {
            if lt.dfnum[b.index()] != usize::MAX {
                continue;
            }
            let num = lt.vertex.len();
            lt.dfnum[b.index()] = num;
            lt.vertex.push(b);
            lt.parent.push(par.unwrap_or(0));
            lt.semi.push(num);
            lt.ancestor.push(None);
            lt.label.push(num);
            lt.idom_num.push(num);
            for &s in cfg.succs[b.index()].iter().rev() {
                if lt.dfnum[s.index()] == usize::MAX {
                    stack.push((s, Some(num)));
                }
            }
        }
        lt.dfs = stack;
        let count = lt.vertex.len();
        // Main loop in reverse DFS order.
        for w in (1..count).rev() {
            let p = lt.parent[w];
            // Step 2: compute semidominator.
            let wb = lt.vertex[w];
            for pred in &cfg.preds[wb.index()] {
                let v = lt.dfnum[pred.index()];
                if v == usize::MAX {
                    continue; // unreachable predecessor
                }
                let u = lt.eval(v);
                if lt.semi[u] < lt.semi[w] {
                    lt.semi[w] = lt.semi[u];
                }
            }
            let s = lt.semi[w];
            lt.bucket[s].push(w);
            lt.link(p, w);
            // Step 3: implicitly define idoms for p's bucket. Drain by
            // index (the bucket gains no entries while draining) so the
            // inner vector keeps its capacity for the next rebuild.
            let mut i = 0;
            while i < lt.bucket[p].len() {
                let v = lt.bucket[p][i];
                i += 1;
                let u = lt.eval(v);
                lt.idom_num[v] = if lt.semi[u] < lt.semi[v] { u } else { p };
            }
            lt.bucket[p].clear();
        }
        // Step 4: finalize in DFS order.
        for w in 1..count {
            if lt.idom_num[w] != lt.semi[w] {
                lt.idom_num[w] = lt.idom_num[lt.idom_num[w]];
            }
        }
        out.entry = cfg.entry;
        out.idom.clear();
        out.idom.resize(n, None);
        for w in 1..count {
            out.idom[lt.vertex[w].index()] = Some(lt.vertex[lt.idom_num[w]]);
        }
        crate::util::resize_pooled(&mut out.children, &mut out.spare, n, Vec::clear);
        for i in 0..n {
            if let Some(p) = out.idom[i] {
                out.children[p.index()].push(BlockId(i as u32));
            }
        }
    }

    fn link(&mut self, parent: usize, child: usize) {
        self.ancestor[child] = Some(parent);
    }

    /// Path-compressing eval: returns the vertex with minimal semi on the
    /// path from the union-find root (exclusive) to `v` (inclusive).
    fn eval(&mut self, v: usize) -> usize {
        if self.ancestor[v].is_none() {
            return self.label[v];
        }
        self.compress(v);
        self.label[v]
    }

    fn compress(&mut self, v: usize) {
        // Iterative path compression to avoid recursion depth limits. The
        // path scratch lives on `self` so repeated calls do not allocate.
        let mut path = std::mem::take(&mut self.path);
        path.clear();
        let mut cur = v;
        while let Some(a) = self.ancestor[cur] {
            if self.ancestor[a].is_some() {
                path.push(cur);
                cur = a;
            } else {
                break;
            }
        }
        for &u in path.iter().rev() {
            let a = self.ancestor[u].expect("on path");
            if self.semi[self.label[a]] < self.semi[self.label[u]] {
                self.label[u] = self.label[a];
            }
            self.ancestor[u] = self.ancestor[a];
        }
        self.path = path;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Function, FunctionBuilder};

    fn doms_of(f: &Function) -> (DomTree, DomTree) {
        let cfg = Cfg::build(f);
        (DomTree::lengauer_tarjan(&cfg), DomTree::iterative(&cfg))
    }

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        b.branch(c, b1, b2);
        b.switch_to(b1);
        b.jump(b3);
        b.switch_to(b2);
        b.jump(b3);
        b.switch_to(b3);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let (lt, it) = doms_of(&f);
        assert_eq!(lt, it);
        assert_eq!(lt.idom[0], None);
        assert_eq!(lt.idom[1], Some(BlockId(0)));
        assert_eq!(lt.idom[2], Some(BlockId(0)));
        assert_eq!(lt.idom[3], Some(BlockId(0)));
        assert!(lt.dominates(BlockId(0), BlockId(3)));
        assert!(!lt.dominates(BlockId(1), BlockId(3)));
        assert!(lt.dominates(BlockId(3), BlockId(3)));
        assert!(!lt.strictly_dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_idoms() {
        // B0 -> B1 (header) -> B2 (body) -> B1; B1 -> B3 (exit)
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.branch(c, b2, b3);
        b.switch_to(b2);
        b.jump(b1);
        b.switch_to(b3);
        b.ret(None);
        let f = b.finish();
        let (lt, it) = doms_of(&f);
        assert_eq!(lt, it);
        assert_eq!(lt.idom[1], Some(BlockId(0)));
        assert_eq!(lt.idom[2], Some(b1));
        assert_eq!(lt.idom[3], Some(b1));
    }

    #[test]
    fn dominance_frontier_of_diamond() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let dom = DomTree::lengauer_tarjan(&cfg);
        let df = dom.dominance_frontiers(&cfg);
        assert_eq!(df[1], vec![BlockId(3)]);
        assert_eq!(df[2], vec![BlockId(3)]);
        assert!(df[0].is_empty());
        assert!(df[3].is_empty());
    }

    #[test]
    fn irreducible_graph_agreement() {
        // B0 -> B1, B0 -> B2, B1 -> B2, B2 -> B1, B1 -> B3 (irreducible-ish
        // double entry into the {B1,B2} cycle).
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        b.branch(c, b1, b2);
        b.switch_to(b1);
        b.branch(c, b2, b3);
        b.switch_to(b2);
        b.jump(b1);
        b.switch_to(b3);
        b.ret(None);
        let f = b.finish();
        let (lt, it) = doms_of(&f);
        assert_eq!(lt, it);
        assert_eq!(lt.idom[1], Some(BlockId(0)));
        assert_eq!(lt.idom[2], Some(BlockId(0)));
    }
}
