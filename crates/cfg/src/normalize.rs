//! Loop normalization: landing pads and dedicated exit blocks.
//!
//! The paper's compiler "automatically inserts landing pads and exits as
//! part of constructing the control-flow graph; empty blocks are
//! automatically removed after optimization". This module reproduces that:
//! after [`normalize_loops`] every natural loop has
//!
//! * a unique **landing pad** — a block outside the loop that is the only
//!   non-loop predecessor of the header and whose only successor is the
//!   header (promotion inserts the initial load there), and
//! * **dedicated exit blocks** — every exit edge leads to a block whose
//!   predecessors are all inside the loop (promotion inserts the final
//!   stores there).

use crate::analyses::{FunctionAnalyses, LoopGeometry};
use crate::dom::DomTree;
use crate::graph::Cfg;
use crate::loops::{LoopForest, LoopId};
use ir::{BlockId, Function, Instr};
use std::collections::BTreeSet;

/// Removes blocks unreachable from the entry, compacting ids.
///
/// Returns the number of blocks removed.
pub fn remove_unreachable_blocks(func: &mut Function) -> usize {
    remove_unreachable_blocks_in(func, &mut FunctionAnalyses::new())
}

/// Cache-aware [`remove_unreachable_blocks`]: reads the CFG through
/// `analyses` (a no-op when it is warm) and reports the removal as a shape
/// change only when blocks were actually deleted.
pub fn remove_unreachable_blocks_in(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    let cfg = analyses.cfg(func);
    let n = func.blocks.len();
    let removed = n - cfg.rpo.len();
    if removed == 0 {
        return 0;
    }
    let mut remap: Vec<Option<BlockId>> = vec![None; n];
    let mut new_blocks = Vec::with_capacity(cfg.rpo.len());
    // Keep original relative order for stability.
    for id in func.block_ids() {
        if cfg.is_reachable(id) {
            remap[id.index()] = Some(BlockId(new_blocks.len() as u32));
            new_blocks.push(std::mem::take(&mut func.blocks[id.index()]));
        }
    }
    for block in &mut new_blocks {
        // Drop φ-entries for removed predecessors, then retarget.
        for instr in &mut block.instrs {
            if let Instr::Phi { args, .. } = instr {
                args.retain(|(b, _)| remap[b.index()].is_some());
            }
            instr.retarget_blocks(|b| remap[b.index()].expect("reachable target"));
        }
    }
    func.blocks = new_blocks;
    func.entry = remap[func.entry.index()].expect("entry reachable");
    analyses.note_shape_changed();
    removed
}

fn has_phis(func: &Function) -> bool {
    func.blocks
        .iter()
        .any(|b| b.instrs.iter().any(|i| matches!(i, Instr::Phi { .. })))
}

/// Retargets the `old -> ` edges of `from`'s terminator to `new`.
fn retarget_edge(func: &mut Function, from: BlockId, old: BlockId, new: BlockId) {
    if let Some(t) = func.block_mut(from).terminator_mut() {
        t.retarget_blocks(|b| if b == old { new } else { b });
    }
}

/// One round of landing-pad insertion. Returns true if anything changed;
/// the caller reports the shape change to `analyses`.
fn insert_landing_pads(func: &mut Function, analyses: &mut FunctionAnalyses) -> bool {
    let (cfg, forest) = analyses.cfg_forest(func);
    for l in &forest.loops {
        let header = l.header;
        // Scan the header's outside predecessors without collecting them:
        // on a converged function (every round after the first) this loop
        // body allocates nothing.
        let mut n_outside = 0usize;
        let mut first_outside = None;
        for &p in &cfg.preds[header.index()] {
            if cfg.is_reachable(p) && !l.contains(p) {
                n_outside += 1;
                first_outside.get_or_insert(p);
            }
        }
        // A loop headed by the entry block has an implicit entry edge that
        // cannot be retargeted; reroute the function entry through a fresh
        // pad instead.
        if header == func.entry {
            let pad = func.new_block();
            func.block_mut(pad)
                .instrs
                .push(Instr::Jump { target: header });
            for &p in &cfg.preds[header.index()] {
                if cfg.is_reachable(p) && !l.contains(p) {
                    retarget_edge(func, p, header, pad);
                }
            }
            func.entry = pad;
            return true;
        }
        let already_pad =
            n_outside == 1 && first_outside.is_some_and(|p| cfg.succs[p.index()].len() == 1);
        if already_pad {
            continue;
        }
        // Create the pad and retarget every outside entry edge through it.
        let pad = func.new_block();
        func.block_mut(pad)
            .instrs
            .push(Instr::Jump { target: header });
        for &p in &cfg.preds[header.index()] {
            if cfg.is_reachable(p) && !l.contains(p) {
                retarget_edge(func, p, header, pad);
            }
        }
        return true;
    }
    false
}

/// One round of exit-block dedication. Returns true if anything changed;
/// the caller reports the shape change to `analyses`.
fn insert_exit_blocks(func: &mut Function, analyses: &mut FunctionAnalyses) -> bool {
    let (cfg, forest) = analyses.cfg_forest(func);
    for l in &forest.loops {
        for &(from, to) in &l.exit_edges {
            let shared = cfg.preds[to.index()]
                .iter()
                .any(|p| cfg.is_reachable(*p) && !l.contains(*p));
            // A dedicated exit block must also not be a loop header (we
            // never want demotion stores inside another loop's header).
            let is_header = forest.loop_with_header(to).is_some();
            if shared || is_header {
                let exit = func.new_block();
                func.block_mut(exit).instrs.push(Instr::Jump { target: to });
                retarget_edge(func, from, to, exit);
                return true;
            }
        }
    }
    false
}

/// Normalizes every natural loop of `func` to have a landing pad and
/// dedicated exit blocks.
///
/// # Panics
///
/// Panics if the function contains φ-nodes (normalization runs before any
/// SSA construction in the pipeline) or if normalization fails to converge
/// (which would indicate a bug).
pub fn normalize_loops(func: &mut Function) {
    normalize_loops_in(func, &mut FunctionAnalyses::new());
}

/// Cache-aware [`normalize_loops`]: the unreachable-block sweep, the
/// landing-pad check, and the exit-block check all share one CFG/dominator/
/// loop-forest build per round instead of constructing their own (the old
/// code built the CFG three times and the dominator tree twice even on a
/// fully-converged function). With a warm cache a converged call performs
/// **zero** analysis builds.
///
/// # Panics
///
/// Same conditions as [`normalize_loops`].
pub fn normalize_loops_in(func: &mut Function, analyses: &mut FunctionAnalyses) {
    assert!(
        !has_phis(func),
        "normalize_loops requires a phi-free function"
    );
    remove_unreachable_blocks_in(func, analyses);
    let mut budget = 4 * func.blocks.len() + 64;
    loop {
        if insert_landing_pads(func, analyses) {
            analyses.note_shape_changed();
            budget -= 1;
            assert!(budget > 0, "landing-pad insertion did not converge");
            continue;
        }
        if insert_exit_blocks(func, analyses) {
            analyses.note_shape_changed();
            budget -= 1;
            assert!(budget > 0, "exit-block insertion did not converge");
            continue;
        }
        break;
    }
}

/// A packaged view of a normalized function's loop structure, consumed by
/// the promoter and by LICM.
#[derive(Debug, Clone)]
pub struct LoopNest {
    /// The CFG snapshot.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// The loop forest.
    pub forest: LoopForest,
    /// Landing pad per loop.
    pub landing_pads: Vec<BlockId>,
    /// Dedicated exit blocks per loop.
    pub exit_blocks: Vec<BTreeSet<BlockId>>,
}

impl LoopNest {
    /// Computes the loop nest of a function already processed by
    /// [`normalize_loops`].
    ///
    /// # Panics
    ///
    /// Panics if some loop lacks a landing pad or a dedicated exit block,
    /// i.e. if the function was not normalized.
    pub fn compute(func: &Function) -> LoopNest {
        let cfg = Cfg::build(func);
        let dom = DomTree::lengauer_tarjan(&cfg);
        let forest = LoopForest::build(&cfg, &dom);
        let geom = LoopGeometry::compute(&cfg, &forest);
        LoopNest {
            cfg,
            dom,
            forest,
            landing_pads: geom.landing_pads,
            exit_blocks: geom.exit_blocks,
        }
    }

    /// The landing pad of `l`.
    pub fn landing_pad(&self, l: LoopId) -> BlockId {
        self.landing_pads[l.index()]
    }

    /// The dedicated exit blocks of `l`.
    pub fn exits(&self, l: LoopId) -> &BTreeSet<BlockId> {
        &self.exit_blocks[l.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{FunctionBuilder, Module};

    /// Loop whose header is targeted directly by the entry (no pad) and
    /// whose exit goes straight to a shared return block.
    fn raw_loop() -> Function {
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let header = b.new_block();
        let body = b.new_block();
        let tail = b.new_block();
        // entry branches directly to header or tail -> tail shared.
        b.branch(c, header, tail);
        b.switch_to(header);
        b.branch(c, body, tail);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(tail);
        b.ret(None);
        b.finish()
    }

    fn validated(func: Function) -> Function {
        let mut m = Module::new();
        m.add_func(func);
        ir::validate(&m).expect("valid");
        m.funcs.pop().unwrap()
    }

    #[test]
    fn normalizes_raw_loop() {
        let mut f = raw_loop();
        normalize_loops(&mut f);
        let f = validated(f);
        let nest = LoopNest::compute(&f);
        assert_eq!(nest.forest.len(), 1);
        let l = LoopId(0);
        let pad = nest.landing_pad(l);
        // The pad jumps only to the header and is outside the loop.
        assert_eq!(nest.cfg.succs[pad.index()], vec![nest.forest.get(l).header]);
        assert!(!nest.forest.get(l).contains(pad));
        // Exits are dedicated.
        for &e in nest.exits(l) {
            for p in &nest.cfg.preds[e.index()] {
                assert!(nest.forest.get(l).contains(*p));
            }
        }
    }

    #[test]
    fn nested_loops_get_pads_inside_parent() {
        // for(i) { for(j) { body } }
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let oh = b.new_block();
        let ih = b.new_block();
        let ib = b.new_block();
        let ol = b.new_block();
        let done = b.new_block();
        b.jump(oh);
        b.switch_to(oh);
        b.branch(c, ih, done);
        b.switch_to(ih);
        b.branch(c, ib, ol);
        b.switch_to(ib);
        b.jump(ih);
        b.switch_to(ol);
        b.jump(oh);
        b.switch_to(done);
        b.ret(None);
        let mut f = b.finish();
        normalize_loops(&mut f);
        let f = validated(f);
        let nest = LoopNest::compute(&f);
        assert_eq!(nest.forest.len(), 2);
        let inner = nest.forest.inner_to_outer().into_iter().next().unwrap();
        let outer = nest.forest.get(inner).parent.expect("nested");
        // The inner pad lies inside the outer loop.
        let pad = nest.landing_pad(inner);
        assert!(nest.forest.get(outer).contains(pad));
        // The inner exit blocks lie inside the outer loop.
        for &e in nest.exits(inner) {
            assert!(nest.forest.get(outer).contains(e));
        }
    }

    #[test]
    fn idempotent() {
        let mut f = raw_loop();
        normalize_loops(&mut f);
        let once = f.clone();
        normalize_loops(&mut f);
        assert_eq!(once, f);
    }

    #[test]
    fn removes_unreachable() {
        let mut b = FunctionBuilder::new("f", 0);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let mut f = b.finish();
        assert_eq!(remove_unreachable_blocks(&mut f), 1);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(remove_unreachable_blocks(&mut f), 0);
    }

    #[test]
    fn loop_free_function_untouched() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        let mut f = b.finish();
        let before = f.clone();
        normalize_loops(&mut f);
        assert_eq!(before, f);
    }
}
