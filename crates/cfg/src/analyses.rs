//! A version-keyed cache of per-function analysis artifacts.
//!
//! Every pass in the fused pipeline chain needs some subset of {CFG,
//! dominator tree, loop forest, loop geometry, liveness}, and most passes
//! change nothing that would invalidate them. [`FunctionAnalyses`] owns one
//! lazily-built copy of each artifact and two monotonic version counters:
//!
//! * `shape_version` advances when the *edge structure* changes (blocks
//!   added/removed/retargeted). The CFG, dominator tree, loop forest, and
//!   loop geometry are all keyed on it.
//! * `body_version` advances on **any** change, including instruction-only
//!   rewrites that leave the edges alone. Liveness is keyed on it (register
//!   uses/defs move without the CFG moving).
//!
//! Passes report what they changed through [`note_body_changed`] /
//! [`note_shape_changed`]; a pass that changed nothing reports nothing and
//! every downstream consumer gets cache hits. The [`BuildCounts`] ledger
//! records how many times each artifact was actually constructed — the
//! pipeline surfaces it so rebuild-per-pass regressions show up as a
//! counter jump rather than a vague slowdown.
//!
//! [`note_body_changed`]: FunctionAnalyses::note_body_changed
//! [`note_shape_changed`]: FunctionAnalyses::note_shape_changed

use crate::dataflow::DataflowStats;
use crate::dom::{DomScratch, DomTree};
use crate::graph::Cfg;
use crate::liveness::{
    liveness_dense_stats, liveness_sparse_into, LiveScratch, LiveSummaries, Liveness,
};
use crate::loops::{LoopForest, LoopId};
use ir::{BlockId, Function};
use std::collections::BTreeSet;

/// How many times each artifact was built through one [`FunctionAnalyses`]
/// (or, summed, through a whole pipeline run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildCounts {
    /// CFG constructions.
    pub cfg: u64,
    /// Dominator-tree constructions.
    pub dom: u64,
    /// Loop-forest constructions.
    pub forest: u64,
    /// Loop-geometry (landing pad / exit set) extractions.
    pub geometry: u64,
    /// Liveness solves.
    pub liveness: u64,
}

impl BuildCounts {
    /// Sum over all artifact kinds.
    pub fn total(&self) -> u64 {
        self.cfg + self.dom + self.forest + self.geometry + self.liveness
    }

    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &BuildCounts) {
        self.cfg += other.cfg;
        self.dom += other.dom;
        self.forest += other.forest;
        self.geometry += other.geometry;
        self.liveness += other.liveness;
    }
}

/// Landing pads and dedicated exit blocks per loop — the part of the
/// normalized shape that promotion and LICM consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopGeometry {
    /// Landing pad per loop, indexed by [`LoopId`].
    pub landing_pads: Vec<BlockId>,
    /// Dedicated exit blocks per loop, indexed by [`LoopId`].
    pub exit_blocks: Vec<BTreeSet<BlockId>>,
}

impl LoopGeometry {
    /// Extracts the landing pads and exit sets of a function already
    /// processed by [`crate::normalize_loops`].
    ///
    /// # Panics
    ///
    /// Panics if some loop lacks a unique landing pad or a dedicated exit
    /// block, i.e. if the function was not normalized.
    pub fn compute(cfg: &Cfg, forest: &LoopForest) -> LoopGeometry {
        let mut out = LoopGeometry {
            landing_pads: Vec::new(),
            exit_blocks: Vec::new(),
        };
        LoopGeometry::compute_into(cfg, forest, &mut out);
        out
    }

    /// [`compute`](Self::compute) writing into an existing geometry,
    /// reusing its per-loop vectors — the reduced-allocation rebuild path
    /// for a warm analysis shell.
    ///
    /// # Panics
    ///
    /// As [`compute`](Self::compute).
    pub fn compute_into(cfg: &Cfg, forest: &LoopForest, out: &mut LoopGeometry) {
        out.landing_pads.clear();
        out.landing_pads.reserve(forest.len());
        out.exit_blocks.clear();
        out.exit_blocks.reserve(forest.len());
        for l in &forest.loops {
            let mut outside = None;
            let mut n_outside = 0;
            for &p in &cfg.preds[l.header.index()] {
                if cfg.is_reachable(p) && !l.contains(p) {
                    n_outside += 1;
                    outside = Some(p);
                }
            }
            assert_eq!(
                n_outside, 1,
                "loop at {} lacks a unique landing pad; run normalize_loops first",
                l.header
            );
            out.landing_pads.push(outside.expect("counted above"));
            let mut exits = BTreeSet::new();
            for &(_, t) in &l.exit_edges {
                assert!(
                    cfg.preds[t.index()]
                        .iter()
                        .all(|p| !cfg.is_reachable(*p) || l.contains(*p)),
                    "exit block {t} shared with non-loop predecessors"
                );
                exits.insert(t);
            }
            out.exit_blocks.push(exits);
        }
    }

    /// The landing pad of `l`.
    pub fn landing_pad(&self, l: LoopId) -> BlockId {
        self.landing_pads[l.index()]
    }

    /// The dedicated exit blocks of `l`.
    pub fn exits(&self, l: LoopId) -> &BTreeSet<BlockId> {
        &self.exit_blocks[l.index()]
    }
}

/// The version-keyed analysis cache for one function body. See the module
/// docs for the invalidation tiers.
///
/// Accessors take the function and return references borrowed from the
/// cache (never from the function), so a pass can hold an artifact while
/// mutating the body — exactly the snapshot discipline the passes already
/// used — and report the mutation afterwards.
#[derive(Debug, Default)]
pub struct FunctionAnalyses {
    shape_version: u64,
    body_version: u64,
    cfg: Option<(u64, Cfg)>,
    dom: Option<(u64, DomTree)>,
    forest: Option<(u64, LoopForest)>,
    geometry: Option<(u64, LoopGeometry)>,
    live: Option<(u64, Liveness)>,
    /// Per-block use/def summaries kept across liveness rebuilds; only
    /// blocks named dirty since the last solve are rescanned.
    live_summaries: LiveSummaries,
    /// Which blocks changed since `live_summaries` was last scanned.
    dirty: DirtyBlocks,
    /// Reusable Lengauer–Tarjan working memory for dominator rebuilds.
    dom_scratch: DomScratch,
    /// Reusable worklist + candidate-set memory for liveness solves.
    live_scratch: LiveScratch,
    /// When true, liveness uses the dense sweep solver (the benchmark's
    /// baseline mode) instead of the sparse worklist.
    dense_dataflow: bool,
    /// Ledger of artifact constructions performed through this cache.
    pub builds: BuildCounts,
    /// Ledger of solver work performed through this cache. Passes that run
    /// their own worklist solvers (constprop, loadelim, dce) accumulate
    /// into it alongside the liveness solves done here.
    pub dataflow: DataflowStats,
}

/// Dirty-block tracking for the liveness summary cache.
#[derive(Debug, Default)]
enum DirtyBlocks {
    /// Everything must be rescanned (the conservative default).
    #[default]
    All,
    /// Only these block indices changed since the last scan.
    Blocks(BTreeSet<usize>),
}

impl FunctionAnalyses {
    /// An empty cache (every first access builds).
    pub fn new() -> FunctionAnalyses {
        FunctionAnalyses::default()
    }

    /// The current body version. Advances on every reported change; callers
    /// keeping derived structures (e.g. the allocator's interference graph)
    /// key them on this.
    pub fn body_version(&self) -> u64 {
        self.body_version
    }

    /// Report an instruction-level change that left the edge structure
    /// intact (operand rewrites, instruction insertion/removal/motion).
    /// Invalidates liveness; the CFG-shaped artifacts survive.
    pub fn note_body_changed(&mut self) {
        self.body_version += 1;
        self.dirty = DirtyBlocks::All;
    }

    /// Like [`note_body_changed`](Self::note_body_changed), but names the
    /// blocks that were actually edited. The next liveness solve rescans
    /// use/def summaries only for those blocks — the payoff of keeping the
    /// summary cache across regalloc's coalesce and spill rounds, which
    /// typically touch a handful of blocks each.
    pub fn note_body_changed_blocks(&mut self, blocks: impl IntoIterator<Item = BlockId>) {
        self.body_version += 1;
        if let DirtyBlocks::Blocks(set) = &mut self.dirty {
            set.extend(blocks.into_iter().map(|b| b.index()));
        }
    }

    /// Report a change to the edge structure (blocks added, removed, or
    /// retargeted). Invalidates everything.
    pub fn note_shape_changed(&mut self) {
        self.shape_version += 1;
        self.body_version += 1;
        self.dirty = DirtyBlocks::All;
    }

    /// Resets the cache for reuse against a different (or regenerated)
    /// function body while keeping every allocated buffer warm.
    /// Semantically equivalent to starting from [`FunctionAnalyses::new`]
    /// — all artifacts are stale and the build/solver ledgers are zeroed —
    /// except the next build round rebuilds into this shell's memory
    /// instead of allocating. The driver's worker pool recycles shells
    /// through this between pipeline runs.
    pub fn recycle(&mut self) {
        self.note_shape_changed();
        self.builds = BuildCounts::default();
        self.dataflow = DataflowStats::default();
    }

    /// Selects the dense sweep solvers instead of the sparse worklists.
    /// The pipeline's baseline mode uses this so the benchmark can report
    /// both work counts from the same binary.
    pub fn set_dense_dataflow(&mut self, dense: bool) {
        self.dense_dataflow = dense;
    }

    /// True when the dense baseline solvers are selected.
    pub fn dense_dataflow(&self) -> bool {
        self.dense_dataflow
    }

    // The ensure_* methods rebuild stale artifacts *in place* (through the
    // artifacts' `*_into` constructors) so a recycled shell's warm buffers
    // are reused instead of reallocated; only a shell that never held the
    // artifact allocates it.

    fn ensure_cfg(&mut self, func: &Function) {
        if matches!(&self.cfg, Some((v, _)) if *v == self.shape_version) {
            return;
        }
        self.builds.cfg += 1;
        let entry = func.entry;
        let (v, cfg) = self.cfg.get_or_insert_with(|| (0, Cfg::empty(entry)));
        cfg.build_into(func);
        *v = self.shape_version;
    }

    fn ensure_dom(&mut self, func: &Function) {
        self.ensure_cfg(func);
        if matches!(&self.dom, Some((v, _)) if *v == self.shape_version) {
            return;
        }
        self.builds.dom += 1;
        let cfg = &self.cfg.as_ref().expect("ensured").1;
        let (v, dom) = self
            .dom
            .get_or_insert_with(|| (0, DomTree::empty(cfg.entry)));
        DomTree::lengauer_tarjan_into(cfg, &mut self.dom_scratch, dom);
        *v = self.shape_version;
    }

    fn ensure_forest(&mut self, func: &Function) {
        self.ensure_dom(func);
        if matches!(&self.forest, Some((v, _)) if *v == self.shape_version) {
            return;
        }
        self.builds.forest += 1;
        let cfg = &self.cfg.as_ref().expect("ensured").1;
        let dom = &self.dom.as_ref().expect("ensured").1;
        let (v, forest) = self
            .forest
            .get_or_insert_with(|| (0, LoopForest::default()));
        LoopForest::build_into(cfg, dom, forest);
        *v = self.shape_version;
    }

    fn ensure_geometry(&mut self, func: &Function) {
        self.ensure_forest(func);
        if matches!(&self.geometry, Some((v, _)) if *v == self.shape_version) {
            return;
        }
        self.builds.geometry += 1;
        let cfg = &self.cfg.as_ref().expect("ensured").1;
        let forest = &self.forest.as_ref().expect("ensured").1;
        let (v, geom) = self.geometry.get_or_insert_with(|| {
            (
                0,
                LoopGeometry {
                    landing_pads: Vec::new(),
                    exit_blocks: Vec::new(),
                },
            )
        });
        LoopGeometry::compute_into(cfg, forest, geom);
        *v = self.shape_version;
    }

    fn ensure_live(&mut self, func: &Function) {
        self.ensure_cfg(func);
        if matches!(&self.live, Some((v, _)) if *v == self.body_version) {
            return;
        }
        self.builds.liveness += 1;
        let cfg = &self.cfg.as_ref().expect("ensured").1;
        if self.dense_dataflow {
            let live = liveness_dense_stats(func, cfg, &mut self.dataflow);
            self.live = Some((self.body_version, live));
            return;
        }
        match &self.dirty {
            DirtyBlocks::Blocks(blocks) if self.live_summaries.len() == func.blocks.len() => {
                self.live_summaries.rescan_blocks(func, blocks);
            }
            _ => self.live_summaries.rescan_all(func),
        }
        self.dirty = DirtyBlocks::Blocks(BTreeSet::new());
        let (v, live) = self.live.get_or_insert_with(|| {
            (
                0,
                Liveness {
                    live_in: Vec::new(),
                    live_out: Vec::new(),
                },
            )
        });
        liveness_sparse_into(
            func,
            cfg,
            &self.live_summaries,
            &mut self.dataflow,
            &mut self.live_scratch,
            live,
        );
        *v = self.body_version;
    }

    /// The CFG of `func` at its current version.
    pub fn cfg<'a>(&'a mut self, func: &Function) -> &'a Cfg {
        self.ensure_cfg(func);
        &self.cfg.as_ref().expect("ensured").1
    }

    /// The dominator tree.
    pub fn dom<'a>(&'a mut self, func: &Function) -> &'a DomTree {
        self.ensure_dom(func);
        &self.dom.as_ref().expect("ensured").1
    }

    /// CFG + dominator tree together.
    pub fn cfg_dom<'a>(&'a mut self, func: &Function) -> (&'a Cfg, &'a DomTree) {
        self.ensure_dom(func);
        (
            &self.cfg.as_ref().expect("ensured").1,
            &self.dom.as_ref().expect("ensured").1,
        )
    }

    /// CFG + loop forest together (what loop discovery passes need).
    pub fn cfg_forest<'a>(&'a mut self, func: &Function) -> (&'a Cfg, &'a LoopForest) {
        self.ensure_forest(func);
        (
            &self.cfg.as_ref().expect("ensured").1,
            &self.forest.as_ref().expect("ensured").1,
        )
    }

    /// CFG + dominator tree + loop forest.
    pub fn cfg_dom_forest<'a>(
        &'a mut self,
        func: &Function,
    ) -> (&'a Cfg, &'a DomTree, &'a LoopForest) {
        self.ensure_forest(func);
        (
            &self.cfg.as_ref().expect("ensured").1,
            &self.dom.as_ref().expect("ensured").1,
            &self.forest.as_ref().expect("ensured").1,
        )
    }

    /// CFG + loop forest + loop geometry: the normalized-loop view that
    /// promotion and LICM consume (previously `LoopNest`).
    ///
    /// # Panics
    ///
    /// Panics (in [`LoopGeometry::compute`]) if the function is not
    /// normalized.
    pub fn loop_view<'a>(
        &'a mut self,
        func: &Function,
    ) -> (&'a Cfg, &'a LoopForest, &'a LoopGeometry) {
        self.ensure_geometry(func);
        (
            &self.cfg.as_ref().expect("ensured").1,
            &self.forest.as_ref().expect("ensured").1,
            &self.geometry.as_ref().expect("ensured").1,
        )
    }

    /// Liveness at the current body version.
    pub fn liveness<'a>(&'a mut self, func: &Function) -> &'a Liveness {
        self.ensure_live(func);
        &self.live.as_ref().expect("ensured").1
    }

    /// CFG + liveness together (the allocator's working set).
    pub fn cfg_liveness<'a>(&'a mut self, func: &Function) -> (&'a Cfg, &'a Liveness) {
        self.ensure_live(func);
        (
            &self.cfg.as_ref().expect("ensured").1,
            &self.live.as_ref().expect("ensured").1,
        )
    }

    /// CFG + dominator tree + liveness (SSA construction's working set).
    pub fn cfg_dom_liveness<'a>(
        &'a mut self,
        func: &Function,
    ) -> (&'a Cfg, &'a DomTree, &'a Liveness) {
        self.ensure_dom(func);
        self.ensure_live(func);
        (
            &self.cfg.as_ref().expect("ensured").1,
            &self.dom.as_ref().expect("ensured").1,
            &self.live.as_ref().expect("ensured").1,
        )
    }

    /// Folds another cache's build and solver-work ledgers into this one
    /// (used by the pipeline's uncached baseline mode, which runs each
    /// pass against a throwaway cache but still reports total work).
    pub fn absorb_builds(&mut self, other: &FunctionAnalyses) {
        self.builds.add(&other.builds);
        self.dataflow.add(&other.dataflow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::FunctionBuilder;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn artifacts_are_cached_until_invalidated() {
        let f = diamond();
        let mut fa = FunctionAnalyses::new();
        fa.cfg(&f);
        fa.dom(&f);
        fa.liveness(&f);
        fa.cfg(&f);
        fa.dom(&f);
        fa.liveness(&f);
        assert_eq!(fa.builds.cfg, 1);
        assert_eq!(fa.builds.dom, 1);
        assert_eq!(fa.builds.liveness, 1);
    }

    #[test]
    fn body_change_invalidates_liveness_but_not_shape() {
        let f = diamond();
        let mut fa = FunctionAnalyses::new();
        fa.cfg(&f);
        fa.liveness(&f);
        fa.note_body_changed();
        fa.cfg(&f);
        fa.liveness(&f);
        assert_eq!(fa.builds.cfg, 1, "CFG survives a body-only change");
        assert_eq!(fa.builds.liveness, 2, "liveness rebuilt");
    }

    #[test]
    fn shape_change_invalidates_everything() {
        let f = diamond();
        let mut fa = FunctionAnalyses::new();
        fa.cfg_dom_forest(&f);
        fa.liveness(&f);
        fa.note_shape_changed();
        fa.cfg_dom_forest(&f);
        fa.liveness(&f);
        assert_eq!(fa.builds.cfg, 2);
        assert_eq!(fa.builds.dom, 2);
        assert_eq!(fa.builds.forest, 2);
        assert_eq!(fa.builds.liveness, 2);
    }

    #[test]
    fn block_scoped_invalidation_matches_full_rebuild() {
        use crate::liveness::liveness_dense;
        use ir::Instr;
        let mut f = diamond();
        let mut fa = FunctionAnalyses::new();
        fa.liveness(&f);
        // Edit block 1 only: define a fresh register and keep it live into
        // the join by storing it in the return slot... there is no return
        // slot here, so use a self-visible copy chain instead.
        let new = ir::Reg(f.next_reg);
        f.next_reg += 1;
        f.blocks[1]
            .instrs
            .insert(0, Instr::IConst { dst: new, value: 9 });
        fa.note_body_changed_blocks([ir::BlockId(1)]);
        let got = fa.liveness(&f).clone();
        let fresh = liveness_dense(&f, &Cfg::build(&f));
        assert_eq!(got, fresh);
        assert_eq!(fa.builds.liveness, 2);
    }

    #[test]
    fn body_version_advances_on_both_tiers() {
        let mut fa = FunctionAnalyses::new();
        let v0 = fa.body_version();
        fa.note_body_changed();
        let v1 = fa.body_version();
        fa.note_shape_changed();
        let v2 = fa.body_version();
        assert!(v0 < v1 && v1 < v2);
    }
}
