//! Control-flow graph extraction and traversal orders.

use ir::{BlockId, Function};

/// Explicit successor/predecessor lists plus traversal orders for one
/// function.
///
/// The graph is a snapshot: it must be recomputed after any transformation
/// that adds, removes, or retargets blocks.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors per block index.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors per block index.
    pub preds: Vec<Vec<BlockId>>,
    /// Entry block.
    pub entry: BlockId,
    /// Blocks in reverse postorder of the depth-first search from the entry.
    /// Unreachable blocks are absent.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo`, or `usize::MAX` if unreachable.
    pub rpo_index: Vec<usize>,
    /// DFS stack scratch for `build_into`; always empty between builds,
    /// kept only for its capacity.
    dfs: Vec<(BlockId, usize)>,
    /// Edge-list buffers parked by a shrinking rebuild, recycled when the
    /// block count grows again (see `util::resize_pooled`).
    spare: Vec<Vec<BlockId>>,
}

// Equality ignores the builder scratch (`dfs`, `spare`): two graphs that
// describe the same function compare equal regardless of build history.
impl PartialEq for Cfg {
    fn eq(&self, other: &Self) -> bool {
        self.succs == other.succs
            && self.preds == other.preds
            && self.entry == other.entry
            && self.rpo == other.rpo
            && self.rpo_index == other.rpo_index
    }
}

impl Eq for Cfg {}

impl Cfg {
    /// An empty graph, ready for [`Cfg::build_into`].
    pub fn empty(entry: BlockId) -> Cfg {
        Cfg {
            succs: Vec::new(),
            preds: Vec::new(),
            entry,
            rpo: Vec::new(),
            rpo_index: Vec::new(),
            dfs: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Builds the CFG of `func`.
    pub fn build(func: &Function) -> Cfg {
        let mut cfg = Cfg::empty(func.entry);
        cfg.build_into(func);
        cfg
    }

    /// Rebuilds `self` from `func` in place, reusing the edge lists and
    /// traversal-order buffers — the allocation-free rebuild path for a
    /// warm analysis shell. Equivalent to `*self = Cfg::build(func)`.
    pub fn build_into(&mut self, func: &Function) {
        let n = func.blocks.len();
        self.entry = func.entry;
        crate::util::resize_pooled(&mut self.succs, &mut self.spare, n, Vec::clear);
        crate::util::resize_pooled(&mut self.preds, &mut self.spare, n, Vec::clear);
        for id in func.block_ids() {
            for s in func.block(id).successors() {
                self.succs[id.index()].push(s);
                self.preds[s.index()].push(id);
            }
        }
        // Iterative DFS computing postorder into `rpo` (reversed at the
        // end). `rpo_index` doubles as the visited marker: `usize::MAX`
        // means unvisited, and every visited block's sentinel is
        // overwritten with its real position afterwards.
        self.rpo.clear();
        self.rpo_index.clear();
        self.rpo_index.resize(n, usize::MAX);
        debug_assert!(self.dfs.is_empty());
        self.dfs.push((func.entry, 0));
        self.rpo_index[func.entry.index()] = 0;
        while let Some(&mut (b, ref mut next)) = self.dfs.last_mut() {
            if *next < self.succs[b.index()].len() {
                let s = self.succs[b.index()][*next];
                *next += 1;
                if self.rpo_index[s.index()] == usize::MAX {
                    self.rpo_index[s.index()] = 0;
                    self.dfs.push((s, 0));
                }
            } else {
                self.rpo.push(b);
                self.dfs.pop();
            }
        }
        self.rpo.reverse();
        for (i, b) in self.rpo.iter().enumerate() {
            self.rpo_index[b.index()] = i;
        }
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if the function has no blocks (never the case for valid IL).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }

    /// Total number of edges between reachable blocks.
    pub fn edge_count(&self) -> usize {
        self.rpo.iter().map(|b| self.succs[b.index()].len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{FunctionBuilder, Reg};

    /// Diamond: B0 -> {B1, B2} -> B3.
    pub(crate) fn diamond() -> ir::Function {
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        b.branch(c, b1, b2);
        b.switch_to(b1);
        b.jump(b3);
        b.switch_to(b2);
        b.jump(b3);
        b.switch_to(b3);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn builds_diamond() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs[0].len(), 2);
        assert_eq!(cfg.preds[3].len(), 2);
        assert_eq!(cfg.rpo.first(), Some(&BlockId(0)));
        assert_eq!(cfg.rpo.last(), Some(&BlockId(3)));
        assert_eq!(cfg.edge_count(), 4);
    }

    #[test]
    fn rpo_orders_before_successors_in_dag() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        // In a DAG, rpo is a topological order.
        for b in &cfg.rpo {
            for s in &cfg.succs[b.index()] {
                assert!(cfg.rpo_index[b.index()] < cfg.rpo_index[s.index()]);
            }
        }
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut b = FunctionBuilder::new("f", 0);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        assert!(cfg.is_reachable(BlockId(0)));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo.len(), 1);
    }

    #[test]
    fn self_loop() {
        let mut b = FunctionBuilder::new("f", 0);
        let l = b.new_block();
        b.jump(l);
        b.switch_to(l);
        let c = Reg(0); // uninitialized but structurally fine
        b.branch(c, l, l);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        // branch with equal targets dedups to one successor
        assert_eq!(cfg.succs[l.index()], vec![l]);
        assert_eq!(cfg.preds[l.index()], vec![BlockId(0), l]);
    }
}
