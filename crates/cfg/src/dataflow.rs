//! The sparse worklist engine shared by the pipeline's dataflow solvers.
//!
//! Every solver in this tree used to be a dense iterate-to-fixpoint sweep:
//! `while changed { for every block { transfer } }`, re-evaluating every
//! block once per sweep even when only one block's input moved. The
//! [`BlockWorklist`] here replaces that pattern: blocks are (re)enqueued
//! only when their input state actually changed, and are popped in
//! analysis order — reverse postorder for forward problems, postorder for
//! backward ones — so a pop almost always sees its predecessors (resp.
//! successors) already up to date. On reducible graphs this visits each
//! block O(loop-nesting-depth) times instead of O(sweeps · blocks).
//!
//! The engine is deliberately minimal: it orders and deduplicates *block
//! ids*; lattices, transfer functions, and scratch buffers stay in the
//! client solver, which keeps each solver's inner loop free of dynamic
//! dispatch. What the engine does own is the [`DataflowStats`] ledger —
//! blocks visited, transfer evaluations, worklist pushes — which the
//! pipeline threads into `BENCH_pipeline.json` so a solver regressing to
//! dense-sweep behavior shows up as a counter jump, not a vague slowdown.

use crate::graph::Cfg;
use ir::BlockId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which way a dataflow problem propagates facts along CFG edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors (constprop, loadelim).
    Forward,
    /// Facts flow from successors to predecessors (liveness).
    Backward,
}

/// Counters for how much work a solver actually did. Mirrors the
/// [`crate::BuildCounts`] ledger one level down: where `BuildCounts` says
/// how often an analysis was built, `DataflowStats` says how much it cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataflowStats {
    /// Block (or, for the demand-driven interprocedural solver, function)
    /// evaluations: worklist pops, or sweep visits for a dense solver.
    pub blocks_visited: u64,
    /// Transfer-function applications at the solver's natural granularity:
    /// per instruction for constprop/loadelim/dce/points-to, per set
    /// equation for liveness.
    pub transfer_evals: u64,
    /// Worklist enqueue operations (always 0 for a dense solver).
    pub worklist_pushes: u64,
}

impl DataflowStats {
    /// Sum over all counters.
    pub fn total(&self) -> u64 {
        self.blocks_visited + self.transfer_evals + self.worklist_pushes
    }

    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &DataflowStats) {
        self.blocks_visited += other.blocks_visited;
        self.transfer_evals += other.transfer_evals;
        self.worklist_pushes += other.worklist_pushes;
    }
}

/// A priority worklist of basic blocks keyed on the cached CFG's reverse
/// postorder.
///
/// Pops are ordered (earliest reverse-postorder position first for
/// [`Direction::Forward`], latest first for [`Direction::Backward`]) and
/// deduplicated: pushing a block already queued is a no-op. Unreachable
/// blocks (absent from `cfg.rpo`) are silently rejected, matching the
/// dense solvers' habit of iterating `cfg.rpo` only. The ordering makes
/// the solve deterministic — a requirement the pipeline's byte-identical
/// output test enforces at every worker count — and near-optimal: on an
/// acyclic graph every block is popped exactly once.
#[derive(Debug)]
pub struct BlockWorklist {
    /// Pending (priority, block) pairs; smallest priority pops first.
    heap: BinaryHeap<Reverse<(usize, u32)>>,
    /// Whether each block index is currently enqueued.
    queued: Vec<bool>,
    /// Pop priority per block index; `usize::MAX` marks unreachable.
    prio: Vec<usize>,
}

impl Default for BlockWorklist {
    fn default() -> Self {
        BlockWorklist {
            heap: BinaryHeap::new(),
            queued: Vec::new(),
            prio: Vec::new(),
        }
    }
}

impl BlockWorklist {
    /// An unordered, capacity-less worklist; call [`BlockWorklist::reset`]
    /// before use. This is what a long-lived scratch arena stores.
    pub fn empty() -> BlockWorklist {
        BlockWorklist::default()
    }

    /// An empty worklist ordered for `dir` over `cfg`.
    pub fn new(cfg: &Cfg, dir: Direction) -> BlockWorklist {
        let n = cfg.len();
        let mut prio = vec![usize::MAX; n];
        let last = cfg.rpo.len().saturating_sub(1);
        for (i, b) in cfg.rpo.iter().enumerate() {
            prio[b.index()] = match dir {
                Direction::Forward => i,
                Direction::Backward => last - i,
            };
        }
        BlockWorklist {
            heap: BinaryHeap::with_capacity(cfg.rpo.len()),
            queued: vec![false; n],
            prio,
        }
    }

    /// Re-targets an existing (drained) worklist at `cfg` for `dir`,
    /// reusing the heap, queued bitmap, and priority table allocations.
    /// Equivalent to `*self = BlockWorklist::new(cfg, dir)` without the
    /// three frees/allocs — the scratch-arena path for solvers that run
    /// once per function per pass.
    pub fn reset(&mut self, cfg: &Cfg, dir: Direction) {
        let n = cfg.len();
        self.heap.clear();
        self.queued.clear();
        self.queued.resize(n, false);
        self.prio.clear();
        self.prio.resize(n, usize::MAX);
        let last = cfg.rpo.len().saturating_sub(1);
        for (i, b) in cfg.rpo.iter().enumerate() {
            self.prio[b.index()] = match dir {
                Direction::Forward => i,
                Direction::Backward => last - i,
            };
        }
    }

    /// Enqueues `b` unless it is already queued or unreachable. Counts the
    /// push in `stats`.
    pub fn push(&mut self, b: BlockId, stats: &mut DataflowStats) {
        let i = b.index();
        if self.prio[i] == usize::MAX || self.queued[i] {
            return;
        }
        self.queued[i] = true;
        stats.worklist_pushes += 1;
        self.heap.push(Reverse((self.prio[i], b.0)));
    }

    /// Enqueues every reachable block (the seed for problems whose facts
    /// can originate anywhere, like liveness).
    pub fn seed_all(&mut self, cfg: &Cfg, stats: &mut DataflowStats) {
        for &b in &cfg.rpo {
            self.push(b, stats);
        }
    }

    /// Pops the highest-priority block, counting the visit in `stats`.
    pub fn pop(&mut self, stats: &mut DataflowStats) -> Option<BlockId> {
        let Reverse((_, b)) = self.heap.pop()?;
        self.queued[b as usize] = false;
        stats.blocks_visited += 1;
        Some(BlockId(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::FunctionBuilder;

    fn diamond_cfg() -> Cfg {
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        b.branch(c, b1, b2);
        b.switch_to(b1);
        b.jump(b3);
        b.switch_to(b2);
        b.jump(b3);
        b.switch_to(b3);
        b.ret(None);
        Cfg::build(&b.finish())
    }

    #[test]
    fn forward_pops_in_rpo() {
        let cfg = diamond_cfg();
        let mut stats = DataflowStats::default();
        let mut wl = BlockWorklist::new(&cfg, Direction::Forward);
        wl.seed_all(&cfg, &mut stats);
        let mut order = Vec::new();
        while let Some(b) = wl.pop(&mut stats) {
            order.push(b);
        }
        assert_eq!(order, cfg.rpo);
        assert_eq!(stats.worklist_pushes, 4);
        assert_eq!(stats.blocks_visited, 4);
    }

    #[test]
    fn backward_pops_in_postorder() {
        let cfg = diamond_cfg();
        let mut stats = DataflowStats::default();
        let mut wl = BlockWorklist::new(&cfg, Direction::Backward);
        wl.seed_all(&cfg, &mut stats);
        let mut order = Vec::new();
        while let Some(b) = wl.pop(&mut stats) {
            order.push(b);
        }
        let rev: Vec<_> = cfg.rpo.iter().rev().copied().collect();
        assert_eq!(order, rev);
    }

    #[test]
    fn pushes_are_deduplicated_and_unreachable_rejected() {
        let mut b = FunctionBuilder::new("f", 0);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let cfg = Cfg::build(&b.finish());
        let mut stats = DataflowStats::default();
        let mut wl = BlockWorklist::new(&cfg, Direction::Forward);
        wl.push(cfg.entry, &mut stats);
        wl.push(cfg.entry, &mut stats);
        wl.push(dead, &mut stats);
        assert_eq!(stats.worklist_pushes, 1, "dup and unreachable rejected");
        assert_eq!(wl.pop(&mut stats), Some(cfg.entry));
        assert_eq!(wl.pop(&mut stats), None);
    }

    #[test]
    fn reset_reuses_like_new() {
        let cfg = diamond_cfg();
        let mut stats = DataflowStats::default();
        let mut wl = BlockWorklist::empty();
        for dir in [Direction::Forward, Direction::Backward] {
            wl.reset(&cfg, dir);
            wl.seed_all(&cfg, &mut stats);
            let mut order = Vec::new();
            while let Some(b) = wl.pop(&mut stats) {
                order.push(b);
            }
            let mut fresh = BlockWorklist::new(&cfg, dir);
            let mut s2 = DataflowStats::default();
            fresh.seed_all(&cfg, &mut s2);
            let mut expect = Vec::new();
            while let Some(b) = fresh.pop(&mut s2) {
                expect.push(b);
            }
            assert_eq!(order, expect);
        }
    }

    #[test]
    fn repush_after_pop_is_allowed() {
        let cfg = diamond_cfg();
        let mut stats = DataflowStats::default();
        let mut wl = BlockWorklist::new(&cfg, Direction::Forward);
        wl.push(cfg.entry, &mut stats);
        assert_eq!(wl.pop(&mut stats), Some(cfg.entry));
        wl.push(cfg.entry, &mut stats);
        assert_eq!(wl.pop(&mut stats), Some(cfg.entry));
        assert_eq!(stats.worklist_pushes, 2);
    }
}
