//! Crate-internal helpers for allocation-free artifact rebuilds.

/// Resizes `v` to `n` elements without ever dropping an element's backing
/// allocation: elements cut off by a shrink are parked in `spare`, and a
/// grow pulls parked elements back before constructing fresh ones. Every
/// surviving element is passed through `clear` afterwards, so the caller
/// sees `n` empty-but-warm slots.
///
/// This is the piece `truncate` + `resize_with` gets wrong for nested
/// buffers (`Vec<Vec<_>>`, `Vec<RegSet>`): a shrink at the start of a run
/// would free exactly the tail buffers the mid-run regrow (loop
/// normalization inserting blocks) is about to need again.
pub(crate) fn resize_pooled<T: Default>(
    v: &mut Vec<T>,
    spare: &mut Vec<T>,
    n: usize,
    mut clear: impl FnMut(&mut T),
) {
    while v.len() > n {
        spare.push(v.pop().expect("len checked"));
    }
    while v.len() < n {
        v.push(spare.pop().unwrap_or_default());
    }
    for x in v.iter_mut() {
        clear(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_parks_capacity_and_grow_reuses_it() {
        let mut v: Vec<Vec<u32>> = (0..4).map(|_| Vec::with_capacity(8)).collect();
        let mut spare = Vec::new();
        resize_pooled(&mut v, &mut spare, 2, Vec::clear);
        assert_eq!(v.len(), 2);
        assert_eq!(spare.len(), 2);
        resize_pooled(&mut v, &mut spare, 4, Vec::clear);
        assert_eq!(v.len(), 4);
        assert!(spare.is_empty());
        assert!(v.iter().all(|x| x.is_empty()));
        assert!(v.iter().all(|x| x.capacity() >= 8));
    }
}
