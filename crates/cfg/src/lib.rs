//! Control-flow analysis for the register-promotion compiler: CFG
//! extraction, dominators (Lengauer–Tarjan and the iterative algorithm),
//! natural loops with a nesting forest, and loop normalization (landing
//! pads + dedicated exit blocks) exactly as the paper's compiler constructs
//! them.
//!
//! ```
//! use cfg::{Cfg, DomTree, LoopForest};
//!
//! let module = ir::parse_module(r#"
//! func @main(0) {
//! B0:
//!   r0 = iconst 10
//!   jump B1
//! B1:
//!   r1 = iconst 1
//!   r0 = sub r0, r1
//!   branch r0, B1, B2
//! B2:
//!   ret
//! }
//! "#)?;
//! let f = module.func(module.main().unwrap());
//! let g = Cfg::build(f);
//! let dom = DomTree::lengauer_tarjan(&g);
//! let loops = LoopForest::build(&g, &dom);
//! assert_eq!(loops.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod analyses;
mod dataflow;
mod dom;
mod graph;
mod liveness;
mod loops;
mod normalize;
mod util;

pub use analyses::{BuildCounts, FunctionAnalyses, LoopGeometry};
pub use dataflow::{BlockWorklist, DataflowStats, Direction};
pub use dom::{DomScratch, DomTree};
pub use graph::Cfg;
pub use liveness::{
    for_each_instr_backwards, for_each_instr_backwards_in, liveness, liveness_dense,
    liveness_dense_stats, liveness_sparse, liveness_sparse_into, LiveScratch, LiveSummaries,
    Liveness, RegSet,
};
pub use loops::{Loop, LoopForest, LoopId};
pub use normalize::{
    normalize_loops, normalize_loops_in, remove_unreachable_blocks, remove_unreachable_blocks_in,
    LoopNest,
};
