//! Backward liveness analysis over virtual registers.
//!
//! The solver is a sparse backward worklist over the [`BlockWorklist`]
//! engine: blocks are popped in postorder and re-enqueued (predecessors
//! only) when their live-in set actually changes. The per-block use/def
//! summaries live in [`LiveSummaries`] so the analysis cache can keep them
//! across regalloc's spill rounds and rescan only the blocks a round
//! actually touched; the boundary in/out sets are always re-solved from
//! empty, which keeps the result the exact least fixpoint (a warm-started
//! boundary set could carry stale bits around a loop forever). The old
//! dense iterate-to-fixpoint sweep survives as [`liveness_dense`] — the
//! benchmark's baseline and the differential tests' oracle.

use crate::dataflow::{BlockWorklist, DataflowStats, Direction};
use crate::graph::Cfg;
use ir::{Function, Instr, Reg};
use std::collections::BTreeSet;

/// A dense bitset over virtual registers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegSet {
    bits: Vec<u64>,
}

impl RegSet {
    /// An empty set sized for `n` registers.
    pub fn new(n: usize) -> Self {
        RegSet {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Empties the set and resizes it for `n` registers in place, keeping
    /// the word buffer's capacity — the reuse path for solver scratch that
    /// outlives one function.
    pub fn reset(&mut self, n: usize) {
        self.bits.clear();
        self.bits.resize(n.div_ceil(64), 0);
    }

    /// Inserts `r`; returns true if newly inserted.
    pub fn insert(&mut self, r: Reg) -> bool {
        let w = r.index() / 64;
        let m = 1u64 << (r.index() % 64);
        let was = self.bits[w] & m != 0;
        self.bits[w] |= m;
        !was
    }

    /// Removes `r`.
    pub fn remove(&mut self, r: Reg) {
        let w = r.index() / 64;
        self.bits[w] &= !(1u64 << (r.index() % 64));
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        self.bits[r.index() / 64] & (1u64 << (r.index() % 64)) != 0
    }

    /// In-place union; returns true if `self` grew. When `other` tracks
    /// more registers than `self`, only the overlapping words are merged.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut grew = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let new = *a | *b;
            grew |= new != *a;
            *a = new;
        }
        grew
    }

    /// Empties the set without changing its capacity.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Makes `self` a copy of `other`, adopting its size.
    pub fn copy_from(&mut self, other: &RegSet) {
        self.bits.clear();
        self.bits.extend_from_slice(&other.bits);
    }

    /// Iterates members.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64).filter_map(move |i| {
                if bits & (1u64 << i) != 0 {
                    Some(Reg((w * 64 + i) as u32))
                } else {
                    None
                }
            })
        })
    }

    /// The backing words, 64 registers per word, lowest register in bit 0
    /// of word 0. Exposed so dense consumers (the interference-graph
    /// builder) can union a whole live set into their own rows word-wise
    /// instead of iterating members.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }
}

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    /// Live-in per block.
    pub live_in: Vec<RegSet>,
    /// Live-out per block.
    pub live_out: Vec<RegSet>,
}

/// Cached per-block (upward-exposed use, def) summaries — the only part of
/// a liveness solve that reads instructions. The analysis cache keeps one
/// of these per function and rescans only dirty blocks between solves.
///
/// A summary scanned before `next_reg` grew is shorter than the current
/// register space; that is fine, because a block that was not touched
/// cannot mention a register that did not exist when it was scanned, and
/// [`RegSet::union_with`] merges only the overlapping words.
#[derive(Debug, Clone, Default)]
pub struct LiveSummaries {
    use_s: Vec<RegSet>,
    def_s: Vec<RegSet>,
    /// Sets parked by a shrinking rescan, recycled when the block count
    /// grows again (see `util::resize_pooled`).
    spare: Vec<RegSet>,
}

impl LiveSummaries {
    /// Number of blocks summarized.
    pub fn len(&self) -> usize {
        self.use_s.len()
    }

    /// True if no blocks are summarized.
    pub fn is_empty(&self) -> bool {
        self.use_s.is_empty()
    }

    fn scan_into(func: &Function, bi: usize, nregs: usize, u: &mut RegSet, d: &mut RegSet) {
        u.reset(nregs);
        d.reset(nregs);
        for instr in &func.blocks[bi].instrs {
            instr.visit_uses(|r| {
                if !d.contains(r) {
                    u.insert(r);
                }
            });
            if let Some(r) = instr.def() {
                d.insert(r);
            }
        }
    }

    /// Rescans every block of `func`, reusing the per-block sets in place.
    pub fn rescan_all(&mut self, func: &Function) {
        let nregs = func.next_reg as usize;
        let n = func.blocks.len();
        reset_sets(&mut self.use_s, &mut self.spare, n, nregs);
        reset_sets(&mut self.def_s, &mut self.spare, n, nregs);
        for bi in 0..n {
            Self::scan_into(func, bi, nregs, &mut self.use_s[bi], &mut self.def_s[bi]);
        }
    }

    /// Rescans only the given block indices, leaving the rest untouched.
    /// The block count must match the function (shape changes force a
    /// [`rescan_all`](Self::rescan_all)).
    pub fn rescan_blocks(&mut self, func: &Function, blocks: &BTreeSet<usize>) {
        debug_assert_eq!(self.use_s.len(), func.blocks.len());
        let nregs = func.next_reg as usize;
        for &bi in blocks {
            Self::scan_into(func, bi, nregs, &mut self.use_s[bi], &mut self.def_s[bi]);
        }
    }
}

/// Resets a per-block set vector to `n` empty sets over `nregs` registers,
/// reusing the outer vector and every set's word buffer; sets cut off by a
/// shrink are parked in `spare` and recycled on the next grow.
fn reset_sets(v: &mut Vec<RegSet>, spare: &mut Vec<RegSet>, n: usize, nregs: usize) {
    crate::util::resize_pooled(v, spare, n, |s| s.reset(nregs));
}

/// Computes liveness for `func` with the sparse backward worklist solver.
pub fn liveness(func: &Function, cfg: &Cfg) -> Liveness {
    let mut summaries = LiveSummaries::default();
    summaries.rescan_all(func);
    liveness_sparse(func, cfg, &summaries, &mut DataflowStats::default())
}

/// The sparse backward solve over prebuilt summaries. Boundary sets start
/// empty, so the result is the least fixpoint regardless of how stale the
/// previous solve was.
pub fn liveness_sparse(
    func: &Function,
    cfg: &Cfg,
    summaries: &LiveSummaries,
    stats: &mut DataflowStats,
) -> Liveness {
    let mut out = Liveness {
        live_in: Vec::new(),
        live_out: Vec::new(),
    };
    liveness_sparse_into(
        func,
        cfg,
        summaries,
        stats,
        &mut LiveScratch::default(),
        &mut out,
    );
    out
}

/// Reusable working memory for [`liveness_sparse_into`]: the block
/// worklist and the candidate live-in set. The analysis cache keeps one
/// per function shell so repeat solves allocate nothing.
#[derive(Debug, Default)]
pub struct LiveScratch {
    wl: BlockWorklist,
    inn: RegSet,
    /// Parked live-in/live-out sets from shrinking solves (see
    /// `util::resize_pooled`).
    spare: Vec<RegSet>,
}

/// [`liveness_sparse`] writing into an existing [`Liveness`], reusing its
/// per-block sets and `scratch`'s worklist — the allocation-free rebuild
/// path for a warm analysis shell.
pub fn liveness_sparse_into(
    func: &Function,
    cfg: &Cfg,
    summaries: &LiveSummaries,
    stats: &mut DataflowStats,
    scratch: &mut LiveScratch,
    result: &mut Liveness,
) {
    let n = func.blocks.len();
    let nregs = func.next_reg as usize;
    debug_assert_eq!(summaries.len(), n);
    reset_sets(&mut result.live_in, &mut scratch.spare, n, nregs);
    reset_sets(&mut result.live_out, &mut scratch.spare, n, nregs);
    let live_in = &mut result.live_in;
    let live_out = &mut result.live_out;
    let wl = &mut scratch.wl;
    wl.reset(cfg, Direction::Backward);
    wl.seed_all(cfg, stats);
    // Scratch for the candidate live-in; swapped into place on change.
    let inn = &mut scratch.inn;
    inn.reset(nregs);
    while let Some(b) = wl.pop(stats) {
        let bi = b.index();
        stats.transfer_evals += 1;
        // out = ∪ in[succs]
        let out = &mut live_out[bi];
        out.clear();
        for s in &cfg.succs[bi] {
            out.union_with(&live_in[s.index()]);
        }
        // in = use ∪ (out − def)
        inn.copy_from(out);
        for r in summaries.def_s[bi].iter() {
            inn.remove(r);
        }
        inn.union_with(&summaries.use_s[bi]);
        if *inn != live_in[bi] {
            std::mem::swap(inn, &mut live_in[bi]);
            for &p in &cfg.preds[bi] {
                wl.push(p, stats);
            }
        }
    }
}

/// The dense iterate-to-fixpoint solver, kept as the measured baseline and
/// differential-test oracle for the sparse solver.
pub fn liveness_dense(func: &Function, cfg: &Cfg) -> Liveness {
    liveness_dense_stats(func, cfg, &mut DataflowStats::default())
}

/// [`liveness_dense`] with work counters.
pub fn liveness_dense_stats(func: &Function, cfg: &Cfg, stats: &mut DataflowStats) -> Liveness {
    let n = func.blocks.len();
    let nregs = func.next_reg as usize;
    let mut summaries = LiveSummaries::default();
    summaries.rescan_all(func);
    let mut live_in = vec![RegSet::new(nregs); n];
    let mut live_out = vec![RegSet::new(nregs); n];
    let mut changed = true;
    while changed {
        changed = false;
        // Reverse postorder backwards approximates postorder.
        for &b in cfg.rpo.iter().rev() {
            let bi = b.index();
            stats.blocks_visited += 1;
            stats.transfer_evals += 1;
            let mut out = RegSet::new(nregs);
            for s in &cfg.succs[bi] {
                out.union_with(&live_in[s.index()]);
            }
            if out != live_out[bi] {
                live_out[bi] = out;
            }
            // in = use ∪ (out − def)
            let mut inn = live_out[bi].clone();
            for r in summaries.def_s[bi].iter() {
                inn.remove(r);
            }
            inn.union_with(&summaries.use_s[bi]);
            if inn != live_in[bi] {
                live_in[bi] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Walks a block backwards invoking `visit(instr_index, instr, live_after)`
/// with the set of registers live *after* each instruction.
pub fn for_each_instr_backwards(
    func: &Function,
    live: &Liveness,
    block: ir::BlockId,
    visit: impl FnMut(usize, &Instr, &RegSet),
) {
    let mut current = RegSet::new(0);
    for_each_instr_backwards_in(func, live, block, &mut current, visit);
}

/// [`for_each_instr_backwards`] with a caller-owned cursor set, so a loop
/// over many blocks (the interference-graph build) clones no `RegSet` per
/// block: `current`'s backing words are reused across calls.
pub fn for_each_instr_backwards_in(
    func: &Function,
    live: &Liveness,
    block: ir::BlockId,
    current: &mut RegSet,
    mut visit: impl FnMut(usize, &Instr, &RegSet),
) {
    current.copy_from(&live.live_out[block.index()]);
    for (i, instr) in func.block(block).instrs.iter().enumerate().rev() {
        visit(i, instr, current);
        if let Some(d) = instr.def() {
            current.remove(d);
        }
        instr.visit_uses(|r| {
            current.insert(r);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{BinOp, FunctionBuilder};

    #[test]
    fn regset_basics() {
        let mut s = RegSet::new(130);
        assert!(s.insert(Reg(0)));
        assert!(s.insert(Reg(129)));
        assert!(!s.insert(Reg(0)));
        assert!(s.contains(Reg(129)));
        assert_eq!(s.len(), 2);
        s.remove(Reg(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Reg(129)]);
    }

    #[test]
    fn loop_carried_liveness() {
        // r0 = 10; loop: r0 = r0 - r1; branch r0 loop, exit; exit: ret r0
        let mut b = FunctionBuilder::new("f", 0);
        let r0 = b.iconst(10);
        let r1 = b.iconst(1);
        let l = b.new_block();
        let e = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.emit(Instr::Binary {
            op: BinOp::Sub,
            dst: r0,
            lhs: r0,
            rhs: r1,
        });
        b.branch(r0, l, e);
        b.switch_to(e);
        b.ret(Some(r0));
        let mut f = b.finish();
        f.has_result = true;
        let cfg = Cfg::build(&f);
        let live = liveness(&f, &cfg);
        // r0 and r1 are live around the loop.
        assert!(live.live_in[l.index()].contains(r0));
        assert!(live.live_in[l.index()].contains(r1));
        assert!(
            live.live_out[l.index()].contains(r1),
            "r1 needed next iteration"
        );
        assert!(!live.live_out[e.index()].contains(r0));
    }

    #[test]
    fn sparse_agrees_with_dense_on_loops() {
        let mut b = FunctionBuilder::new("f", 2);
        let r0 = b.iconst(10);
        let r1 = b.iconst(1);
        let l = b.new_block();
        let e = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.emit(Instr::Binary {
            op: BinOp::Sub,
            dst: r0,
            lhs: r0,
            rhs: r1,
        });
        b.branch(r0, l, e);
        b.switch_to(e);
        b.ret(Some(r0));
        let mut f = b.finish();
        f.has_result = true;
        let cfg = Cfg::build(&f);
        assert_eq!(liveness(&f, &cfg), liveness_dense(&f, &cfg));
    }

    #[test]
    fn sparse_does_less_transfer_work_than_dense_on_a_loop() {
        // A loop forces the dense solver through an extra confirming sweep
        // of every block; the sparse solver re-pops only the loop blocks.
        let mut b = FunctionBuilder::new("f", 0);
        let r0 = b.iconst(10);
        let r1 = b.iconst(1);
        let l = b.new_block();
        let e = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.emit(Instr::Binary {
            op: BinOp::Sub,
            dst: r0,
            lhs: r0,
            rhs: r1,
        });
        b.branch(r0, l, e);
        b.switch_to(e);
        b.ret(Some(r0));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let mut summaries = LiveSummaries::default();
        summaries.rescan_all(&f);
        let mut sparse = DataflowStats::default();
        liveness_sparse(&f, &cfg, &summaries, &mut sparse);
        let mut dense = DataflowStats::default();
        liveness_dense_stats(&f, &cfg, &mut dense);
        assert!(
            sparse.transfer_evals < dense.transfer_evals,
            "sparse {} >= dense {}",
            sparse.transfer_evals,
            dense.transfer_evals
        );
    }

    #[test]
    fn partial_rescan_tracks_an_edit() {
        let mut b = FunctionBuilder::new("f", 0);
        let a = b.iconst(1);
        let c = b.iconst(2);
        let d = b.binary(BinOp::Add, a, c);
        b.ret(Some(d));
        let mut f = b.finish();
        f.has_result = true;
        let cfg = Cfg::build(&f);
        let mut summaries = LiveSummaries::default();
        summaries.rescan_all(&f);
        // Edit block 0: append a new register definition and use it in ret.
        let new = Reg(f.next_reg);
        f.next_reg += 1;
        let last = f.blocks[0].instrs.len() - 1;
        f.blocks[0]
            .instrs
            .insert(last, Instr::Copy { dst: new, src: d });
        f.blocks[0].instrs[last + 1] = Instr::Ret { value: Some(new) };
        summaries.rescan_blocks(&f, &BTreeSet::from([0]));
        let got = liveness_sparse(&f, &cfg, &summaries, &mut DataflowStats::default());
        assert_eq!(got, liveness_dense(&f, &cfg));
    }

    #[test]
    fn backward_walk_reports_live_after() {
        let mut b = FunctionBuilder::new("f", 0);
        let a = b.iconst(1);
        let c = b.iconst(2);
        let d = b.binary(BinOp::Add, a, c);
        b.ret(Some(d));
        let mut f = b.finish();
        f.has_result = true;
        let cfg = Cfg::build(&f);
        let live = liveness(&f, &cfg);
        let mut seen = Vec::new();
        for_each_instr_backwards(&f, &live, ir::BlockId(0), |i, _, after| {
            seen.push((i, after.len()));
        });
        // After the add, only d is live; after the first iconst, a is live
        // (c not yet defined walking forward, but we're walking backward).
        assert_eq!(seen[0], (3, 0)); // after ret
        assert_eq!(seen[1], (2, 1)); // after add: {d}
        assert_eq!(seen[2], (1, 2)); // after second iconst: {a, c}
        assert_eq!(seen[3], (0, 1)); // after first iconst: {a}
    }
}
