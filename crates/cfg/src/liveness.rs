//! Backward liveness analysis over virtual registers.

use crate::graph::Cfg;
use ir::{Function, Instr, Reg};

/// A dense bitset over virtual registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSet {
    bits: Vec<u64>,
}

impl RegSet {
    /// An empty set sized for `n` registers.
    pub fn new(n: usize) -> Self {
        RegSet {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `r`; returns true if newly inserted.
    pub fn insert(&mut self, r: Reg) -> bool {
        let w = r.index() / 64;
        let m = 1u64 << (r.index() % 64);
        let was = self.bits[w] & m != 0;
        self.bits[w] |= m;
        !was
    }

    /// Removes `r`.
    pub fn remove(&mut self, r: Reg) {
        let w = r.index() / 64;
        self.bits[w] &= !(1u64 << (r.index() % 64));
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        self.bits[r.index() / 64] & (1u64 << (r.index() % 64)) != 0
    }

    /// In-place union; returns true if `self` grew.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut grew = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let new = *a | *b;
            grew |= new != *a;
            *a = new;
        }
        grew
    }

    /// Iterates members.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64).filter_map(move |i| {
                if bits & (1u64 << i) != 0 {
                    Some(Reg((w * 64 + i) as u32))
                } else {
                    None
                }
            })
        })
    }

    /// The backing words, 64 registers per word, lowest register in bit 0
    /// of word 0. Exposed so dense consumers (the interference-graph
    /// builder) can union a whole live set into their own rows word-wise
    /// instead of iterating members.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }
}

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    /// Live-in per block.
    pub live_in: Vec<RegSet>,
    /// Live-out per block.
    pub live_out: Vec<RegSet>,
}

/// Computes liveness for `func`.
pub fn liveness(func: &Function, cfg: &Cfg) -> Liveness {
    let n = func.blocks.len();
    let nregs = func.next_reg as usize;
    // Per-block use/def summaries (upward-exposed uses).
    let mut use_s: Vec<RegSet> = Vec::with_capacity(n);
    let mut def_s: Vec<RegSet> = Vec::with_capacity(n);
    for block in &func.blocks {
        let mut u = RegSet::new(nregs);
        let mut d = RegSet::new(nregs);
        for instr in &block.instrs {
            instr.visit_uses(|r| {
                if !d.contains(r) {
                    u.insert(r);
                }
            });
            if let Some(r) = instr.def() {
                d.insert(r);
            }
        }
        use_s.push(u);
        def_s.push(d);
    }
    let mut live_in = vec![RegSet::new(nregs); n];
    let mut live_out = vec![RegSet::new(nregs); n];
    let mut changed = true;
    while changed {
        changed = false;
        // Reverse postorder backwards approximates postorder.
        for &b in cfg.rpo.iter().rev() {
            let bi = b.index();
            let mut out = RegSet::new(nregs);
            for s in &cfg.succs[bi] {
                out.union_with(&live_in[s.index()]);
            }
            if out != live_out[bi] {
                live_out[bi] = out;
            }
            // in = use ∪ (out − def)
            let mut inn = live_out[bi].clone();
            for r in def_s[bi].iter() {
                inn.remove(r);
            }
            inn.union_with(&use_s[bi]);
            if inn != live_in[bi] {
                live_in[bi] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Walks a block backwards invoking `visit(instr_index, instr, live_after)`
/// with the set of registers live *after* each instruction.
pub fn for_each_instr_backwards(
    func: &Function,
    live: &Liveness,
    block: ir::BlockId,
    mut visit: impl FnMut(usize, &Instr, &RegSet),
) {
    let mut current = live.live_out[block.index()].clone();
    for (i, instr) in func.block(block).instrs.iter().enumerate().rev() {
        visit(i, instr, &current);
        if let Some(d) = instr.def() {
            current.remove(d);
        }
        instr.visit_uses(|r| {
            current.insert(r);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{BinOp, FunctionBuilder};

    #[test]
    fn regset_basics() {
        let mut s = RegSet::new(130);
        assert!(s.insert(Reg(0)));
        assert!(s.insert(Reg(129)));
        assert!(!s.insert(Reg(0)));
        assert!(s.contains(Reg(129)));
        assert_eq!(s.len(), 2);
        s.remove(Reg(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Reg(129)]);
    }

    #[test]
    fn loop_carried_liveness() {
        // r0 = 10; loop: r0 = r0 - r1; branch r0 loop, exit; exit: ret r0
        let mut b = FunctionBuilder::new("f", 0);
        let r0 = b.iconst(10);
        let r1 = b.iconst(1);
        let l = b.new_block();
        let e = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.emit(Instr::Binary {
            op: BinOp::Sub,
            dst: r0,
            lhs: r0,
            rhs: r1,
        });
        b.branch(r0, l, e);
        b.switch_to(e);
        b.ret(Some(r0));
        let mut f = b.finish();
        f.has_result = true;
        let cfg = Cfg::build(&f);
        let live = liveness(&f, &cfg);
        // r0 and r1 are live around the loop.
        assert!(live.live_in[l.index()].contains(r0));
        assert!(live.live_in[l.index()].contains(r1));
        assert!(
            live.live_out[l.index()].contains(r1),
            "r1 needed next iteration"
        );
        assert!(!live.live_out[e.index()].contains(r0));
    }

    #[test]
    fn backward_walk_reports_live_after() {
        let mut b = FunctionBuilder::new("f", 0);
        let a = b.iconst(1);
        let c = b.iconst(2);
        let d = b.binary(BinOp::Add, a, c);
        b.ret(Some(d));
        let mut f = b.finish();
        f.has_result = true;
        let cfg = Cfg::build(&f);
        let live = liveness(&f, &cfg);
        let mut seen = Vec::new();
        for_each_instr_backwards(&f, &live, ir::BlockId(0), |i, _, after| {
            seen.push((i, after.len()));
        });
        // After the add, only d is live; after the first iconst, a is live
        // (c not yet defined walking forward, but we're walking backward).
        assert_eq!(seen[0], (3, 0)); // after ret
        assert_eq!(seen[1], (2, 1)); // after add: {d}
        assert_eq!(seen[2], (1, 2)); // after second iconst: {a, c}
        assert_eq!(seen[3], (0, 1)); // after first iconst: {a}
    }
}
