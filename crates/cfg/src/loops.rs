//! Natural-loop detection and the loop nesting forest.
//!
//! The promotion algorithm analyzes one loop at a time, innermost first, and
//! needs for each loop: its blocks, its parent in the nesting forest, its
//! landing pad (unique preheader) and its exit blocks. Loops are identified
//! from back edges `t -> h` where `h` dominates `t`; back edges sharing a
//! header are merged into one loop, as is conventional.

use crate::dom::DomTree;
use crate::graph::Cfg;
use ir::BlockId;
use std::collections::BTreeSet;

/// Index of a loop in a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl LoopId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth (outermost loops have depth 1).
    pub depth: usize,
    /// Exit edges `(from inside, to outside)`.
    pub exit_edges: Vec<(BlockId, BlockId)>,
}

impl Loop {
    /// True if `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Distinct exit-edge targets.
    pub fn exit_targets(&self) -> BTreeSet<BlockId> {
        self.exit_edges.iter().map(|&(_, t)| t).collect()
    }
}

/// All natural loops of one function, with nesting structure.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// The loops; inner loops always have larger depth than their parents.
    pub loops: Vec<Loop>,
    /// Innermost loop containing each block, if any.
    pub block_loop: Vec<Option<LoopId>>,
    /// Builder scratch (back-edge headers, bodies under construction, the
    /// walk worklist, and the size-sort permutation), kept only for its
    /// capacity between [`LoopForest::build_into`] calls.
    scratch: ForestScratch,
}

/// See [`LoopForest::scratch`]. Contents between builds are stale by
/// design; equality of forests deliberately ignores this.
#[derive(Debug, Clone, Default)]
struct ForestScratch {
    headers: Vec<BlockId>,
    bodies: Vec<BTreeSet<BlockId>>,
    work: Vec<BlockId>,
    order: Vec<usize>,
}

impl PartialEq for LoopForest {
    fn eq(&self, other: &Self) -> bool {
        self.loops == other.loops && self.block_loop == other.block_loop
    }
}

impl Eq for LoopForest {}

impl LoopForest {
    /// Detects natural loops in `cfg` using dominator information.
    ///
    /// Irreducible cycles (cycles whose entry is not a dominator) produce no
    /// loops; the promoter simply sees no promotion opportunity there.
    pub fn build(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let mut out = LoopForest::default();
        LoopForest::build_into(cfg, dom, &mut out);
        out
    }

    /// [`build`](Self::build) writing into an existing forest, reusing its
    /// outer vectors — the reduced-allocation rebuild path for a warm
    /// analysis shell. (Per-loop `BTreeSet` bodies are rebuilt node by
    /// node; they are small.)
    pub fn build_into(cfg: &Cfg, dom: &DomTree, out: &mut LoopForest) {
        // 1. Find back edges and collect loop bodies per header.
        let ForestScratch {
            headers,
            bodies,
            work,
            order,
        } = &mut out.scratch;
        headers.clear();
        // Stale (empty, `mem::take`n) sets from the previous build are
        // recycled as slots; `BTreeSet` holds no capacity, so only the
        // outer vector's buffer is preserved.
        bodies.clear();
        for &b in &cfg.rpo {
            for &s in &cfg.succs[b.index()] {
                if dom.dominates(s, b) {
                    // Back edge b -> s.
                    let idx = match headers.iter().position(|&h| h == s) {
                        Some(i) => i,
                        None => {
                            headers.push(s);
                            bodies.push(BTreeSet::from([s]));
                            headers.len() - 1
                        }
                    };
                    // Walk predecessors from the latch up to the header.
                    let body = &mut bodies[idx];
                    work.clear();
                    work.push(b);
                    while let Some(x) = work.pop() {
                        if body.insert(x) {
                            for &p in &cfg.preds[x.index()] {
                                if cfg.is_reachable(p) && !body.contains(&p) {
                                    work.push(p);
                                }
                            }
                        }
                    }
                }
            }
        }
        // 2. Sort loops by body size ascending so children precede parents,
        //    then derive nesting: the parent of a loop is the smallest loop
        //    strictly containing its header.
        order.clear();
        order.extend(0..headers.len());
        order.sort_by_key(|&i| bodies[i].len());
        let loops = &mut out.loops;
        // Overwrite surviving slots in place so each loop's `children` and
        // `exit_edges` buffers keep their capacity across builds.
        for l in loops.iter_mut() {
            l.children.clear();
            l.exit_edges.clear();
        }
        loops.truncate(order.len());
        let reused = loops.len();
        for (slot, &i) in loops.iter_mut().zip(order.iter()) {
            slot.header = headers[i];
            slot.blocks = std::mem::take(&mut bodies[i]);
            slot.parent = None;
            slot.depth = 0;
        }
        loops.reserve(order.len() - reused);
        for &i in &order[reused..] {
            loops.push(Loop {
                header: headers[i],
                blocks: std::mem::take(&mut bodies[i]),
                parent: None,
                children: Vec::new(),
                depth: 0,
                exit_edges: Vec::new(),
            });
        }
        // Parent = the smallest other loop that contains this loop's header
        // and is strictly larger.
        for i in 0..loops.len() {
            for j in 0..loops.len() {
                if i == j {
                    continue;
                }
                if loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[j].blocks.contains(&loops[i].header)
                {
                    // Candidate parent; keep the smallest.
                    match loops[i].parent {
                        Some(p) if loops[p.index()].blocks.len() <= loops[j].blocks.len() => {}
                        _ => loops[i].parent = Some(LoopId(j as u32)),
                    }
                }
            }
        }
        for i in 0..loops.len() {
            if let Some(p) = loops[i].parent {
                loops[p.index()].children.push(LoopId(i as u32));
            }
        }
        // Depths: walk parent chains.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }
        // Exit edges.
        for l in loops.iter_mut() {
            for &b in &l.blocks {
                for &s in &cfg.succs[b.index()] {
                    if !l.blocks.contains(&s) {
                        l.exit_edges.push((b, s));
                    }
                }
            }
        }
        // Innermost loop per block = the smallest loop containing it.
        let block_loop = &mut out.block_loop;
        block_loop.clear();
        block_loop.resize(cfg.len(), None);
        for (li, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                let slot = &mut block_loop[b.index()];
                match *slot {
                    Some(old) if loops[old.index()].blocks.len() <= l.blocks.len() => {}
                    _ => *slot = Some(LoopId(li as u32)),
                }
            }
        }
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the function is loop-free.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Access a loop.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// Loop ids ordered innermost-first (children before parents).
    pub fn inner_to_outer(&self) -> Vec<LoopId> {
        let mut ids: Vec<LoopId> = (0..self.loops.len() as u32).map(LoopId).collect();
        ids.sort_by_key(|id| std::cmp::Reverse(self.loops[id.index()].depth));
        ids
    }

    /// Loop ids ordered outermost-first (parents before children).
    pub fn outer_to_inner(&self) -> Vec<LoopId> {
        let mut ids = self.inner_to_outer();
        ids.reverse();
        ids
    }

    /// The loop whose header is `h`, if any.
    pub fn loop_with_header(&self, h: BlockId) -> Option<LoopId> {
        self.loops
            .iter()
            .position(|l| l.header == h)
            .map(|i| LoopId(i as u32))
    }

    /// Maximum number of exit edges over all loops (the paper's parameter
    /// `X` in the complexity analysis).
    pub fn max_exits(&self) -> usize {
        self.loops
            .iter()
            .map(|l| l.exit_edges.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Function, FunctionBuilder};

    /// while-loop: B0 -> B1(header) -> {B2(body) -> B1, B3(exit)}
    fn single_loop() -> Function {
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    /// Two nested loops: outer header B1, inner header B2.
    fn nested_loops() -> Function {
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let outer_h = b.new_block(); // B1
        let inner_h = b.new_block(); // B2
        let inner_body = b.new_block(); // B3
        let outer_latch = b.new_block(); // B4
        let exit = b.new_block(); // B5
        b.jump(outer_h);
        b.switch_to(outer_h);
        b.branch(c, inner_h, exit);
        b.switch_to(inner_h);
        b.branch(c, inner_body, outer_latch);
        b.switch_to(inner_body);
        b.jump(inner_h);
        b.switch_to(outer_latch);
        b.jump(outer_h);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    fn forest(f: &Function) -> LoopForest {
        let cfg = Cfg::build(f);
        let dom = DomTree::lengauer_tarjan(&cfg);
        LoopForest::build(&cfg, &dom)
    }

    #[test]
    fn finds_single_loop() {
        let f = single_loop();
        let lf = forest(&f);
        assert_eq!(lf.len(), 1);
        let l = &lf.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.blocks, BTreeSet::from([BlockId(1), BlockId(2)]));
        assert_eq!(l.depth, 1);
        assert_eq!(l.exit_edges, vec![(BlockId(1), BlockId(3))]);
    }

    #[test]
    fn finds_nested_loops() {
        let f = nested_loops();
        let lf = forest(&f);
        assert_eq!(lf.len(), 2);
        let outer = lf.loop_with_header(BlockId(1)).unwrap();
        let inner = lf.loop_with_header(BlockId(2)).unwrap();
        assert_eq!(lf.get(inner).parent, Some(outer));
        assert_eq!(lf.get(outer).parent, None);
        assert_eq!(lf.get(inner).depth, 2);
        assert_eq!(lf.get(outer).depth, 1);
        assert!(lf.get(outer).blocks.is_superset(&lf.get(inner).blocks));
        // inner_to_outer puts the inner loop first
        let order = lf.inner_to_outer();
        assert_eq!(order[0], inner);
        assert_eq!(order[1], outer);
        // block_loop maps the inner body to the inner loop
        assert_eq!(lf.block_loop[BlockId(3).index()], Some(inner));
        assert_eq!(lf.block_loop[BlockId(4).index()], Some(outer));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        let f = b.finish();
        assert!(forest(&f).is_empty());
    }

    #[test]
    fn self_loop_block() {
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let l = b.new_block();
        let exit = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.branch(c, l, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let lf = forest(&f);
        assert_eq!(lf.len(), 1);
        assert_eq!(lf.loops[0].blocks.len(), 1);
        assert_eq!(lf.loops[0].header, l);
    }

    #[test]
    fn irreducible_cycle_yields_no_loop() {
        // Entry branches into both B1 and B2 which form a cycle; neither
        // dominates the other, so no natural loop exists.
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let exit = b.new_block();
        b.branch(c, b1, b2);
        b.switch_to(b1);
        b.branch(c, b2, exit);
        b.switch_to(b2);
        b.branch(c, b1, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        assert!(forest(&f).is_empty());
    }

    #[test]
    fn shared_header_back_edges_merge() {
        // Two latches to one header -> a single loop.
        let mut b = FunctionBuilder::new("f", 0);
        let c = b.iconst(1);
        let h = b.new_block();
        let l1 = b.new_block();
        let l2 = b.new_block();
        let exit = b.new_block();
        b.jump(h);
        b.switch_to(h);
        b.branch(c, l1, l2);
        b.switch_to(l1);
        b.branch(c, h, exit);
        b.switch_to(l2);
        b.jump(h);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let lf = forest(&f);
        assert_eq!(lf.len(), 1);
        assert_eq!(lf.loops[0].blocks.len(), 3);
    }
}
