//! Compile-time cost of each pipeline pass on real suite programs.
//!
//! Complements `promotion_scaling`: times the front end, the two
//! interprocedural analyses, promotion, each scalar optimization, and
//! register allocation on the two largest suite programs. The paper's
//! implicit claim — analysis dominates, promotion itself "runs quite
//! quickly" — is directly visible in these numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn prepared(src: &str) -> ir::Module {
    let mut m = minic::compile(src).expect("compile");
    for fi in 0..m.funcs.len() {
        cfg::normalize_loops(&mut m.funcs[fi]);
    }
    m
}

fn bench_passes(c: &mut Criterion) {
    let programs = ["mlink", "gzip_enc"];
    for name in programs {
        let b = benchsuite::find(name).expect("suite");
        let mut group = c.benchmark_group(format!("passes/{name}"));

        group.bench_function(BenchmarkId::from_parameter("frontend"), |bench| {
            bench.iter(|| minic::compile(b.source).expect("compile"))
        });

        let base = prepared(b.source);
        group.bench_function(BenchmarkId::from_parameter("modref"), |bench| {
            bench.iter(|| {
                let mut m = base.clone();
                analysis::analyze(&mut m, analysis::AnalysisLevel::ModRef)
            })
        });
        group.bench_function(BenchmarkId::from_parameter("points_to"), |bench| {
            bench.iter(|| {
                let mut m = base.clone();
                analysis::analyze(&mut m, analysis::AnalysisLevel::PointsTo)
            })
        });

        let mut analyzed = base.clone();
        analysis::analyze(&mut analyzed, analysis::AnalysisLevel::ModRef);
        opt::strengthen(&mut analyzed);
        group.bench_function(BenchmarkId::from_parameter("promotion"), |bench| {
            bench.iter(|| {
                let mut m = analyzed.clone();
                promote::promote_module(&mut m, &promote::PromotionOptions::default())
            })
        });
        group.bench_function(BenchmarkId::from_parameter("lvn"), |bench| {
            bench.iter(|| {
                let mut m = analyzed.clone();
                opt::lvn(&mut m)
            })
        });
        group.bench_function(BenchmarkId::from_parameter("loadelim"), |bench| {
            bench.iter(|| {
                let mut m = analyzed.clone();
                opt::loadelim(&mut m)
            })
        });
        group.bench_function(BenchmarkId::from_parameter("licm"), |bench| {
            bench.iter(|| {
                let mut m = analyzed.clone();
                opt::licm(&mut m)
            })
        });
        group.bench_function(BenchmarkId::from_parameter("regalloc"), |bench| {
            bench.iter(|| {
                let mut m = analyzed.clone();
                regalloc::allocate(&mut m, &regalloc::AllocOptions::default())
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
