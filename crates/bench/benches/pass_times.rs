//! Compile-time cost of each pipeline pass on real suite programs.
//!
//! Complements `promotion_scaling`: times the front end, the two
//! interprocedural analyses, promotion, each scalar optimization, and
//! register allocation on the two largest suite programs. The paper's
//! implicit claim — analysis dominates, promotion itself "runs quite
//! quickly" — is directly visible in these numbers.
//!
//! Plain `std::time::Instant` harness (`harness = false`): no external
//! bench framework so the build works offline. Run with
//! `cargo bench --bench pass_times`.

use bench_harness::timing::time_case;

fn prepared(src: &str) -> ir::Module {
    let mut m = minic::compile(src).expect("compile");
    for fi in 0..m.funcs.len() {
        cfg::normalize_loops(&mut m.funcs[fi]);
    }
    m
}

fn main() {
    let programs = ["mlink", "gzip_enc"];
    for name in programs {
        let b = benchsuite::find(name).expect("suite");

        time_case(&format!("passes/{name}/frontend"), || {
            minic::compile(b.source).expect("compile");
        });

        let base = prepared(b.source);
        time_case(&format!("passes/{name}/modref"), || {
            let mut m = base.clone();
            analysis::analyze(&mut m, analysis::AnalysisLevel::ModRef);
        });
        time_case(&format!("passes/{name}/points_to"), || {
            let mut m = base.clone();
            analysis::analyze(&mut m, analysis::AnalysisLevel::PointsTo);
        });

        let mut analyzed = base.clone();
        analysis::analyze(&mut analyzed, analysis::AnalysisLevel::ModRef);
        opt::strengthen(&mut analyzed);
        time_case(&format!("passes/{name}/promotion"), || {
            let mut m = analyzed.clone();
            promote::promote_module(&mut m, &promote::PromotionOptions::default());
        });
        time_case(&format!("passes/{name}/lvn"), || {
            let mut m = analyzed.clone();
            opt::lvn(&mut m);
        });
        time_case(&format!("passes/{name}/loadelim"), || {
            let mut m = analyzed.clone();
            opt::loadelim(&mut m);
        });
        time_case(&format!("passes/{name}/licm"), || {
            let mut m = analyzed.clone();
            opt::licm(&mut m);
        });
        time_case(&format!("passes/{name}/regalloc"), || {
            let mut m = analyzed.clone();
            regalloc::allocate(&mut m, &regalloc::AllocOptions::default());
        });
    }
}
