//! Compile-time scaling of the promotion algorithm (§3.1's cost claim).
//!
//! The paper bounds the promoter at `O(Eα(E,B) + T·(C + LB + LX))` and
//! says "in practice, it runs quite quickly". This bench generates
//! synthetic loop nests with growing block counts / loop counts / tag
//! counts and times `promote_module`, so regressions from near-linear
//! behaviour are visible.
//!
//! Plain `std::time::Instant` harness (`harness = false`): no external
//! bench framework so the build works offline. Run with
//! `cargo bench --bench promotion_scaling`.

use bench_harness::timing::time_case;
use ir::{BinOp, CmpOp, FunctionBuilder, GlobalInit, Module};

/// Builds a module whose `main` has `seq` consecutive loops, each `depth`
/// deep, touching `tags` global scalars.
fn synthetic(seq: usize, depth: usize, tags: usize) -> Module {
    let mut m = Module::new();
    let tag_ids: Vec<_> = (0..tags)
        .map(|i| m.add_global(&format!("g{i}"), 1, GlobalInit::Zero))
        .collect();
    let mut b = FunctionBuilder::new("main", 0);
    for s in 0..seq {
        // depth nested loops, innermost touching all tags.
        let mut headers = Vec::new();
        let mut bodies = Vec::new();
        for _ in 0..depth {
            headers.push(b.new_block());
            bodies.push(b.new_block());
        }
        let exit = b.new_block();
        let counter = b.iconst(4);
        b.jump(headers[0]);
        for d in 0..depth {
            b.switch_to(headers[d]);
            let z = b.iconst(0);
            let c = b.cmp(CmpOp::Gt, counter, z);
            let out = if d == 0 { exit } else { headers[d - 1] };
            b.branch(c, bodies[d], out);
            b.switch_to(bodies[d]);
            if d == depth - 1 {
                for &t in &tag_ids {
                    let v = b.sload(t);
                    let one = b.iconst(1);
                    let n = b.binary(BinOp::Add, v, one);
                    b.sstore(n, t);
                }
                b.jump(headers[d]);
            } else {
                b.jump(headers[d + 1]);
            }
        }
        b.switch_to(exit);
        let _ = s;
        let cont = b.new_block();
        b.jump(cont);
        b.switch_to(cont);
    }
    b.ret(None);
    m.add_func(b.finish());
    ir::validate(&m).expect("synthetic module is valid");
    m
}

fn main() {
    // Sweep block count via sequential loops.
    for &seq in &[4usize, 16, 64, 256] {
        let module = synthetic(seq, 2, 8);
        time_case(&format!("promotion_scaling/loops/{seq}"), || {
            let mut m = module.clone();
            promote::promote_module(&mut m, &promote::PromotionOptions::default());
        });
    }
    // Sweep nesting depth.
    for &depth in &[2usize, 4, 8, 16] {
        let module = synthetic(4, depth, 8);
        time_case(&format!("promotion_scaling/depth/{depth}"), || {
            let mut m = module.clone();
            promote::promote_module(&mut m, &promote::PromotionOptions::default());
        });
    }
    // Sweep tag count.
    for &tags in &[8usize, 32, 128, 512] {
        let module = synthetic(8, 2, tags);
        time_case(&format!("promotion_scaling/tags/{tags}"), || {
            let mut m = module.clone();
            promote::promote_module(&mut m, &promote::PromotionOptions::default());
        });
    }
}
