//! Minimal hand-rolled JSON emission helpers.
//!
//! The harness (and the fuzzer's failure corpus) writes JSON/JSONL
//! without a serialization dependency. These helpers centralize the two
//! things that are easy to get wrong when formatting by hand: string
//! escaping and object assembly. They emit compact single-line objects —
//! exactly what a JSONL record wants.

use std::fmt::Write;

/// Escapes a string for inclusion inside a JSON string literal (the
/// result does **not** include the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A single-line JSON object under construction.
///
/// ```
/// use bench_harness::json::JsonObject;
///
/// let mut o = JsonObject::new();
/// o.field_str("name", "loop \"hot\"");
/// o.field_u64("stores", 42);
/// o.field_raw("counts", "[1,2,3]");
/// assert_eq!(
///     o.finish(),
///     r#"{"name":"loop \"hot\"","stores":42,"counts":[1,2,3]}"#
/// );
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn sep(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.sep(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.sep(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a pre-rendered JSON value verbatim (array, nested object, …).
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep(key);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the rendered line.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Renders a slice of strings as a JSON array of (escaped) strings.
pub fn string_array(items: &[String]) -> String {
    let body: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn assembles_objects() {
        let mut o = JsonObject::new();
        o.field_str("k", "v");
        o.field_i64("n", -3);
        o.field_bool("ok", true);
        assert_eq!(o.finish(), r#"{"k":"v","n":-3,"ok":true}"#);
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn renders_string_arrays() {
        let items = vec!["a".to_string(), "b\"c".to_string()];
        assert_eq!(string_array(&items), r#"["a","b\"c"]"#);
        assert_eq!(string_array(&[]), "[]");
    }
}
