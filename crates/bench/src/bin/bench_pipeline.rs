//! Pipeline wall-clock benchmark: sequential vs parallel per-function
//! stages, with per-pass timings.
//!
//! Runs the full default pipeline (ModRef analysis, promotion, optimizer,
//! register allocation) over every suite program twice — once with
//! `threads = 1` and once with one worker per core — asserts the printed
//! IL is identical, and writes `BENCH_pipeline.json` with the timings.
//!
//! Usage: `cargo run --release --bin bench_pipeline [output-path]`

use bench_harness::timing::measure;
use driver::{run_pipeline, PipelineConfig};
use std::fmt::Write as _;

const ITERS: usize = 5;

struct ProgramResult {
    name: String,
    sequential_ms: f64,
    parallel_ms: f64,
    passes: Vec<(String, f64)>,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        threads: Some(threads),
        validate_each_pass: false,
        ..Default::default()
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let parallel_threads = driver::resolve_threads(None).max(2);
    let mut results = Vec::new();
    for b in benchsuite::SUITE {
        eprintln!("benchmarking {} ...", b.name);
        let module = minic::compile(b.source).expect("suite program compiles");
        let seq = measure(ITERS, || {
            let mut m = module.clone();
            run_pipeline(&mut m, &config(1));
        });
        let par = measure(ITERS, || {
            let mut m = module.clone();
            run_pipeline(&mut m, &config(parallel_threads));
        });
        // Determinism spot-check while we are here: the two modes must
        // produce byte-identical IL.
        let (mut m1, mut mn) = (module.clone(), module.clone());
        let r1 = run_pipeline(&mut m1, &config(1));
        let _ = run_pipeline(&mut mn, &config(parallel_threads));
        assert_eq!(
            m1.to_string(),
            mn.to_string(),
            "{}: parallel pipeline diverged from sequential",
            b.name
        );
        results.push(ProgramResult {
            name: b.name.to_string(),
            sequential_ms: ms(seq.min),
            parallel_ms: ms(par.min),
            passes: r1
                .timings
                .passes
                .iter()
                .map(|(n, d)| (n.clone(), ms(*d)))
                .collect(),
        });
    }
    let total_seq: f64 = results.iter().map(|r| r.sequential_ms).sum();
    let total_par: f64 = results.iter().map(|r| r.parallel_ms).sum();

    // Hand-rolled JSON: names are suite identifiers and pass labels, none
    // of which need escaping.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pipeline\",");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    let _ = writeln!(json, "  \"parallel_threads\": {parallel_threads},");
    let _ = writeln!(json, "  \"total_sequential_ms\": {total_seq:.3},");
    let _ = writeln!(json, "  \"total_parallel_ms\": {total_par:.3},");
    let _ = writeln!(
        json,
        "  \"total_speedup\": {:.3},",
        total_seq / total_par.max(1e-9)
    );
    json.push_str("  \"programs\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"sequential_ms\": {:.3},", r.sequential_ms);
        let _ = writeln!(json, "      \"parallel_ms\": {:.3},", r.parallel_ms);
        let _ = writeln!(
            json,
            "      \"speedup\": {:.3},",
            r.sequential_ms / r.parallel_ms.max(1e-9)
        );
        json.push_str("      \"passes\": [\n");
        for (j, (name, pass_ms)) in r.passes.iter().enumerate() {
            let comma = if j + 1 < r.passes.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "        {{ \"name\": \"{name}\", \"ms\": {pass_ms:.3} }}{comma}"
            );
        }
        json.push_str("      ]\n");
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!(
        "pipeline: sequential {total_seq:.1} ms, parallel({parallel_threads}) {total_par:.1} ms, \
         speedup {:.2}x -> {out_path}",
        total_seq / total_par.max(1e-9)
    );
}
