//! Pipeline wall-clock benchmark: sequential vs parallel per-function
//! stages across a sweep of worker counts, with per-pass timings and
//! analysis-build counters.
//!
//! For each worker count in the sweep a [`driver::WorkerPool`] is created
//! *once*, outside the timing loop, and every iteration reuses it through
//! [`driver::run_pipeline_in`] — so the numbers measure the steady-state
//! pipeline, not thread spawning. Each measurement is min-of-N after one
//! untimed warmup run (the warmup lives in `bench_harness::timing::measure`).
//! Printed IL is asserted byte-identical across all worker counts while
//! we are here.
//!
//! The sweep defaults to {1, 2, 4, 8} clamped to 2× the machine's
//! `available_parallelism()` — on a single-core runner, 4- and 8-worker
//! runs measure pure scheduling overhead and tell us nothing. 1 and 2 are
//! always kept so the slowdown gate below stays meaningful; pass
//! `--force-sweep` to measure the full sweep regardless.
//!
//! Usage: `cargo run --release --bin bench_pipeline [output-path]
//!         [--max-2t-slowdown X] [--max-analysis-builds N]
//!         [--max-trace-overhead X] [--max-transfer-visits N]
//!         [--max-allocs N] [--max-frontend-allocs N]
//!         [--max-recompiled-funcs N] [--min-cache-hit-rate X]
//!         [--no-scratch] [--fresh-frontend] [--force-sweep]`
//!
//! With `--max-2t-slowdown X` the process exits nonzero if the 2-worker
//! total is more than `X` times the sequential total — the CI regression
//! gate for parallel overhead. The JSON also records
//! `available_parallelism`: on a single-core runner a 2-worker speedup
//! above 1.0 is physically impossible, so the gate bounds *overhead*
//! rather than demanding a speedup the hardware cannot deliver.
//!
//! With `--max-analysis-builds N` the process exits nonzero if the suite
//! total of analysis builds (CFG + dominators + loop forest + loop
//! geometry + liveness constructions, from `PipelineReport`) exceeds `N`
//! — the CI gate against silently regressing to rebuild-per-pass. The
//! JSON records both the cached count and an uncached baseline measured
//! with `share_analyses: false`, so the cache's effect is an auditable
//! ratio rather than an anecdote.
//!
//! With `--max-transfer-visits N` the process exits nonzero if the suite
//! total of dataflow transfer evaluations (from
//! `PipelineReport::dataflow_stats`, summed over liveness, constprop,
//! loadelim, DCE marking, and points-to) exceeds `N` — the CI gate
//! against a solver silently regressing from its sparse worklist back to
//! dense resweeps. The JSON records the sparse counters next to a dense
//! baseline measured with `sparse_dataflow: false`.
//!
//! This binary installs [`trace::CountingAlloc`] as its global allocator,
//! so every `PassTiming` row carries real allocator-traffic numbers and
//! the JSON gains two suite-level columns: `alloc_stats` — allocator
//! calls/bytes of a steady-state sequential compile (second compile of
//! each program on a warm pool, scratch arenas reused) — and
//! `alloc_stats_fresh` — the same compile with `reuse_scratch: false`,
//! i.e. a cold arena per function, the allocation behaviour the arenas
//! replaced. With `--max-allocs N` the process exits nonzero if the
//! steady-state suite total exceeds `N` allocator calls — the CI gate
//! that keeps the hot loop allocation-free. `--no-scratch` flips every
//! *timed* run to `reuse_scratch: false` for A/B timing experiments (the
//! two alloc columns are always measured in their own modes regardless).
//!
//! The suite is also run sequentially with structured tracing enabled
//! (`PipelineConfig::trace`). With `--max-trace-overhead X` the process
//! exits nonzero if the traced total exceeds `X` times the untraced total
//! — the gate that keeps the telemetry layer honest about its "near-free
//! when on, free when off" contract. The collected remark streams are
//! concatenated (function names prefixed `program::`) and written as
//! `BENCH_remarks.jsonl` next to the JSON output, so every run leaves an
//! auditable record of what was promoted, what was blocked and why, and
//! what spilled across the whole suite.
//!
//! The front end is measured the same way the middle end is. One warm
//! [`minic::Frontend`] — interner, token buffer, AST pools — is fed the
//! whole suite in order, and each program gets per-phase timings (`lex`,
//! `parse`, `lower`) plus two allocator columns: `frontend.alloc_stats`,
//! a steady-state compile on the warm buffers, and
//! `frontend.alloc_stats_fresh`, the same program through the preserved
//! baseline front end (`minic::classic`) which allocates strings, boxes,
//! and vectors per compile — the honest "before" number. The unoptimized
//! IL of both front ends is asserted byte-identical per program. Each
//! program also gets `e2e_ms`: source text through the warm front end
//! and the sequential pipeline to optimized IL, the number a user of
//! `Session::compile` experiences. With `--max-frontend-allocs N` the
//! process exits nonzero if the suite total of warm front-end allocator
//! calls exceeds `N` — the CI gate that keeps front-end buffer recycling
//! from silently regressing. `--fresh-frontend` flips the *timed* e2e
//! runs to the classic front end for A/B experiments (the two front-end
//! alloc columns are always measured in their own modes regardless).
//!
//! The **warm-edit** scenario measures incremental recompilation the way
//! a developer experiences it: an incremental [`driver::Session`]
//! compiles [`benchsuite::warm_edit_pair`]'s base program to populate the
//! per-function fingerprint cache, then recompiles the edited variant —
//! one function's body changed, signatures and MOD/REF summaries intact —
//! with the round trip back to the base state kept outside the timed
//! region. The JSON's `warm_edit` object records `funcs_recompiled`,
//! `cache_hit_rate`, the warm-edit end-to-end time, and the cold
//! end-to-end time of the same edited source on a non-incremental
//! session (same warm front end, so the delta is purely the middle end's
//! cache). The warm output is asserted byte-identical to the cold one.
//! With `--max-recompiled-funcs N` the process exits nonzero if the edit
//! recompiled more than `N` functions — the CI gate against invalidation
//! going coarse (e.g. a pure body edit spuriously invalidating its
//! callers). With `--min-cache-hit-rate X` it exits nonzero if the warm
//! edit's hit rate drops below `X` — the gate against the cache silently
//! missing (a fingerprint picking up compile-order noise would show up
//! here long before anyone noticed slow rebuilds).

use bench_harness::timing::measure;
use driver::{run_pipeline_in, run_pipeline_traced, PipelineConfig, WorkerPool};
use std::fmt::Write as _;
use trace::AllocStats;

/// Count every allocation the benchmark makes, so the per-pass and
/// steady-state columns below are measured, not estimated.
#[global_allocator]
static ALLOC: trace::CountingAlloc = trace::CountingAlloc;

const ITERS: usize = 5;
/// Iterations for the tracing-off/tracing-on pair. The two runs differ
/// by a few percent at most, so the pair gets more samples than the
/// sweep points, and both sides are measured back-to-back (same warmup
/// state, same thermal point) rather than reusing the sweep's
/// sequential number.
const TRACE_ITERS: usize = 15;
/// Iterations for the front-end phase timings and the end-to-end runs.
/// Front-end phases are microseconds each, so they get the most samples.
const FRONT_ITERS: usize = 25;
const FULL_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Run {
    threads: usize,
    /// Actual pool size: spawned workers plus the submitting thread.
    workers: usize,
    ms: f64,
}

struct ProgramResult {
    name: String,
    runs: Vec<Run>,
    /// `(label, milliseconds, cpu_summed, allocs)` per pass. Fused-chain
    /// passes report per-function time summed across workers (CPU time);
    /// those rows are emitted under a `cpu_ms` key instead of `ms` so they
    /// are never compared against barrier-to-barrier wall times. `allocs`
    /// is the pass's allocator traffic from the same (sequential,
    /// steady-state) reference run.
    passes: Vec<(&'static str, f64, bool, AllocStats)>,
    /// Analysis builds with the shared cache (the shipping configuration).
    builds_cached: cfg::BuildCounts,
    /// Analysis builds with `share_analyses: false` — every stage gets a
    /// throwaway cache, i.e. the rebuild-per-pass behaviour this cache
    /// replaced. The honest "before" number.
    builds_uncached: cfg::BuildCounts,
    /// Sequential run time with tracing off, measured back-to-back with
    /// `trace_on_ms` so the pair differs only in `PipelineConfig::trace`.
    trace_off_ms: f64,
    /// Sequential run time with structured tracing enabled.
    trace_on_ms: f64,
    /// Allocator traffic of a steady-state sequential compile: the second
    /// compile of this program on a warm pool, scratch arenas reused.
    alloc_stats: AllocStats,
    /// The same compile with `reuse_scratch: false` — a cold arena per
    /// function. The honest "before" number for the arenas.
    alloc_stats_fresh: AllocStats,
    /// Dataflow solver work with the sparse worklist solvers (the
    /// shipping configuration).
    dataflow: cfg::DataflowStats,
    /// The same counters with `sparse_dataflow: false` — dense
    /// full-resweep fixpoints, the behaviour the worklists replaced. The
    /// honest "before" number.
    dataflow_dense: cfg::DataflowStats,
    /// Front-end phase timings and allocator columns.
    frontend: FrontendResult,
    /// Source text to optimized IL through the warm front end and the
    /// sequential pipeline — what a `Session::compile` caller pays.
    e2e_ms: f64,
}

struct FrontendResult {
    /// Tokenizing into the recycled token buffer.
    lex_ms: f64,
    /// Building the pooled AST from the token buffer.
    parse_ms: f64,
    /// Lowering the pooled AST to an IL module.
    lower_ms: f64,
    /// Allocator traffic of a steady-state compile on the warm front end
    /// (interner populated, token/AST pools at high-water capacity).
    alloc_stats: AllocStats,
    /// The same program through the preserved baseline front end
    /// (`minic::classic`): fresh strings, boxes, and vectors every
    /// compile. The honest "before" number.
    alloc_stats_fresh: AllocStats,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// `reuse_scratch` is threaded from `--no-scratch` so the *timed* sweep
/// can be A/B'd; the alloc-stats measurements below always pin their own
/// mode.
fn config(threads: usize, reuse_scratch: bool) -> PipelineConfig {
    PipelineConfig {
        threads: Some(threads),
        validate_each_pass: false,
        reuse_scratch,
        ..Default::default()
    }
}

fn alloc_json(a: &AllocStats) -> String {
    format!("{{ \"count\": {}, \"bytes\": {} }}", a.count, a.bytes)
}

fn dataflow_json(s: &cfg::DataflowStats) -> String {
    format!(
        "{{ \"blocks_visited\": {}, \"transfer_evals\": {}, \
         \"worklist_pushes\": {}, \"total\": {} }}",
        s.blocks_visited,
        s.transfer_evals,
        s.worklist_pushes,
        s.total()
    )
}

fn builds_json(c: &cfg::BuildCounts) -> String {
    format!(
        "{{ \"cfg\": {}, \"dom\": {}, \"forest\": {}, \"geometry\": {}, \
         \"liveness\": {}, \"total\": {} }}",
        c.cfg,
        c.dom,
        c.forest,
        c.geometry,
        c.liveness,
        c.total()
    )
}

fn main() {
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut max_2t_slowdown: Option<f64> = None;
    let mut max_analysis_builds: Option<u64> = None;
    let mut max_trace_overhead: Option<f64> = None;
    let mut max_transfer_visits: Option<u64> = None;
    let mut max_allocs: Option<u64> = None;
    let mut max_frontend_allocs: Option<u64> = None;
    let mut max_recompiled_funcs: Option<usize> = None;
    let mut min_cache_hit_rate: Option<f64> = None;
    let mut reuse_scratch = true;
    let mut fresh_frontend = false;
    let mut force_sweep = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--max-2t-slowdown" {
            let v = args.next().expect("--max-2t-slowdown needs a value");
            max_2t_slowdown = Some(v.parse().expect("--max-2t-slowdown value"));
        } else if a == "--max-analysis-builds" {
            let v = args.next().expect("--max-analysis-builds needs a value");
            max_analysis_builds = Some(v.parse().expect("--max-analysis-builds value"));
        } else if a == "--max-trace-overhead" {
            let v = args.next().expect("--max-trace-overhead needs a value");
            max_trace_overhead = Some(v.parse().expect("--max-trace-overhead value"));
        } else if a == "--max-transfer-visits" {
            let v = args.next().expect("--max-transfer-visits needs a value");
            max_transfer_visits = Some(v.parse().expect("--max-transfer-visits value"));
        } else if a == "--max-allocs" {
            let v = args.next().expect("--max-allocs needs a value");
            max_allocs = Some(v.parse().expect("--max-allocs value"));
        } else if a == "--max-frontend-allocs" {
            let v = args.next().expect("--max-frontend-allocs needs a value");
            max_frontend_allocs = Some(v.parse().expect("--max-frontend-allocs value"));
        } else if a == "--max-recompiled-funcs" {
            let v = args.next().expect("--max-recompiled-funcs needs a value");
            max_recompiled_funcs = Some(v.parse().expect("--max-recompiled-funcs value"));
        } else if a == "--min-cache-hit-rate" {
            let v = args.next().expect("--min-cache-hit-rate needs a value");
            min_cache_hit_rate = Some(v.parse().expect("--min-cache-hit-rate value"));
        } else if a == "--no-scratch" {
            reuse_scratch = false;
        } else if a == "--fresh-frontend" {
            fresh_frontend = true;
        } else if a == "--force-sweep" {
            force_sweep = true;
        } else {
            out_path = a;
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sweep: Vec<usize> = if force_sweep {
        FULL_SWEEP.to_vec()
    } else {
        // Keep 1 (the sequential reference) and 2 (the slowdown gate)
        // unconditionally; drop oversubscribed points that only measure
        // context-switch overhead.
        FULL_SWEEP
            .iter()
            .copied()
            .filter(|&t| t <= 2 || t <= 2 * cores)
            .collect()
    };
    let pools: Vec<WorkerPool> = sweep.iter().map(|&t| WorkerPool::new(t)).collect();

    let mut results = Vec::new();
    let mut remarks_jsonl = String::new();
    // One warm front end for the whole suite, exactly as a `Session`
    // holds one: every program after the first is compiled on buffers
    // the previous programs warmed.
    let mut warm_fe = minic::Frontend::new();
    for b in benchsuite::SUITE {
        eprintln!("benchmarking {} ...", b.name);
        let module = warm_fe.compile(b.source).expect("suite program compiles");
        // Front-end phase timings on the warm front end. Each phase
        // re-runs on the output of the previous one (the token buffer
        // and AST pools persist between calls).
        let lex_timing = measure(FRONT_ITERS, || {
            warm_fe.lex(b.source).expect("suite program lexes");
        });
        let parse_timing = measure(FRONT_ITERS, || {
            warm_fe.parse_lexed().expect("suite program parses");
        });
        let lower_timing = measure(FRONT_ITERS, || {
            warm_fe.lower_parsed().expect("suite program lowers");
        });
        // Steady-state front-end allocator traffic: the warm compile
        // above plus the timing loops have the pools at high-water
        // capacity; count one more full compile.
        let front_alloc_stats = {
            let before = AllocStats::now();
            warm_fe.compile(b.source).expect("suite program compiles");
            AllocStats::now().since(&before)
        };
        // The fresh baseline: the preserved classic front end, which
        // allocates identifier strings, boxed AST nodes, and vectors
        // per compile. Its output must be byte-identical.
        let (front_alloc_stats_fresh, classic_module) = {
            let before = AllocStats::now();
            let m = minic::classic::compile(b.source).expect("suite program compiles");
            (AllocStats::now().since(&before), m)
        };
        assert_eq!(
            ir::module_to_string(&module),
            ir::module_to_string(&classic_module),
            "{}: interned and classic front ends disagree on unoptimized IL",
            b.name
        );
        drop(classic_module);
        let mut runs = Vec::new();
        let mut reference_il: Option<String> = None;
        let mut passes = Vec::new();
        let mut builds_cached = cfg::BuildCounts::default();
        let mut dataflow = cfg::DataflowStats::default();
        for (&threads, pool) in sweep.iter().zip(&pools) {
            let cfg = config(threads, reuse_scratch);
            let timing = measure(ITERS, || {
                let mut m = module.clone();
                run_pipeline_in(&mut m, &cfg, pool);
            });
            // Determinism spot-check while we are here: every worker
            // count must produce byte-identical IL.
            let mut m = module.clone();
            let report = run_pipeline_in(&mut m, &cfg, pool);
            let il = m.to_string();
            match &reference_il {
                None => {
                    reference_il = Some(il);
                    builds_cached = report.analysis_builds;
                    dataflow = report.dataflow_stats;
                    passes = report
                        .timings
                        .passes
                        .iter()
                        .map(|p| (p.name, ms(p.elapsed), p.cpu_summed, p.allocs))
                        .collect();
                }
                Some(r) => assert_eq!(
                    r, &il,
                    "{}: pipeline at {threads} threads diverged from sequential",
                    b.name
                ),
            }
            runs.push(Run {
                threads,
                workers: pool.threads(),
                ms: ms(timing.min),
            });
        }
        // Uncached baseline: same pipeline, throwaway cache per stage.
        // Output must not depend on the caching mode.
        let builds_uncached = {
            let mut m = module.clone();
            let cfg = PipelineConfig {
                share_analyses: false,
                ..config(1, reuse_scratch)
            };
            let report = run_pipeline_in(&mut m, &cfg, &pools[0]);
            assert_eq!(
                reference_il.as_deref(),
                Some(m.to_string().as_str()),
                "{}: share_analyses=false changed the output",
                b.name
            );
            report.analysis_builds
        };
        // Steady-state allocator traffic: warm this program's arenas (and
        // every other per-run buffer) with one untimed compile, then count
        // a second compile. The snapshots bracket only the pipeline run —
        // the input module clone is built before the first read.
        let alloc_stats = {
            let cfg = config(1, true);
            let mut m = module.clone();
            run_pipeline_in(&mut m, &cfg, &pools[0]);
            let mut m = module.clone();
            let before = AllocStats::now();
            run_pipeline_in(&mut m, &cfg, &pools[0]);
            AllocStats::now().since(&before)
        };
        // The fresh-arena baseline: identical steady-state protocol, but
        // every function pays the cold-arena allocation cost. Output must
        // not depend on the scratch mode.
        let alloc_stats_fresh = {
            let cfg = config(1, false);
            let mut m = module.clone();
            run_pipeline_in(&mut m, &cfg, &pools[0]);
            let mut m = module.clone();
            let before = AllocStats::now();
            run_pipeline_in(&mut m, &cfg, &pools[0]);
            let stats = AllocStats::now().since(&before);
            assert_eq!(
                reference_il.as_deref(),
                Some(m.to_string().as_str()),
                "{}: reuse_scratch=false changed the output",
                b.name
            );
            stats
        };
        // Dense-solver baseline: the same pipeline with the full-resweep
        // fixpoints the worklists replaced. Only the work counters are
        // harvested — the IL may legitimately differ, because sparse
        // constprop is *stronger* (executable-edge pruning folds through
        // branches the dense join cannot); the differential tests pin
        // down exactly where the two modes are required to agree.
        let dataflow_dense = {
            let mut m = module.clone();
            let cfg = PipelineConfig {
                sparse_dataflow: false,
                ..config(1, reuse_scratch)
            };
            run_pipeline_in(&mut m, &cfg, &pools[0]).dataflow_stats
        };
        // Tracing overhead: the same sequential pipeline with remark and
        // delta collection off vs on, measured back-to-back so the pair
        // differs only in `trace`.
        let trace_cfg = PipelineConfig {
            trace: true,
            ..config(1, reuse_scratch)
        };
        let trace_off_timing = measure(TRACE_ITERS, || {
            let mut m = module.clone();
            run_pipeline_in(&mut m, &config(1, reuse_scratch), &pools[0]);
        });
        let trace_timing = measure(TRACE_ITERS, || {
            let mut m = module.clone();
            run_pipeline_in(&mut m, &trace_cfg, &pools[0]);
        });
        // Collect the remark stream once (untimed) for the artifact, and
        // assert tracing is observation-only: same IL out.
        {
            let mut m = module.clone();
            let (_, mut log) = run_pipeline_traced(&mut m, &trace_cfg, &pools[0]);
            assert_eq!(
                reference_il.as_deref(),
                Some(m.to_string().as_str()),
                "{}: enabling tracing changed the output",
                b.name
            );
            log.prefix_funcs(b.name);
            remarks_jsonl.push_str(&log.to_jsonl());
        }
        // End-to-end: source text to optimized IL. The warm front end and
        // the warm sequential pool are both reused across iterations —
        // the steady state a `Session` delivers. `--fresh-frontend` swaps
        // in the classic front end for the A/B comparison.
        let e2e_cfg = config(1, reuse_scratch);
        let e2e_timing = measure(FRONT_ITERS, || {
            let mut m = if fresh_frontend {
                minic::classic::compile(b.source).expect("suite program compiles")
            } else {
                warm_fe.compile(b.source).expect("suite program compiles")
            };
            run_pipeline_in(&mut m, &e2e_cfg, &pools[0]);
        });
        results.push(ProgramResult {
            name: b.name.to_string(),
            runs,
            passes,
            builds_cached,
            builds_uncached,
            trace_off_ms: ms(trace_off_timing.min),
            trace_on_ms: ms(trace_timing.min),
            alloc_stats,
            alloc_stats_fresh,
            dataflow,
            dataflow_dense,
            frontend: FrontendResult {
                lex_ms: ms(lex_timing.min),
                parse_ms: ms(parse_timing.min),
                lower_ms: ms(lower_timing.min),
                alloc_stats: front_alloc_stats,
                alloc_stats_fresh: front_alloc_stats_fresh,
            },
            e2e_ms: ms(e2e_timing.min),
        });
    }

    // Warm-edit scenario: one function of `compress` edited on an
    // incremental session whose cache holds the base program. Each timed
    // iteration recompiles the edit; the untimed base compile in between
    // restores the cache to the pre-edit state, so every sample measures
    // the same one-function miss rather than an all-hit splice.
    eprintln!("benchmarking warm-edit ...");
    let pair = benchsuite::warm_edit_pair();
    let warm_session = driver::Session::builder()
        .threads(Some(1))
        .incremental(true)
        .build();
    let cold_session = driver::Session::builder().threads(Some(1)).build();
    warm_session.compile(pair.base).expect("base compiles warm");
    let cold_edited = cold_session.compile(&pair.edited).expect("edited compiles");
    let warm_edited = warm_session
        .compile(&pair.edited)
        .expect("edited compiles warm");
    assert_eq!(
        warm_edited.module.to_string(),
        cold_edited.module.to_string(),
        "warm-edit splice diverged from a cold compile"
    );
    let mut warm_edit_incr = warm_edited
        .report
        .incremental
        .clone()
        .expect("incremental session reports cache activity");
    let mut warm_edit_ms = f64::INFINITY;
    for _ in 0..FRONT_ITERS {
        warm_session.compile(pair.base).expect("base compiles warm");
        let started = std::time::Instant::now();
        let c = warm_session
            .compile(&pair.edited)
            .expect("edited compiles warm");
        warm_edit_ms = warm_edit_ms.min(ms(started.elapsed()));
        warm_edit_incr = c
            .report
            .incremental
            .clone()
            .expect("incremental session reports cache activity");
    }
    // The cold side of the comparison: the same edited source through a
    // non-incremental session. Its front end is just as warm, so the
    // delta isolates the per-function cache.
    let cold_edit_timing = measure(FRONT_ITERS, || {
        cold_session.compile(&pair.edited).expect("edited compiles");
    });
    let cold_edit_ms = ms(cold_edit_timing.min);

    let total_at = |ti: usize| -> f64 { results.iter().map(|r| r.runs[ti].ms).sum() };
    let totals: Vec<f64> = (0..sweep.len()).map(total_at).collect();
    let total_seq = totals[0];
    let idx_2t = sweep.iter().position(|&t| t == 2).expect("sweep has 2");
    let total_2t = totals[idx_2t];
    let speedup_2t = total_seq / total_2t.max(1e-9);
    let total_trace_off: f64 = results.iter().map(|r| r.trace_off_ms).sum();
    let total_trace_on: f64 = results.iter().map(|r| r.trace_on_ms).sum();
    let trace_overhead = total_trace_on / total_trace_off.max(1e-9);
    let mut total_builds_cached = cfg::BuildCounts::default();
    let mut total_builds_uncached = cfg::BuildCounts::default();
    let mut total_dataflow = cfg::DataflowStats::default();
    let mut total_dataflow_dense = cfg::DataflowStats::default();
    let mut total_allocs = AllocStats::default();
    let mut total_allocs_fresh = AllocStats::default();
    let mut total_front_allocs = AllocStats::default();
    let mut total_front_allocs_fresh = AllocStats::default();
    let total_e2e: f64 = results.iter().map(|r| r.e2e_ms).sum();
    for r in &results {
        total_builds_cached.add(&r.builds_cached);
        total_builds_uncached.add(&r.builds_uncached);
        total_dataflow.add(&r.dataflow);
        total_dataflow_dense.add(&r.dataflow_dense);
        total_allocs.merge(&r.alloc_stats);
        total_allocs_fresh.merge(&r.alloc_stats_fresh);
        total_front_allocs.merge(&r.frontend.alloc_stats);
        total_front_allocs_fresh.merge(&r.frontend.alloc_stats_fresh);
    }

    // Hand-rolled JSON: names are suite identifiers and pass labels, none
    // of which need escaping.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pipeline\",");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(
        json,
        "  \"sweep_threads\": [{}],",
        sweep
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"total_sequential_ms\": {total_seq:.3},");
    let _ = writeln!(json, "  \"total_parallel_ms\": {total_2t:.3},");
    let _ = writeln!(json, "  \"total_speedup\": {speedup_2t:.3},");
    let _ = writeln!(json, "  \"total_trace_off_ms\": {total_trace_off:.3},");
    let _ = writeln!(json, "  \"total_trace_on_ms\": {total_trace_on:.3},");
    let _ = writeln!(json, "  \"trace_overhead\": {trace_overhead:.3},");
    let _ = writeln!(
        json,
        "  \"analysis_builds\": {},",
        builds_json(&total_builds_cached)
    );
    let _ = writeln!(
        json,
        "  \"analysis_builds_uncached\": {},",
        builds_json(&total_builds_uncached)
    );
    let _ = writeln!(
        json,
        "  \"dataflow_stats\": {},",
        dataflow_json(&total_dataflow)
    );
    let _ = writeln!(
        json,
        "  \"dataflow_stats_dense\": {},",
        dataflow_json(&total_dataflow_dense)
    );
    let _ = writeln!(json, "  \"alloc_stats\": {},", alloc_json(&total_allocs));
    let _ = writeln!(
        json,
        "  \"alloc_stats_fresh\": {},",
        alloc_json(&total_allocs_fresh)
    );
    let _ = writeln!(json, "  \"total_e2e_ms\": {total_e2e:.3},");
    let _ = writeln!(
        json,
        "  \"e2e_frontend\": \"{}\",",
        if fresh_frontend { "fresh" } else { "warm" }
    );
    let _ = writeln!(
        json,
        "  \"frontend_alloc_stats\": {},",
        alloc_json(&total_front_allocs)
    );
    let _ = writeln!(
        json,
        "  \"frontend_alloc_stats_fresh\": {},",
        alloc_json(&total_front_allocs_fresh)
    );
    let _ = writeln!(
        json,
        "  \"warm_edit\": {{ \"program\": \"{}\", \"funcs_total\": {}, \
         \"funcs_recompiled\": {}, \"cache_hits\": {}, \
         \"summary_invalidated\": {}, \"cache_hit_rate\": {:.3}, \
         \"warm_edit_e2e_ms\": {:.3}, \"cold_edit_e2e_ms\": {:.3}, \
         \"speedup\": {:.3} }},",
        pair.name,
        warm_edit_incr.funcs_total,
        warm_edit_incr.funcs_recompiled,
        warm_edit_incr.cache_hits,
        warm_edit_incr.summary_invalidated,
        warm_edit_incr.hit_rate(),
        warm_edit_ms,
        cold_edit_ms,
        cold_edit_ms / warm_edit_ms.max(1e-9)
    );
    json.push_str("  \"totals\": [\n");
    for (i, (&t, total)) in sweep.iter().zip(&totals).enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"threads\": {t}, \"workers\": {}, \"ms\": {total:.3}, \"speedup\": {:.3} }}{comma}",
            pools[i].threads(),
            total_seq / total.max(1e-9)
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"programs\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(
            json,
            "      \"analysis_builds\": {},",
            builds_json(&r.builds_cached)
        );
        let _ = writeln!(
            json,
            "      \"analysis_builds_uncached\": {},",
            builds_json(&r.builds_uncached)
        );
        let _ = writeln!(
            json,
            "      \"dataflow_stats\": {},",
            dataflow_json(&r.dataflow)
        );
        let _ = writeln!(
            json,
            "      \"dataflow_stats_dense\": {},",
            dataflow_json(&r.dataflow_dense)
        );
        let _ = writeln!(
            json,
            "      \"alloc_stats\": {},",
            alloc_json(&r.alloc_stats)
        );
        let _ = writeln!(
            json,
            "      \"alloc_stats_fresh\": {},",
            alloc_json(&r.alloc_stats_fresh)
        );
        let _ = writeln!(
            json,
            "      \"frontend\": {{ \"lex_ms\": {:.4}, \"parse_ms\": {:.4}, \
             \"lower_ms\": {:.4}, \"alloc_stats\": {}, \"alloc_stats_fresh\": {} }},",
            r.frontend.lex_ms,
            r.frontend.parse_ms,
            r.frontend.lower_ms,
            alloc_json(&r.frontend.alloc_stats),
            alloc_json(&r.frontend.alloc_stats_fresh)
        );
        let _ = writeln!(json, "      \"e2e_ms\": {:.3},", r.e2e_ms);
        json.push_str("      \"runs\": [\n");
        for (j, run) in r.runs.iter().enumerate() {
            let comma = if j + 1 < r.runs.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "        {{ \"threads\": {}, \"workers\": {}, \"ms\": {:.3}, \"speedup\": {:.3} }}{comma}",
                run.threads,
                run.workers,
                run.ms,
                r.runs[0].ms / run.ms.max(1e-9)
            );
        }
        json.push_str("      ],\n");
        json.push_str("      \"passes\": [\n");
        for (j, (name, pass_ms, cpu_summed, allocs)) in r.passes.iter().enumerate() {
            let comma = if j + 1 < r.passes.len() { "," } else { "" };
            // Fused passes get a distinct key: a consumer looking for
            // "ms" fails loudly on them instead of silently comparing
            // CPU-summed time against historical wall time.
            let key = if *cpu_summed { "cpu_ms" } else { "ms" };
            let _ = writeln!(
                json,
                "        {{ \"name\": \"{name}\", \"{key}\": {pass_ms:.3},                  \"allocs\": {}, \"alloc_bytes\": {} }}{comma}",
                allocs.count, allocs.bytes
            );
        }
        json.push_str("      ]\n");
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");
    let remarks_path = std::path::Path::new(&out_path).with_file_name("BENCH_remarks.jsonl");
    std::fs::write(&remarks_path, &remarks_jsonl).expect("write remarks artifact");

    println!("pipeline benchmark ({cores} core(s) available), min of {ITERS} iters:");
    for (i, (&t, total)) in sweep.iter().zip(&totals).enumerate() {
        println!(
            "  threads={t} (pool size {}): {total:8.1} ms  speedup {:.3}x",
            pools[i].threads(),
            total_seq / total.max(1e-9)
        );
    }
    println!(
        "  analysis builds: {} cached vs {} uncached ({:.2}x fewer)",
        total_builds_cached.total(),
        total_builds_uncached.total(),
        total_builds_uncached.total() as f64 / total_builds_cached.total().max(1) as f64
    );
    println!(
        "  dataflow transfers: {} sparse vs {} dense ({:.2}x fewer)",
        total_dataflow.transfer_evals,
        total_dataflow_dense.transfer_evals,
        total_dataflow_dense.transfer_evals as f64 / total_dataflow.transfer_evals.max(1) as f64
    );
    println!(
        "  steady-state allocs: {} reused-scratch vs {} fresh ({:.2}x fewer), {} KiB vs {} KiB",
        total_allocs.count,
        total_allocs_fresh.count,
        total_allocs_fresh.count as f64 / total_allocs.count.max(1) as f64,
        total_allocs.bytes / 1024,
        total_allocs_fresh.bytes / 1024
    );
    println!(
        "  tracing: {total_trace_off:.1} ms off vs {total_trace_on:.1} ms on \
         ({trace_overhead:.3}x), {} remark records -> {}",
        remarks_jsonl.lines().count(),
        remarks_path.display()
    );
    println!(
        "  front-end allocs: {} warm vs {} classic ({:.2}x fewer), {} KiB vs {} KiB",
        total_front_allocs.count,
        total_front_allocs_fresh.count,
        total_front_allocs_fresh.count as f64 / total_front_allocs.count.max(1) as f64,
        total_front_allocs.bytes / 1024,
        total_front_allocs_fresh.bytes / 1024
    );
    println!(
        "  end-to-end (source -> optimized IL, {} front end): {total_e2e:.1} ms",
        if fresh_frontend { "classic" } else { "warm" }
    );
    println!(
        "  warm edit ({}): {}/{} funcs recompiled (hit rate {:.3}), \
         {warm_edit_ms:.3} ms warm vs {cold_edit_ms:.3} ms cold ({:.2}x)",
        pair.name,
        warm_edit_incr.funcs_recompiled,
        warm_edit_incr.funcs_total,
        warm_edit_incr.hit_rate(),
        cold_edit_ms / warm_edit_ms.max(1e-9)
    );
    println!("  2-thread speedup {speedup_2t:.3}x -> {out_path}");

    let mut failed = false;
    if let Some(limit) = max_2t_slowdown {
        let slowdown = total_2t / total_seq.max(1e-9);
        if slowdown > limit {
            eprintln!(
                "FAIL: 2-worker run is {slowdown:.3}x the sequential time \
                 (limit {limit:.2}x) — parallel overhead regression"
            );
            failed = true;
        } else {
            println!("  gate: 2-worker slowdown {slowdown:.3}x within limit {limit:.2}x");
        }
    }
    if let Some(limit) = max_analysis_builds {
        let got = total_builds_cached.total();
        if got > limit {
            eprintln!(
                "FAIL: {got} analysis builds across the suite (limit {limit}) \
                 — the pass chain regressed toward rebuild-per-pass"
            );
            failed = true;
        } else {
            println!("  gate: {got} analysis builds within limit {limit}");
        }
    }
    if let Some(limit) = max_transfer_visits {
        let got = total_dataflow.transfer_evals;
        if got > limit {
            eprintln!(
                "FAIL: {got} dataflow transfer evaluations across the suite \
                 (limit {limit}) — a solver regressed toward dense resweeps"
            );
            failed = true;
        } else {
            println!("  gate: {got} transfer evaluations within limit {limit}");
        }
    }
    if let Some(limit) = max_allocs {
        let got = total_allocs.count;
        if got > limit {
            eprintln!(
                "FAIL: {got} steady-state allocations across the suite \
                 (limit {limit}) — the zero-allocation hot loop regressed"
            );
            failed = true;
        } else {
            println!("  gate: {got} steady-state allocations within limit {limit}");
        }
    }
    if let Some(limit) = max_frontend_allocs {
        let got = total_front_allocs.count;
        if got > limit {
            eprintln!(
                "FAIL: {got} steady-state front-end allocations across the suite \
                 (limit {limit}) — front-end buffer recycling regressed"
            );
            failed = true;
        } else {
            println!("  gate: {got} front-end allocations within limit {limit}");
        }
    }
    if let Some(limit) = max_recompiled_funcs {
        let got = warm_edit_incr.funcs_recompiled;
        if got > limit {
            eprintln!(
                "FAIL: the warm edit recompiled {got} function(s) (limit {limit}) \
                 — invalidation went coarse; a one-function edit should not \
                 ripple past its summary-dependent callers"
            );
            failed = true;
        } else {
            println!("  gate: warm edit recompiled {got} function(s) within limit {limit}");
        }
    }
    if let Some(limit) = min_cache_hit_rate {
        let got = warm_edit_incr.hit_rate();
        if got < limit {
            eprintln!(
                "FAIL: warm-edit cache hit rate {got:.3} below floor {limit:.3} \
                 — fingerprints are missing on unchanged functions"
            );
            failed = true;
        } else {
            println!("  gate: warm-edit cache hit rate {got:.3} above floor {limit:.3}");
        }
    }
    if let Some(limit) = max_trace_overhead {
        if trace_overhead > limit {
            eprintln!(
                "FAIL: tracing-on run is {trace_overhead:.3}x the tracing-off time \
                 (limit {limit:.2}x) — the telemetry layer is no longer near-free"
            );
            failed = true;
        } else {
            println!("  gate: trace overhead {trace_overhead:.3}x within limit {limit:.2}x");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
