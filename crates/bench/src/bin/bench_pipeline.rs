//! Pipeline wall-clock benchmark: sequential vs parallel per-function
//! stages across a sweep of worker counts, with per-pass timings.
//!
//! For each worker count in the sweep a [`driver::WorkerPool`] is created
//! *once*, outside the timing loop, and every iteration reuses it through
//! [`driver::run_pipeline_in`] — so the numbers measure the steady-state
//! pipeline, not thread spawning. Each measurement is min-of-N after one
//! untimed warmup run (the warmup lives in `bench_harness::timing::measure`).
//! Printed IL is asserted byte-identical across all worker counts while
//! we are here.
//!
//! Usage: `cargo run --release --bin bench_pipeline [output-path]
//!         [--max-2t-slowdown X]`
//!
//! With `--max-2t-slowdown X` the process exits nonzero if the 2-worker
//! total is more than `X` times the sequential total — the CI regression
//! gate for parallel overhead. The JSON also records
//! `available_parallelism`: on a single-core runner a 2-worker speedup
//! above 1.0 is physically impossible, so the gate bounds *overhead*
//! rather than demanding a speedup the hardware cannot deliver.

use bench_harness::timing::measure;
use driver::{run_pipeline_in, PipelineConfig, WorkerPool};
use std::fmt::Write as _;

const ITERS: usize = 5;
const SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Run {
    threads: usize,
    /// Actual pool size: spawned workers plus the submitting thread.
    workers: usize,
    ms: f64,
}

struct ProgramResult {
    name: String,
    runs: Vec<Run>,
    /// `(label, milliseconds, cpu_summed)` per pass. Fused-chain passes
    /// report per-function time summed across workers (CPU time); those
    /// rows are emitted under a `cpu_ms` key instead of `ms` so they are
    /// never compared against barrier-to-barrier wall times.
    passes: Vec<(String, f64, bool)>,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        threads: Some(threads),
        validate_each_pass: false,
        ..Default::default()
    }
}

fn main() {
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut max_2t_slowdown: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--max-2t-slowdown" {
            let v = args.next().expect("--max-2t-slowdown needs a value");
            max_2t_slowdown = Some(v.parse().expect("--max-2t-slowdown value"));
        } else {
            out_path = a;
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pools: Vec<WorkerPool> = SWEEP.iter().map(|&t| WorkerPool::new(t)).collect();

    let mut results = Vec::new();
    for b in benchsuite::SUITE {
        eprintln!("benchmarking {} ...", b.name);
        let module = minic::compile(b.source).expect("suite program compiles");
        let mut runs = Vec::new();
        let mut reference_il: Option<String> = None;
        let mut passes = Vec::new();
        for (&threads, pool) in SWEEP.iter().zip(&pools) {
            let cfg = config(threads);
            let timing = measure(ITERS, || {
                let mut m = module.clone();
                run_pipeline_in(&mut m, &cfg, pool);
            });
            // Determinism spot-check while we are here: every worker
            // count must produce byte-identical IL.
            let mut m = module.clone();
            let report = run_pipeline_in(&mut m, &cfg, pool);
            let il = m.to_string();
            match &reference_il {
                None => {
                    reference_il = Some(il);
                    passes = report
                        .timings
                        .passes
                        .iter()
                        .map(|p| (p.name.clone(), ms(p.elapsed), p.cpu_summed))
                        .collect();
                }
                Some(r) => assert_eq!(
                    r, &il,
                    "{}: pipeline at {threads} threads diverged from sequential",
                    b.name
                ),
            }
            runs.push(Run {
                threads,
                workers: pool.threads(),
                ms: ms(timing.min),
            });
        }
        results.push(ProgramResult {
            name: b.name.to_string(),
            runs,
            passes,
        });
    }

    let total_at = |ti: usize| -> f64 { results.iter().map(|r| r.runs[ti].ms).sum() };
    let totals: Vec<f64> = (0..SWEEP.len()).map(total_at).collect();
    let total_seq = totals[0];
    let idx_2t = SWEEP.iter().position(|&t| t == 2).expect("sweep has 2");
    let total_2t = totals[idx_2t];
    let speedup_2t = total_seq / total_2t.max(1e-9);

    // Hand-rolled JSON: names are suite identifiers and pass labels, none
    // of which need escaping.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pipeline\",");
    let _ = writeln!(json, "  \"iters\": {ITERS},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(
        json,
        "  \"sweep_threads\": [{}],",
        SWEEP.map(|t| t.to_string()).join(", ")
    );
    let _ = writeln!(json, "  \"total_sequential_ms\": {total_seq:.3},");
    let _ = writeln!(json, "  \"total_parallel_ms\": {total_2t:.3},");
    let _ = writeln!(json, "  \"total_speedup\": {speedup_2t:.3},");
    json.push_str("  \"totals\": [\n");
    for (i, (&t, total)) in SWEEP.iter().zip(&totals).enumerate() {
        let comma = if i + 1 < SWEEP.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"threads\": {t}, \"workers\": {}, \"ms\": {total:.3}, \"speedup\": {:.3} }}{comma}",
            pools[i].threads(),
            total_seq / total.max(1e-9)
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"programs\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        json.push_str("      \"runs\": [\n");
        for (j, run) in r.runs.iter().enumerate() {
            let comma = if j + 1 < r.runs.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "        {{ \"threads\": {}, \"workers\": {}, \"ms\": {:.3}, \"speedup\": {:.3} }}{comma}",
                run.threads,
                run.workers,
                run.ms,
                r.runs[0].ms / run.ms.max(1e-9)
            );
        }
        json.push_str("      ],\n");
        json.push_str("      \"passes\": [\n");
        for (j, (name, pass_ms, cpu_summed)) in r.passes.iter().enumerate() {
            let comma = if j + 1 < r.passes.len() { "," } else { "" };
            // Fused passes get a distinct key: a consumer looking for
            // "ms" fails loudly on them instead of silently comparing
            // CPU-summed time against historical wall time.
            let key = if *cpu_summed { "cpu_ms" } else { "ms" };
            let _ = writeln!(
                json,
                "        {{ \"name\": \"{name}\", \"{key}\": {pass_ms:.3} }}{comma}"
            );
        }
        json.push_str("      ]\n");
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!("pipeline benchmark ({cores} core(s) available), min of {ITERS} iters:");
    for (i, (&t, total)) in SWEEP.iter().zip(&totals).enumerate() {
        println!(
            "  threads={t} (pool size {}): {total:8.1} ms  speedup {:.3}x",
            pools[i].threads(),
            total_seq / total.max(1e-9)
        );
    }
    println!("  2-thread speedup {speedup_2t:.3}x -> {out_path}");

    if let Some(limit) = max_2t_slowdown {
        let slowdown = total_2t / total_seq.max(1e-9);
        if slowdown > limit {
            eprintln!(
                "FAIL: 2-worker run is {slowdown:.3}x the sequential time \
                 (limit {limit:.2}x) — parallel overhead regression"
            );
            std::process::exit(1);
        }
        println!("  gate: 2-worker slowdown {slowdown:.3}x within limit {limit:.2}x");
    }
}
