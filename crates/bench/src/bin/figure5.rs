//! Regenerates Figure 5 of the paper.
//!
//! Usage: `cargo run --release -p promo-bench --bin figure5 [program]`

use bench_harness::{figure_text, measure_suite};
use driver::Metric;

fn main() {
    let only = std::env::args().nth(1);
    let rows = measure_suite(only.as_deref());
    println!("{}", figure_text(Metric::TotalOps, &rows));
}
