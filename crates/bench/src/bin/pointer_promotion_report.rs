//! Regenerates the §3.3 comparison: what pointer-based promotion adds on
//! top of scalar promotion. The paper found fft to be the only visible
//! success.
//!
//! Usage: `cargo run --release -p promo-bench --bin pointer_promotion_report [program]`

use bench_harness::{measure_pointer_promotion, pointer_promotion_text};

fn main() {
    let only = std::env::args().nth(1);
    let rows = measure_pointer_promotion(only.as_deref());
    println!("{}", pointer_promotion_text(&rows));
}
