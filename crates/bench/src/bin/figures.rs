//! Regenerates Figures 5, 6, and 7 of the paper in one run.
//!
//! Usage: `cargo run --release -p promo-bench --bin figures [program]`

use bench_harness::{figure_text, measure_suite};
use driver::Metric;

fn main() {
    let only = std::env::args().nth(1);
    let rows = measure_suite(only.as_deref());
    for metric in [Metric::TotalOps, Metric::Stores, Metric::Loads] {
        println!("{}", figure_text(metric, &rows));
    }
}
