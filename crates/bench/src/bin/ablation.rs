//! Extension experiment: promotion benefit vs analysis precision, across
//! four levels (address-taken only, Steensgaard unification, the paper's
//! MOD/REF, the paper's points-to). The paper's conclusion — "MOD/REF
//! analysis is a good basis" and extra precision rarely pays — shows up as
//! near-identical modref and pointer columns except for bc/fft/gzip.
//!
//! Usage: `cargo run --release -p promo-bench --bin ablation [program]`

use bench_harness::analysis_ablation;

fn main() {
    let only = std::env::args().nth(1);
    println!("{}", analysis_ablation(only.as_deref()));
}
