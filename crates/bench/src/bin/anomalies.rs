//! Reproduces the paper's three degradation stories:
//!
//! * `dhrystone` — promotion in a loop that always executes once;
//! * `bison` — promotion of values only touched on a dead error path;
//! * `water` — 28 promoted values vs the register file: a K-sweep shows
//!   where spills give the savings back. (The paper's 1997 Chaitin-style
//!   allocator over-spilled at K≈32; this Briggs-conservative allocator
//!   with rematerialization needs a tighter file to cross over.)

use bench_harness::{pressure_sweep, pressure_text};
use driver::{measure_program, Metric};

fn main() {
    for name in ["dhrystone", "bison"] {
        let b = benchsuite::find(name).expect("suite program");
        let rows = measure_program(b.name, b.source);
        println!("{name}: {}", b.paper_expectation);
        for row in &rows {
            println!("  {}", row.format(Metric::TotalOps));
        }
        println!();
    }
    let water = benchsuite::find("water").expect("water");
    let points = pressure_sweep(water.source, &[8, 12, 16, 24, 32, 48]);
    println!("{}", pressure_text("water", &points));
}
