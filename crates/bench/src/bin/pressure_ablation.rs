//! Ablation for the paper's §7 proposal: throttling promotion by register
//! pressure ("an explicit decision-making process that considers register
//! pressure and frequency of use before promoting a value", after Carr's
//! bin-packing discipline).
//!
//! Runs `water` — the paper's pressure victim — across register files,
//! comparing unthrottled promotion against caps of 16 and 8 promoted
//! values per loop. At tight K, the throttle should recover what spilling
//! destroys.
//!
//! Usage: `cargo run --release -p promo-bench --bin pressure_ablation`

use analysis::AnalysisLevel;
use driver::prelude::*;

fn run(src: &str, k: usize, promote: bool, cap: Option<usize>) -> u64 {
    let config = PipelineConfig {
        regalloc: Some(AllocOptions {
            num_regs: k,
            ..Default::default()
        }),
        promotion_cap: cap,
        ..PipelineConfig::paper_variant(AnalysisLevel::ModRef, promote)
    };
    let out = Session::from_config(config)
        .compile_and_run(src)
        .unwrap_or_else(|e| panic!("K={k} cap={cap:?}: {e}"))
        .outcome
        .expect("outcome populated");
    out.counts.memory_ops()
}

fn main() {
    let water = benchsuite::find("water").expect("water");
    println!("water: memory ops (loads+stores) by register file and promotion throttle");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>14}",
        "K", "no promotion", "unthrottled", "cap=16", "cap=8"
    );
    for k in [8, 12, 16, 24, 32] {
        let base = run(water.source, k, false, None);
        let unthrottled = run(water.source, k, true, None);
        let cap16 = run(water.source, k, true, Some(16));
        let cap8 = run(water.source, k, true, Some(8));
        println!("{k:>4} {base:>14} {unthrottled:>14} {cap16:>14} {cap8:>14}");
    }
    println!("\nReading: in the mid-pressure regime a well-chosen cap beats");
    println!("unthrottled promotion (K=24: cap=16 keeps more of the win than");
    println!("promoting all 28 values and spilling); an over-aggressive cap");
    println!("forfeits wins outright, and at very tight K no policy can help —");
    println!("the decision process the paper calls for must consider the");
    println!("actual register supply, exactly as Carr's bin packing did.");
}
