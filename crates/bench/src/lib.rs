//! Shared harness for regenerating the paper's tables and figures.
//!
//! Binaries in `src/bin/` drive this library:
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `figure5` | Figure 5 — total operations |
//! | `figure6` | Figure 6 — stores executed |
//! | `figure7` | Figure 7 — loads executed |
//! | `figures` | all three figures in one run |
//! | `pointer_promotion_report` | §3.3's scalar-vs-pointer-based comparison |
//! | `anomalies` | the dhrystone / bison / water degradation stories |
//! | `ablation` | analysis-precision ablation (extension) |

#![warn(missing_docs)]

pub mod json;
pub mod timing;

use analysis::AnalysisLevel;
use driver::prelude::*;
use driver::{measure_program, MeasurementRow, Metric};

/// Compiles and executes one configuration through the Session API.
///
/// # Panics
///
/// Panics with `context` if the program fails to compile or run.
fn run_config(src: &str, config: PipelineConfig, context: &str) -> Outcome {
    Session::from_config(config)
        .compile_and_run(src)
        .unwrap_or_else(|e| panic!("{context}: {e}"))
        .outcome
        .expect("outcome populated")
}

/// Runs the paper's 2×2 experiment over the whole suite (or a named
/// subset), returning rows in suite order. Programs are measured
/// concurrently (one worker per core, via [`driver::parallel_map`]);
/// results come back in suite order, so every table is reproducible.
pub fn measure_suite(only: Option<&str>) -> Vec<MeasurementRow> {
    let programs: Vec<_> = benchsuite::SUITE
        .iter()
        .filter(|b| only.map_or(true, |name| b.name == name))
        .collect();
    let threads = driver::resolve_threads(None);
    driver::parallel_map(programs, threads, |_, b| {
        eprintln!("measuring {} ...", b.name);
        measure_program(b.name, b.source)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Renders one figure for previously measured rows.
pub fn figure_text(metric: Metric, rows: &[MeasurementRow]) -> String {
    driver::render_figure(metric, rows)
}

/// A row of the §3.3 comparison: scalar promotion vs scalar+pointer-based.
#[derive(Debug, Clone)]
pub struct PointerPromotionRow {
    /// Program name.
    pub program: String,
    /// Counts with scalar promotion only.
    pub scalar: vm::ExecCounts,
    /// Counts with scalar + pointer-based promotion.
    pub both: vm::ExecCounts,
}

/// Measures §3.3: how much pointer-based promotion adds over scalar
/// promotion, per program (the paper reports this only paid off for fft).
pub fn measure_pointer_promotion(only: Option<&str>) -> Vec<PointerPromotionRow> {
    let mut rows = Vec::new();
    for b in benchsuite::SUITE {
        if let Some(name) = only {
            if b.name != name {
                continue;
            }
        }
        eprintln!("measuring {} ...", b.name);
        let scalar_cfg = PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true);
        let both_cfg = PipelineConfig {
            pointer_promote: true,
            ..PipelineConfig::paper_variant(AnalysisLevel::PointsTo, true)
        };
        let scalar = run_config(b.source, scalar_cfg, b.name);
        let both = run_config(b.source, both_cfg, b.name);
        assert_eq!(scalar.output, both.output, "{}: outputs diverged", b.name);
        rows.push(PointerPromotionRow {
            program: b.name.to_string(),
            scalar: scalar.counts,
            both: both.counts,
        });
    }
    rows
}

/// Renders the §3.3 comparison.
pub fn pointer_promotion_text(rows: &[PointerPromotionRow]) -> String {
    let mut out = String::new();
    out.push_str("Section 3.3: pointer-based promotion on top of scalar promotion\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>8}   {:>10} {:>10} {:>8}\n",
        "program", "ops(scalar)", "ops(+ptr)", "Δops%", "st(scalar)", "st(+ptr)", "Δst%"
    ));
    for r in rows {
        let dops = pct(r.scalar.total, r.both.total);
        let dst = pct(r.scalar.stores, r.both.stores);
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>8.2}   {:>10} {:>10} {:>8.2}\n",
            r.program, r.scalar.total, r.both.total, dops, r.scalar.stores, r.both.stores, dst
        ));
    }
    out
}

fn pct(before: u64, after: u64) -> f64 {
    if before == 0 {
        0.0
    } else {
        100.0 * (before as f64 - after as f64) / before as f64
    }
}

/// One point of the register-pressure sweep (the `water` anomaly).
#[derive(Debug, Clone)]
pub struct PressurePoint {
    /// Machine register count.
    pub k: usize,
    /// Counts without promotion.
    pub without: vm::ExecCounts,
    /// Counts with promotion.
    pub with: vm::ExecCounts,
}

/// Sweeps the register count for one program, with and without promotion —
/// showing where spills give promotion's savings back (the paper's `water`
/// discussion; their 1997 allocator over-spilled, so the crossover on this
/// Briggs-conservative allocator sits at a smaller K).
pub fn pressure_sweep(source: &str, ks: &[usize]) -> Vec<PressurePoint> {
    let mut points = Vec::new();
    for &k in ks {
        let mut counts = Vec::new();
        for promote in [false, true] {
            let config = PipelineConfig {
                regalloc: Some(AllocOptions {
                    num_regs: k,
                    ..Default::default()
                }),
                ..PipelineConfig::paper_variant(AnalysisLevel::ModRef, promote)
            };
            let out = run_config(source, config, &format!("K={k} promote={promote}"));
            counts.push(out.counts);
        }
        points.push(PressurePoint {
            k,
            without: counts[0],
            with: counts[1],
        });
    }
    points
}

/// Renders a pressure sweep.
pub fn pressure_text(program: &str, points: &[PressurePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Register-pressure sweep for {program} (memory ops = loads + stores)\n"
    ));
    out.push_str(&format!(
        "{:>4} {:>14} {:>14} {:>10}\n",
        "K", "mem(without)", "mem(with)", "Δ%"
    ));
    for p in points {
        let b = p.without.memory_ops();
        let a = p.with.memory_ops();
        out.push_str(&format!(
            "{:>4} {:>14} {:>14} {:>10.2}\n",
            p.k,
            b,
            a,
            pct(b, a)
        ));
    }
    out
}

/// Measures the ablation over analysis levels: % of stores removed by
/// promotion at each precision.
pub fn analysis_ablation(only: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("Analysis-precision ablation: % of stores removed by promotion\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}\n",
        "program", "addrtaken", "steens", "modref", "pointer"
    ));
    for b in benchsuite::SUITE {
        if let Some(name) = only {
            if b.name != name {
                continue;
            }
        }
        eprintln!("measuring {} ...", b.name);
        let mut cells = Vec::new();
        for level in [
            AnalysisLevel::AddressTaken,
            AnalysisLevel::Steensgaard,
            AnalysisLevel::ModRef,
            AnalysisLevel::PointsTo,
        ] {
            let mut counts = Vec::new();
            for promote in [false, true] {
                let config = PipelineConfig::paper_variant(level, promote);
                let out = run_config(b.source, config, &format!("{} {level}", b.name));
                counts.push(out.counts.stores);
            }
            cells.push(pct(counts[0], counts[1]));
        }
        out.push_str(&format!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>10.2}\n",
            b.name, cells[0], cells[1], cells[2], cells[3]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_helper() {
        assert_eq!(pct(100, 50), 50.0);
        assert_eq!(pct(0, 10), 0.0);
        assert!(pct(100, 110) < 0.0);
    }

    #[test]
    fn sweep_runs_on_a_small_program() {
        let src = r#"
int a; int b; int c; int d; int e; int f;
int main() {
    int i;
    for (i = 0; i < 50; i++) {
        a += i; b += i; c += i; d += i; e += i; f += i;
    }
    print_int(a + b + c + d + e + f);
    return 0;
}
"#;
        let points = pressure_sweep(src, &[4, 32]);
        assert_eq!(points.len(), 2);
        // At K=32 promotion wins decisively.
        let p32 = &points[1];
        assert!(p32.with.memory_ops() < p32.without.memory_ops());
    }
}
