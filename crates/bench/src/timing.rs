//! Minimal `std::time::Instant` measurement helpers.
//!
//! The benches under `benches/` are plain `harness = false` binaries built
//! on these helpers instead of an external framework, so `cargo bench`
//! works with no network access. The protocol is deliberately simple:
//! a warmup call, then a fixed number of timed iterations, reporting the
//! minimum (least-noise estimate) and the mean.

use std::time::{Duration, Instant};

/// How many timed iterations [`time_case`] runs after warmup.
pub const DEFAULT_ITERS: usize = 10;

/// Summary of one measured case.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Fastest observed iteration.
    pub min: Duration,
    /// Mean over all timed iterations.
    pub mean: Duration,
    /// Number of timed iterations.
    pub iters: usize,
}

/// Times `f` for `iters` iterations (after one untimed warmup call).
pub fn measure(iters: usize, mut f: impl FnMut()) -> Measurement {
    f();
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let dt = start.elapsed();
        total += dt;
        if dt < min {
            min = dt;
        }
    }
    Measurement {
        min,
        mean: total / iters as u32,
        iters,
    }
}

/// Measures `f` with [`DEFAULT_ITERS`] iterations and prints one
/// criterion-style result line.
pub fn time_case(label: &str, f: impl FnMut()) -> Measurement {
    let m = measure(DEFAULT_ITERS, f);
    println!(
        "{label:<40} min {:>12.3?}  mean {:>12.3?}  ({} iters)",
        m.min, m.mean, m.iters
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut calls = 0;
        let m = measure(5, || calls += 1);
        assert_eq!(calls, 6, "warmup + 5 timed iterations");
        assert_eq!(m.iters, 5);
        assert!(m.min <= m.mean);
    }
}
