//! Steensgaard-style unification-based points-to analysis.
//!
//! The paper's related-work section cites Steensgaard's almost-linear-time
//! flow-insensitive analysis; we implement it as an **ablation level**
//! between plain MOD/REF and the inclusion-based points-to analysis, to
//! measure how much promotion benefit each notch of precision buys.

use ir::{Callee, DenseTagSet, FuncId, Instr, Module, Reg, TagId};
use std::collections::BTreeSet;

/// Union-find node index.
type Node = usize;

struct Uf {
    parent: Vec<Node>,
    /// The single points-to successor of each equivalence class.
    pts: Vec<Option<Node>>,
    /// Functions contained in each class (for indirect-call targets).
    funcs: Vec<BTreeSet<FuncId>>,
}

impl Uf {
    fn new() -> Self {
        Uf {
            parent: Vec::new(),
            pts: Vec::new(),
            funcs: Vec::new(),
        }
    }

    fn fresh(&mut self) -> Node {
        let n = self.parent.len();
        self.parent.push(n);
        self.pts.push(None);
        self.funcs.push(BTreeSet::new());
        n
    }

    fn find(&mut self, mut x: Node) -> Node {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Recursively unifies two classes and their points-to successors.
    fn unify(&mut self, a: Node, b: Node) {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return;
        }
        self.parent[b] = a;
        let fb = std::mem::take(&mut self.funcs[b]);
        self.funcs[a].extend(fb);
        match (self.pts[a], self.pts[b]) {
            (Some(pa), Some(pb)) => self.unify(pa, pb),
            (None, Some(pb)) => self.pts[a] = Some(pb),
            _ => {}
        }
    }

    /// The points-to successor of `x`'s class, created on demand.
    fn pt(&mut self, x: Node) -> Node {
        let r = self.find(x);
        match self.pts[r] {
            Some(p) => self.find(p),
            None => {
                let p = self.fresh();
                self.pts[r] = Some(p);
                p
            }
        }
    }
}

/// The result of the unification analysis.
#[derive(Debug, Clone)]
pub struct Steensgaard {
    /// For each function and register: tags the register may address.
    reg_tags: Vec<Vec<DenseTagSet>>,
    /// For each function and register: functions the register may target.
    reg_funcs: Vec<Vec<BTreeSet<FuncId>>>,
}

impl Steensgaard {
    /// The tags register `r` of `f` may address.
    pub fn reg_tags(&self, f: FuncId, r: Reg) -> &DenseTagSet {
        &self.reg_tags[f.index()][r.index()]
    }

    /// The functions register `r` of `f` may target.
    pub fn reg_funcs(&self, f: FuncId, r: Reg) -> &BTreeSet<FuncId> {
        &self.reg_funcs[f.index()][r.index()]
    }

    /// Per-call-site indirect targets (see
    /// [`crate::SiteTargets`]).
    pub fn site_targets(&self, module: &Module) -> crate::SiteTargets {
        let mut out = crate::SiteTargets::new();
        for (fi, func) in module.funcs.iter().enumerate() {
            for block in &func.blocks {
                for instr in &block.instrs {
                    if let Instr::Call {
                        callee: Callee::Indirect(r),
                        ..
                    } = instr
                    {
                        out.insert(
                            (fi as u32, *r),
                            self.reg_funcs(FuncId(fi as u32), *r).clone(),
                        );
                    }
                }
            }
        }
        out
    }

    /// Indirect-call target sets per function.
    pub fn indirect_targets(&self, module: &Module) -> Vec<BTreeSet<FuncId>> {
        let mut out = vec![BTreeSet::new(); module.funcs.len()];
        for (fi, func) in module.funcs.iter().enumerate() {
            for block in &func.blocks {
                for instr in &block.instrs {
                    if let Instr::Call {
                        callee: Callee::Indirect(r),
                        ..
                    } = instr
                    {
                        out[fi].extend(self.reg_funcs(FuncId(fi as u32), *r).iter().copied());
                    }
                }
            }
        }
        out
    }
}

/// Runs the unification analysis.
pub fn analyze(module: &Module) -> Steensgaard {
    let mut uf = Uf::new();
    // One node per tag...
    let tag_node: Vec<Node> = (0..module.tags.len()).map(|_| uf.fresh()).collect();
    // ...and one per register of each function.
    let reg_node: Vec<Vec<Node>> = module
        .funcs
        .iter()
        .map(|f| (0..f.next_reg as usize).map(|_| uf.fresh()).collect())
        .collect();
    // Function objects get nodes so function pointers unify meaningfully.
    let func_node: Vec<Node> = (0..module.funcs.len())
        .map(|i| {
            let n = uf.fresh();
            uf.funcs[n].insert(FuncId(i as u32));
            n
        })
        .collect();

    // A single pass establishes all constraints (unification is symmetric
    // and order-independent), except indirect calls, which are iterated.
    for round in 0..3 {
        for (fi, func) in module.funcs.iter().enumerate() {
            for block in &func.blocks {
                for instr in &block.instrs {
                    match instr {
                        Instr::Lea { dst, tag } => {
                            let p = uf.pt(reg_node[fi][dst.index()]);
                            uf.unify(p, tag_node[tag.index()]);
                        }
                        Instr::Alloc { dst, site, .. } => {
                            let p = uf.pt(reg_node[fi][dst.index()]);
                            uf.unify(p, tag_node[site.index()]);
                        }
                        Instr::FuncAddr { dst, func: g } => {
                            let p = uf.pt(reg_node[fi][dst.index()]);
                            uf.unify(p, func_node[g.index()]);
                        }
                        Instr::Copy { dst, src } | Instr::Unary { dst, src, .. } => {
                            let pd = uf.pt(reg_node[fi][dst.index()]);
                            let ps = uf.pt(reg_node[fi][src.index()]);
                            uf.unify(pd, ps);
                        }
                        Instr::PtrAdd { dst, base, .. } => {
                            let pd = uf.pt(reg_node[fi][dst.index()]);
                            let ps = uf.pt(reg_node[fi][base.index()]);
                            uf.unify(pd, ps);
                        }
                        Instr::Binary { dst, lhs, rhs, .. } => {
                            let pd = uf.pt(reg_node[fi][dst.index()]);
                            let pl = uf.pt(reg_node[fi][lhs.index()]);
                            let pr = uf.pt(reg_node[fi][rhs.index()]);
                            uf.unify(pd, pl);
                            uf.unify(pd, pr);
                        }
                        Instr::Phi { dst, args } => {
                            let pd = uf.pt(reg_node[fi][dst.index()]);
                            for (_, r) in args {
                                let pr = uf.pt(reg_node[fi][r.index()]);
                                uf.unify(pd, pr);
                            }
                        }
                        Instr::SLoad { dst, tag } | Instr::CLoad { dst, tag } => {
                            // dst = *tag-cell: unify pt(dst) with pt(tag).
                            let pd = uf.pt(reg_node[fi][dst.index()]);
                            let pc = uf.pt(tag_node[tag.index()]);
                            uf.unify(pd, pc);
                        }
                        Instr::SStore { src, tag } => {
                            let ps = uf.pt(reg_node[fi][src.index()]);
                            let pc = uf.pt(tag_node[tag.index()]);
                            uf.unify(ps, pc);
                        }
                        Instr::Load { dst, addr, .. } => {
                            let pd = uf.pt(reg_node[fi][dst.index()]);
                            let pa = uf.pt(reg_node[fi][addr.index()]);
                            let ppa = uf.pt(pa);
                            uf.unify(pd, ppa);
                        }
                        Instr::Store { src, addr, .. } => {
                            let ps = uf.pt(reg_node[fi][src.index()]);
                            let pa = uf.pt(reg_node[fi][addr.index()]);
                            let ppa = uf.pt(pa);
                            uf.unify(ps, ppa);
                        }
                        Instr::Call {
                            dst, callee, args, ..
                        } => {
                            let targets: Vec<FuncId> = match callee {
                                Callee::Direct(g) => vec![*g],
                                Callee::Indirect(r) => {
                                    let p = uf.pt(reg_node[fi][r.index()]);
                                    uf.funcs[p].iter().copied().collect()
                                }
                                Callee::Intrinsic(_) => continue,
                            };
                            for g in targets {
                                let callee_fn = module.func(g);
                                for (i, a) in args.iter().enumerate().take(callee_fn.arity) {
                                    let pa = uf.pt(reg_node[fi][a.index()]);
                                    let pp = uf.pt(reg_node[g.index()][i]);
                                    uf.unify(pa, pp);
                                }
                                if let Some(d) = dst {
                                    for block in &callee_fn.blocks {
                                        if let Some(Instr::Ret { value: Some(r) }) =
                                            block.instrs.last()
                                        {
                                            let pr = uf.pt(reg_node[g.index()][r.index()]);
                                            let pd = uf.pt(reg_node[fi][d.index()]);
                                            uf.unify(pr, pd);
                                        }
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        let _ = round;
    }

    // Read out: tags per class.
    let mut class_tags: std::collections::HashMap<Node, DenseTagSet> = Default::default();
    for (ti, &n) in tag_node.iter().enumerate() {
        let r = uf.find(n);
        class_tags.entry(r).or_default().insert(TagId(ti as u32));
    }
    let mut reg_tags = Vec::with_capacity(module.funcs.len());
    let mut reg_funcs = Vec::with_capacity(module.funcs.len());
    for (fi, func) in module.funcs.iter().enumerate() {
        let mut tags_row = Vec::with_capacity(func.next_reg as usize);
        let mut funcs_row = Vec::with_capacity(func.next_reg as usize);
        for r in 0..func.next_reg as usize {
            let node = reg_node[fi][r];
            let root = uf.find(node);
            match uf.pts[root] {
                Some(p) => {
                    let pr = uf.find(p);
                    tags_row.push(class_tags.get(&pr).cloned().unwrap_or_default());
                    funcs_row.push(uf.funcs[pr].clone());
                }
                None => {
                    tags_row.push(DenseTagSet::new());
                    funcs_row.push(BTreeSet::new());
                }
            }
        }
        reg_tags.push(tags_row);
        reg_funcs.push(funcs_row);
    }
    Steensgaard {
        reg_tags,
        reg_funcs,
    }
}

/// Shrinks pointer-op tag sets with the unification results (same contract
/// as [`crate::points_to::apply`]).
pub fn apply(module: &mut Module, st: &Steensgaard) {
    for fi in 0..module.funcs.len() {
        let f = FuncId(fi as u32);
        for bi in 0..module.funcs[fi].blocks.len() {
            for ii in 0..module.funcs[fi].blocks[bi].instrs.len() {
                let instr = &module.funcs[fi].blocks[bi].instrs[ii];
                let (addr, old) = match instr {
                    Instr::Load { addr, tags, .. } | Instr::Store { addr, tags, .. } => {
                        (*addr, tags.clone())
                    }
                    _ => continue,
                };
                let pts = st.reg_tags(f, addr);
                if pts.is_empty() {
                    continue;
                }
                let new = old.intersect_universe(pts);
                match &mut module.funcs[fi].blocks[bi].instrs[ii] {
                    Instr::Load { tags, .. } | Instr::Store { tags, .. } => *tags = new,
                    _ => unreachable!(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        minic::compile(src).expect("compile")
    }

    #[test]
    fn unification_merges_where_inclusion_would_not() {
        // p points to x then q = p; q also reassigned to &y. Unification
        // collapses {x, y} into one class for *both* p and q; the
        // inclusion-based analysis keeps p = {x}.
        let m = compile(
            r#"
int main() {
    int x = 0;
    int y = 0;
    int *p = &x;
    int *q = p;
    q = &y;
    *p = 1;
    return x + y;
}
"#,
        );
        let st = analyze(&m);
        let main = m.main().unwrap();
        // Find the register used by the store through p.
        let f = m.func(main);
        let addr = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find_map(|i| match i {
                Instr::Store { addr, .. } => Some(*addr),
                _ => None,
            })
            .expect("store");
        let tags = st.reg_tags(main, addr);
        let x = m.tags.lookup("main.x").unwrap();
        let y = m.tags.lookup("main.y").unwrap();
        assert!(
            tags.contains(x) && tags.contains(y),
            "unification merges x and y"
        );

        // The inclusion-based analysis is strictly more precise here.
        let pt = crate::points_to::analyze(&m);
        let precise = pt.reg_tags(main, addr);
        assert!(precise.contains(x));
        assert!(!precise.contains(y));
    }

    #[test]
    fn still_separates_unrelated_pointers() {
        let m = compile(
            r#"
int main() {
    int x = 0;
    int y = 0;
    int *p = &x;
    int *q = &y;
    *p = 1;
    *q = 2;
    return x + y;
}
"#,
        );
        let st = analyze(&m);
        let main = m.main().unwrap();
        let f = m.func(main);
        let addrs: Vec<Reg> = f
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match i {
                Instr::Store { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        let x = m.tags.lookup("main.x").unwrap();
        let y = m.tags.lookup("main.y").unwrap();
        assert!(st.reg_tags(main, addrs[0]).contains(x));
        assert!(!st.reg_tags(main, addrs[0]).contains(y));
        assert!(st.reg_tags(main, addrs[1]).contains(y));
    }

    #[test]
    fn function_pointer_targets() {
        let m = compile(
            r#"
int a(int x) { return x; }
int b(int x) { return x; }
int main() {
    func f = a;
    return f(1);
}
"#,
        );
        let st = analyze(&m);
        let targets = st.indirect_targets(&m);
        let main = m.main().unwrap();
        assert!(targets[main.index()].contains(&m.lookup_func("a").unwrap()));
        assert!(!targets[main.index()].contains(&m.lookup_func("b").unwrap()));
    }
}
