//! Deciding when a singleton tag set pins down a unique run-time cell.
//!
//! A pointer-based operation whose tag set is the singleton `{t}` denotes
//! the *same single cell* as the scalar opcodes `sload t`/`sstore t` only
//! when `t` names exactly one live object: a global scalar always does; a
//! scalar local of function `f` does inside `f` itself provided `f` is not
//! recursive (otherwise one tag names a cell per live activation); heap
//! tags never do (one allocation site names many objects).

use ir::{FuncId, TagId, TagKind, TagTable};

/// True if a singleton pointer reference to `tag` inside `func` provably
/// addresses the unique cell that `sload`/`sstore` of `tag` would.
///
/// Takes the tag table rather than the whole module so per-function passes
/// can call it while the functions themselves are borrowed mutably (the
/// parallel pipeline fan-out relies on this).
pub fn singleton_is_unique_cell(
    tags: &TagTable,
    func: FuncId,
    func_is_recursive: bool,
    tag: TagId,
) -> bool {
    let info = tags.info(tag);
    if info.size != 1 {
        return false;
    }
    match info.kind {
        TagKind::Global => true,
        TagKind::Local { owner } | TagKind::Param { owner } | TagKind::Spill { owner } => {
            owner == func.0 && !func_is_recursive
        }
        TagKind::Heap { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::TagKind;

    #[test]
    fn classification_matrix() {
        let mut t = TagTable::new();
        let g = t.intern("g", TagKind::Global, 1);
        let ga = t.intern("ga", TagKind::Global, 4);
        let loc = t.intern("f.x", TagKind::Local { owner: 0 }, 1);
        let heap = t.intern("heap@0", TagKind::Heap { site: 0 }, 1);
        let f = FuncId(0);
        assert!(singleton_is_unique_cell(&t, f, false, g));
        assert!(
            !singleton_is_unique_cell(&t, f, false, ga),
            "arrays never qualify"
        );
        assert!(singleton_is_unique_cell(&t, f, false, loc));
        assert!(
            !singleton_is_unique_cell(&t, f, true, loc),
            "recursion disqualifies"
        );
        assert!(
            !singleton_is_unique_cell(&t, FuncId(1), false, loc),
            "other function"
        );
        assert!(!singleton_is_unique_cell(&t, f, false, heap));
    }
}
