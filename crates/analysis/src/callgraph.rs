//! Call-graph construction and Tarjan SCC condensation.
//!
//! The MOD/REF analysis processes the strongly-connected components of the
//! call graph in reverse topological order, exactly as described in §4 of
//! the paper; functions inside one SCC share a tag set.

use ir::{Callee, FuncId, Instr, Module};
use std::collections::BTreeSet;

/// The static call graph of a module.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Direct (and resolved indirect) callees per function.
    pub callees: Vec<BTreeSet<FuncId>>,
    /// Functions whose address is taken (targets of any indirect call under
    /// the conservative assumption).
    pub addressed_funcs: BTreeSet<FuncId>,
    /// True per function if it contains an indirect call.
    pub has_indirect_call: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph. Indirect calls are resolved to
    /// `indirect_targets` if provided (from points-to analysis), otherwise
    /// conservatively to every addressed function.
    pub fn build(module: &Module, indirect_targets: Option<&[BTreeSet<FuncId>]>) -> CallGraph {
        let n = module.funcs.len();
        let mut addressed_funcs = BTreeSet::new();
        for func in &module.funcs {
            for block in &func.blocks {
                for instr in &block.instrs {
                    if let Instr::FuncAddr { func: f, .. } = instr {
                        addressed_funcs.insert(*f);
                    }
                }
            }
        }
        let mut callees = vec![BTreeSet::new(); n];
        let mut has_indirect_call = vec![false; n];
        for (fi, func) in module.funcs.iter().enumerate() {
            for block in &func.blocks {
                for instr in &block.instrs {
                    if let Instr::Call { callee, .. } = instr {
                        match callee {
                            Callee::Direct(g) => {
                                callees[fi].insert(*g);
                            }
                            Callee::Indirect(_) => {
                                has_indirect_call[fi] = true;
                                match indirect_targets {
                                    Some(t) => callees[fi].extend(t[fi].iter().copied()),
                                    None => callees[fi].extend(addressed_funcs.iter().copied()),
                                }
                            }
                            Callee::Intrinsic(_) => {}
                        }
                    }
                }
            }
        }
        CallGraph {
            callees,
            addressed_funcs,
            has_indirect_call,
        }
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.callees.len()
    }

    /// True if the module has no functions.
    pub fn is_empty(&self) -> bool {
        self.callees.is_empty()
    }

    /// Functions reachable from `f`, including `f` itself (the
    /// "descendants" in the paper's visibility rule).
    pub fn descendants(&self, f: FuncId) -> BTreeSet<FuncId> {
        let mut seen = BTreeSet::from([f]);
        let mut work = vec![f];
        while let Some(g) = work.pop() {
            for &h in &self.callees[g.index()] {
                if seen.insert(h) {
                    work.push(h);
                }
            }
        }
        seen
    }

    /// True if `f` participates in recursion (lies on a call-graph cycle,
    /// including direct self-recursion).
    pub fn is_recursive(&self, f: FuncId, sccs: &Sccs) -> bool {
        let comp = sccs.component_of[f.index()];
        sccs.components[comp].len() > 1 || self.callees[f.index()].contains(&f)
    }
}

/// Strongly-connected components of the call graph.
#[derive(Debug, Clone)]
pub struct Sccs {
    /// Components in **reverse topological order** (callees before
    /// callers).
    pub components: Vec<Vec<FuncId>>,
    /// Component index per function.
    pub component_of: Vec<usize>,
}

/// Computes SCCs with Tarjan's algorithm (iterative formulation).
pub fn tarjan_sccs(graph: &CallGraph) -> Sccs {
    let n = graph.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<FuncId>> = Vec::new();
    let mut component_of = vec![usize::MAX; n];

    // Explicit DFS state: (node, child iterator position).
    enum FrameState {
        Enter,
        Resume(usize),
    }
    // One child buffer for every visit and one call stack for every root:
    // refilled per use, allocated once.
    let mut children: Vec<usize> = Vec::new();
    let mut call_stack: Vec<(usize, FrameState)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call_stack.clear();
        call_stack.push((start, FrameState::Enter));
        while let Some((v, state)) = call_stack.pop() {
            let mut child_pos = match state {
                FrameState::Enter => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    0
                }
                FrameState::Resume(pos) => {
                    // Returning from a child: fold its lowlink.
                    let child = graph.callees[v]
                        .iter()
                        .nth(pos - 1)
                        .expect("resumed child exists")
                        .index();
                    low[v] = low[v].min(low[child]);
                    pos
                }
            };
            children.clear();
            children.extend(graph.callees[v].iter().map(|c| c.index()));
            let mut descended = false;
            while child_pos < children.len() {
                let w = children[child_pos];
                child_pos += 1;
                if index[w] == usize::MAX {
                    call_stack.push((v, FrameState::Resume(child_pos)));
                    call_stack.push((w, FrameState::Enter));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                loop {
                    let w = stack.pop().expect("scc stack");
                    on_stack[w] = false;
                    component_of[w] = components.len();
                    comp.push(FuncId(w as u32));
                    if w == v {
                        break;
                    }
                }
                components.push(comp);
            }
        }
    }
    Sccs {
        components,
        component_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::FunctionBuilder;

    fn module_with_calls(edges: &[(usize, usize)], n: usize) -> Module {
        let mut m = Module::new();
        for i in 0..n {
            let mut b = FunctionBuilder::new(format!("f{i}"), 0);
            b.ret(None);
            m.add_func(b.finish());
        }
        for &(from, to) in edges {
            let callee = FuncId(to as u32);
            let call = Instr::Call {
                dst: None,
                callee: Callee::Direct(callee),
                args: vec![],
                mods: ir::TagSet::All,
                refs: ir::TagSet::All,
            };
            m.funcs[from].blocks[0].instrs.insert(0, call);
        }
        m
    }

    #[test]
    fn linear_chain_sccs_in_reverse_topo_order() {
        // f0 -> f1 -> f2
        let m = module_with_calls(&[(0, 1), (1, 2)], 3);
        let g = CallGraph::build(&m, None);
        let sccs = tarjan_sccs(&g);
        assert_eq!(sccs.components.len(), 3);
        // Callees come first.
        let order: Vec<u32> = sccs.components.iter().map(|c| c[0].0).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        // f0 <-> f1, f2 alone calling f0.
        let m = module_with_calls(&[(0, 1), (1, 0), (2, 0)], 3);
        let g = CallGraph::build(&m, None);
        let sccs = tarjan_sccs(&g);
        assert_eq!(sccs.components.len(), 2);
        assert_eq!(sccs.component_of[0], sccs.component_of[1]);
        assert!(g.is_recursive(FuncId(0), &sccs));
        assert!(g.is_recursive(FuncId(1), &sccs));
        assert!(!g.is_recursive(FuncId(2), &sccs));
    }

    #[test]
    fn self_recursion_detected() {
        let m = module_with_calls(&[(0, 0)], 1);
        let g = CallGraph::build(&m, None);
        let sccs = tarjan_sccs(&g);
        assert!(g.is_recursive(FuncId(0), &sccs));
    }

    #[test]
    fn descendants() {
        let m = module_with_calls(&[(0, 1), (1, 2), (3, 3)], 4);
        let g = CallGraph::build(&m, None);
        let d = g.descendants(FuncId(0));
        assert_eq!(d, BTreeSet::from([FuncId(0), FuncId(1), FuncId(2)]));
        assert_eq!(g.descendants(FuncId(2)), BTreeSet::from([FuncId(2)]));
    }

    #[test]
    fn indirect_calls_resolve_to_addressed_functions() {
        let mut m = module_with_calls(&[], 3);
        // f0 takes f2's address and calls indirectly.
        let fa = Instr::FuncAddr {
            dst: ir::Reg(0),
            func: FuncId(2),
        };
        let call = Instr::Call {
            dst: None,
            callee: Callee::Indirect(ir::Reg(0)),
            args: vec![],
            mods: ir::TagSet::All,
            refs: ir::TagSet::All,
        };
        m.funcs[0].next_reg = 1;
        m.funcs[0].blocks[0].instrs.insert(0, call);
        m.funcs[0].blocks[0].instrs.insert(0, fa);
        let g = CallGraph::build(&m, None);
        assert!(g.has_indirect_call[0]);
        assert_eq!(g.addressed_funcs, BTreeSet::from([FuncId(2)]));
        assert!(g.callees[0].contains(&FuncId(2)));
        assert!(!g.callees[0].contains(&FuncId(1)));
    }
}
