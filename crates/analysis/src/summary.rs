//! Interprocedural summary fingerprints for incremental recompilation.
//!
//! The driver's per-function cache must notice when a *callee's* memory
//! behaviour changes even though the caller's own body did not: the call
//! sites' MOD/REF tag sets feed promotion, so a stale summary means a
//! stale optimization decision. [`modref_summary_hashes`] digests each
//! function's whole-function MOD and REF sets (by tag *name*, so the
//! digest is independent of tag-id assignment), and
//! [`CallGraph::callers`] gives the reverse edges along which a changed
//! summary propagates — together they define the invalidation rule:
//! a function is recompiled if its own fingerprint changed *or* any
//! callee's summary hash changed.

use crate::callgraph::CallGraph;
use crate::modref::ModRef;
use ir::hash::FxHasher;
use ir::{DenseTagSet, FuncId, Module};
use std::hash::Hasher;

/// Hashes one whole-function tag set by member names, in ascending-id
/// order (deterministic per module; the names make it module-portable).
fn hash_set(h: &mut FxHasher, module: &Module, set: &DenseTagSet) {
    h.write_usize(set.len());
    for t in set.iter() {
        if t.index() < module.tags.len() {
            h.write(module.tags.info(t).name.as_bytes());
        } else {
            h.write_u32(t.0);
        }
    }
}

/// Per-function digests of the MOD/REF summaries: index `i` is the hash
/// of function `i`'s may-modify and may-reference tag sets. Two compiles
/// in which a function's summary digests agree present identical
/// interprocedural facts at that function's call sites.
pub fn modref_summary_hashes(module: &Module, modref: &ModRef) -> Vec<u64> {
    (0..module.funcs.len())
        .map(|i| {
            let mut h = FxHasher::new();
            hash_set(&mut h, module, &modref.func_mods[i]);
            h.write_u8(0xAB);
            hash_set(&mut h, module, &modref.func_refs[i]);
            h.finish()
        })
        .collect()
}

impl CallGraph {
    /// Reverse edges: `callers()[f]` lists every function with a call
    /// edge *to* `f`, in ascending caller order. These are the
    /// invalidation edges of incremental recompilation — when `f`'s
    /// summary hash changes, exactly this set must be recompiled (beyond
    /// functions whose own fingerprints changed).
    pub fn callers(&self) -> Vec<Vec<FuncId>> {
        let mut rev = vec![Vec::new(); self.callees.len()];
        for (caller, callees) in self.callees.iter().enumerate() {
            for callee in callees {
                rev[callee.index()].push(FuncId(caller as u32));
            }
        }
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisLevel};

    const SRC: &str = "\
tag \"g\" global size=1
tag \"h\" global size=1
global \"g\" zero
global \"h\" zero
func @leaf(0) {
B0:
  r0 = iconst 1
  sstore r0, \"g\"
  ret
}
func @mid(0) {
B0:
  call @leaf() mods{} refs{}
  ret
}
func @main(0) {
B0:
  call @mid() mods{} refs{}
  ret
}
";

    #[test]
    fn summary_hash_changes_with_callee_mods() {
        let mut a = ir::parse_module(SRC).unwrap();
        let mut b = ir::parse_module(&SRC.replace("sstore r0, \"g\"", "sstore r0, \"h\"")).unwrap();
        let oa = analyze(&mut a, AnalysisLevel::ModRef);
        let ob = analyze(&mut b, AnalysisLevel::ModRef);
        let ha = modref_summary_hashes(&a, &oa.modref);
        let hb = modref_summary_hashes(&b, &ob.modref);
        // The summary change propagates up the call chain (MOD sets are
        // transitive), so every digest on the chain moves.
        assert_ne!(ha[0], hb[0]);
        assert_ne!(ha[1], hb[1]);
    }

    #[test]
    fn callers_are_the_reverse_call_graph() {
        let mut m = ir::parse_module(SRC).unwrap();
        let o = analyze(&mut m, AnalysisLevel::ModRef);
        let callers = o.call_graph.callers();
        let name = |f: FuncId| m.funcs[f.index()].name.clone();
        assert_eq!(
            callers[0].iter().map(|&f| name(f)).collect::<Vec<_>>(),
            vec!["mid"]
        );
        assert_eq!(
            callers[1].iter().map(|&f| name(f)).collect::<Vec<_>>(),
            vec!["main"]
        );
        assert!(callers[2].is_empty());
    }
}
