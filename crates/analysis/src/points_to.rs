//! Whole-program points-to analysis.
//!
//! Modeled on the analysis the paper built (after Ruf): whole-program,
//! context-insensitive, heap split by allocation site, explicit names for
//! non-local memory, recursion approximated by collapsing an addressed
//! local of a recursive function onto one name (which our tag scheme does
//! by construction — one tag names every activation's instance, so strong
//! updates are never performed).
//!
//! Where the paper converts each function to SSA form and propagates over
//! SSA names, we propagate over virtual registers with an
//! inclusion-constraint (Andersen-style) worklist; for the pointer
//! variables our front end produces, register granularity loses no
//! precision that the paper's experiments depend on — the substitution is
//! recorded in `DESIGN.md`.

use cfg::DataflowStats;
use ir::{Callee, DenseTagSet, FuncId, Instr, Module, Reg, TagId};
use std::collections::{BTreeSet, VecDeque};

/// An abstract pointer target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Target {
    /// The storage named by a tag.
    Tag(TagId),
    /// A function (for function pointers / indirect calls).
    Func(FuncId),
}

/// The result of points-to analysis.
#[derive(Debug, Clone)]
pub struct PointsTo {
    /// Per function, per register: the set of targets the register may
    /// point to.
    pub reg_pts: Vec<Vec<BTreeSet<Target>>>,
    /// Per tag: the targets that pointers *stored in* that storage may
    /// point to.
    pub tag_pts: Vec<BTreeSet<Target>>,
}

impl PointsTo {
    /// The tags register `r` of function `f` may address.
    pub fn reg_tags(&self, f: FuncId, r: Reg) -> DenseTagSet {
        self.reg_pts[f.index()][r.index()]
            .iter()
            .filter_map(|t| match t {
                Target::Tag(t) => Some(*t),
                Target::Func(_) => None,
            })
            .collect()
    }

    /// The functions register `r` of function `f` may target.
    pub fn reg_funcs(&self, f: FuncId, r: Reg) -> BTreeSet<FuncId> {
        self.reg_pts[f.index()][r.index()]
            .iter()
            .filter_map(|t| match t {
                Target::Func(g) => Some(*g),
                Target::Tag(_) => None,
            })
            .collect()
    }

    /// Per-call-site indirect targets, keyed by `(caller index, target
    /// register)` — the precision MOD/REF installation needs.
    pub fn site_targets(&self, module: &Module) -> crate::SiteTargets {
        let mut out = crate::SiteTargets::new();
        for (fi, func) in module.funcs.iter().enumerate() {
            for block in &func.blocks {
                for instr in &block.instrs {
                    if let Instr::Call {
                        callee: Callee::Indirect(r),
                        ..
                    } = instr
                    {
                        out.insert((fi as u32, *r), self.reg_funcs(FuncId(fi as u32), *r));
                    }
                }
            }
        }
        out
    }

    /// Indirect-call target sets per function (union over that function's
    /// indirect call sites), for rebuilding a sharper call graph.
    pub fn indirect_targets(&self, module: &Module) -> Vec<BTreeSet<FuncId>> {
        let mut out = vec![BTreeSet::new(); module.funcs.len()];
        for (fi, func) in module.funcs.iter().enumerate() {
            for block in &func.blocks {
                for instr in &block.instrs {
                    if let Instr::Call {
                        callee: Callee::Indirect(r),
                        ..
                    } = instr
                    {
                        out[fi].extend(self.reg_funcs(FuncId(fi as u32), *r));
                    }
                }
            }
        }
        out
    }
}

/// Runs the analysis to a fixpoint with the demand-driven solver.
pub fn analyze(module: &Module) -> PointsTo {
    analyze_with(module, false, &mut DataflowStats::default())
}

/// Runs the analysis to a fixpoint, counting work into `stats`.
///
/// With `dense = false` the solver is demand-driven: a function-level
/// worklist with *dynamic subscriptions*. Each sweep of a function records
/// which tag cells and which callees' return values its transfer functions
/// read; when one of those sets later grows, only the subscribed functions
/// are re-swept. A function also re-sweeps itself while its own register
/// sets are still growing (intra-function chains and loops). With
/// `dense = true` it is the old round-robin sweep of every instruction in
/// the module until nothing changes — the benchmark's measured baseline.
pub fn analyze_with(module: &Module, dense: bool, stats: &mut DataflowStats) -> PointsTo {
    let nf = module.funcs.len();
    let nt = module.tags.len();
    let mut pt = PointsTo {
        reg_pts: module
            .funcs
            .iter()
            .map(|f| vec![BTreeSet::new(); f.next_reg as usize])
            .collect(),
        tag_pts: vec![BTreeSet::new(); nt],
    };
    if dense {
        let mut deps = Deps::disabled(nf);
        let mut changed = true;
        let mut guard = 0usize;
        while changed {
            changed = false;
            guard += 1;
            assert!(guard <= 10_000, "points-to failed to converge");
            for fi in 0..nf {
                stats.blocks_visited += 1;
                for block in &module.funcs[fi].blocks {
                    for instr in &block.instrs {
                        stats.transfer_evals += 1;
                        changed |= flow(module, &mut pt, &mut deps, fi, instr);
                    }
                }
            }
        }
        return pt;
    }
    let mut deps = Deps::new(module);
    // Seed every function once, in index order (deterministic).
    for fi in 0..nf {
        deps.enqueue(fi);
    }
    let mut guard = 0usize;
    while let Some(fi) = deps.queue.pop_front() {
        deps.queued[fi] = false;
        deps.current = fi;
        stats.blocks_visited += 1;
        guard += 1;
        assert!(guard <= 10_000 * nf.max(1), "points-to failed to converge");
        for block in &module.funcs[fi].blocks {
            for instr in &block.instrs {
                stats.transfer_evals += 1;
                flow(module, &mut pt, &mut deps, fi, instr);
            }
        }
    }
    stats.worklist_pushes += deps.pushes;
    pt
}

/// Dynamic dependencies for the demand-driven solver: who has to re-run
/// when a points-to set grows.
struct Deps {
    /// Per tag: functions whose transfer read the tag's points-to set.
    tag_readers: Vec<BTreeSet<usize>>,
    /// Per function: callers that read its return-value points-to sets.
    ret_readers: Vec<BTreeSet<usize>>,
    /// Per function: register indices its `ret` instructions return.
    ret_regs: Vec<BTreeSet<usize>>,
    queue: VecDeque<usize>,
    queued: Vec<bool>,
    /// The function currently being swept (subscriptions attach to it).
    current: usize,
    pushes: u64,
    /// False in dense mode: every hook is a no-op.
    enabled: bool,
}

impl Deps {
    fn new(module: &Module) -> Deps {
        let nf = module.funcs.len();
        let mut ret_regs = vec![BTreeSet::new(); nf];
        for (fi, func) in module.funcs.iter().enumerate() {
            for block in &func.blocks {
                if let Some(Instr::Ret { value: Some(r) }) = block.instrs.last() {
                    ret_regs[fi].insert(r.index());
                }
            }
        }
        Deps {
            tag_readers: vec![BTreeSet::new(); module.tags.len()],
            ret_readers: vec![BTreeSet::new(); nf],
            ret_regs,
            queue: VecDeque::new(),
            queued: vec![false; nf],
            current: 0,
            pushes: 0,
            enabled: true,
        }
    }

    fn disabled(nf: usize) -> Deps {
        Deps {
            tag_readers: Vec::new(),
            ret_readers: Vec::new(),
            ret_regs: Vec::new(),
            queue: VecDeque::new(),
            queued: vec![false; nf],
            current: 0,
            pushes: 0,
            enabled: false,
        }
    }

    fn enqueue(&mut self, f: usize) {
        if !self.enabled || self.queued[f] {
            return;
        }
        self.queued[f] = true;
        self.pushes += 1;
        self.queue.push_back(f);
    }

    /// The current sweep read `tag_pts[t]`.
    fn note_tag_read(&mut self, t: usize) {
        if self.enabled {
            let cur = self.current;
            self.tag_readers[t].insert(cur);
        }
    }

    /// The current sweep read `g`'s return-value sets.
    fn note_ret_read(&mut self, g: usize) {
        if self.enabled {
            let cur = self.current;
            self.ret_readers[g].insert(cur);
        }
    }

    /// `tag_pts[t]` grew: re-run everyone who ever read it.
    fn tag_grew(&mut self, t: usize) {
        if self.enabled {
            for f in self.tag_readers[t].clone() {
                self.enqueue(f);
            }
        }
    }

    /// `reg_pts[g][r]` grew: `g`'s own transfers may read it, and if it is
    /// a return register, so may every caller of `g`.
    fn reg_grew(&mut self, g: usize, r: usize) {
        if self.enabled {
            self.enqueue(g);
            if self.ret_regs[g].contains(&r) {
                for f in self.ret_readers[g].clone() {
                    self.enqueue(f);
                }
            }
        }
    }
}

/// Applies one instruction's transfer function; returns true if anything
/// grew. Growth and reads are reported to `deps` so the demand-driven
/// solver knows what to re-run.
fn flow(module: &Module, pt: &mut PointsTo, deps: &mut Deps, fi: usize, instr: &Instr) -> bool {
    fn add(dst: &mut BTreeSet<Target>, items: &BTreeSet<Target>) -> bool {
        let before = dst.len();
        dst.extend(items.iter().copied());
        dst.len() != before
    }
    fn add_one(dst: &mut BTreeSet<Target>, t: Target) -> bool {
        dst.insert(t)
    }
    let regs = |pt: &PointsTo, r: Reg| pt.reg_pts[fi][r.index()].clone();
    match instr {
        Instr::Lea { dst, tag } => {
            let grew = add_one(&mut pt.reg_pts[fi][dst.index()], Target::Tag(*tag));
            if grew {
                deps.reg_grew(fi, dst.index());
            }
            grew
        }
        Instr::Alloc { dst, site, .. } => {
            let grew = add_one(&mut pt.reg_pts[fi][dst.index()], Target::Tag(*site));
            if grew {
                deps.reg_grew(fi, dst.index());
            }
            grew
        }
        Instr::FuncAddr { dst, func } => {
            let grew = add_one(&mut pt.reg_pts[fi][dst.index()], Target::Func(*func));
            if grew {
                deps.reg_grew(fi, dst.index());
            }
            grew
        }
        Instr::Copy { dst, src } | Instr::Unary { dst, src, .. } => {
            let s = regs(pt, *src);
            let grew = add(&mut pt.reg_pts[fi][dst.index()], &s);
            if grew {
                deps.reg_grew(fi, dst.index());
            }
            grew
        }
        Instr::PtrAdd { dst, base, .. } => {
            let s = regs(pt, *base);
            let grew = add(&mut pt.reg_pts[fi][dst.index()], &s);
            if grew {
                deps.reg_grew(fi, dst.index());
            }
            grew
        }
        Instr::Binary { dst, lhs, rhs, .. } => {
            // Conservative: arithmetic may smuggle a pointer through int
            // cells (MiniC permits pointer<->int flows).
            let mut s = regs(pt, *lhs);
            s.extend(regs(pt, *rhs));
            let grew = add(&mut pt.reg_pts[fi][dst.index()], &s);
            if grew {
                deps.reg_grew(fi, dst.index());
            }
            grew
        }
        Instr::Phi { dst, args } => {
            let mut s = BTreeSet::new();
            for (_, r) in args {
                s.extend(regs(pt, *r));
            }
            let grew = add(&mut pt.reg_pts[fi][dst.index()], &s);
            if grew {
                deps.reg_grew(fi, dst.index());
            }
            grew
        }
        Instr::SLoad { dst, tag } | Instr::CLoad { dst, tag } => {
            deps.note_tag_read(tag.index());
            let s = pt.tag_pts[tag.index()].clone();
            let grew = add(&mut pt.reg_pts[fi][dst.index()], &s);
            if grew {
                deps.reg_grew(fi, dst.index());
            }
            grew
        }
        Instr::SStore { src, tag } => {
            let s = regs(pt, *src);
            let grew = add(&mut pt.tag_pts[tag.index()], &s);
            if grew {
                deps.tag_grew(tag.index());
            }
            grew
        }
        Instr::Load { dst, addr, .. } => {
            let mut s = BTreeSet::new();
            for t in regs(pt, *addr) {
                if let Target::Tag(t) = t {
                    deps.note_tag_read(t.index());
                    s.extend(pt.tag_pts[t.index()].iter().copied());
                }
            }
            let grew = add(&mut pt.reg_pts[fi][dst.index()], &s);
            if grew {
                deps.reg_grew(fi, dst.index());
            }
            grew
        }
        Instr::Store { src, addr, .. } => {
            let vals = regs(pt, *src);
            let mut changed = false;
            for t in regs(pt, *addr) {
                if let Target::Tag(t) = t {
                    if add(&mut pt.tag_pts[t.index()], &vals) {
                        deps.tag_grew(t.index());
                        changed = true;
                    }
                }
            }
            changed
        }
        Instr::Call {
            dst, callee, args, ..
        } => {
            // Parameter binding and result flow, context-insensitively.
            let targets: Vec<FuncId> = match callee {
                Callee::Direct(g) => vec![*g],
                Callee::Indirect(r) => pt.reg_pts[fi][r.index()]
                    .iter()
                    .filter_map(|t| match t {
                        Target::Func(g) => Some(*g),
                        _ => None,
                    })
                    .collect(),
                Callee::Intrinsic(_) => return false,
            };
            let mut changed = false;
            for g in targets {
                let callee_fn = module.func(g);
                for (i, a) in args.iter().enumerate().take(callee_fn.arity) {
                    let s = regs(pt, *a);
                    if add(&mut pt.reg_pts[g.index()][i], &s) {
                        deps.reg_grew(g.index(), i);
                        changed = true;
                    }
                }
                if let Some(d) = dst {
                    // Union of all values returned by g.
                    deps.note_ret_read(g.index());
                    let mut rets = BTreeSet::new();
                    for block in &callee_fn.blocks {
                        if let Some(Instr::Ret { value: Some(r) }) = block.instrs.last() {
                            rets.extend(pt.reg_pts[g.index()][r.index()].iter().copied());
                        }
                    }
                    if add(&mut pt.reg_pts[fi][d.index()], &rets) {
                        deps.reg_grew(fi, d.index());
                        changed = true;
                    }
                }
            }
            changed
        }
        _ => false,
    }
}

/// Uses points-to results to shrink pointer-op tag sets in place.
///
/// Each `load`/`store` through register `r` gets
/// `pts(r) ∩ current tag set`; an empty points-to set (a pointer the
/// analysis never saw created) conservatively keeps the current set.
pub fn apply(module: &mut Module, pt: &PointsTo) {
    for fi in 0..module.funcs.len() {
        let f = FuncId(fi as u32);
        for bi in 0..module.funcs[fi].blocks.len() {
            for ii in 0..module.funcs[fi].blocks[bi].instrs.len() {
                let instr = &module.funcs[fi].blocks[bi].instrs[ii];
                let (addr, old) = match instr {
                    Instr::Load { addr, tags, .. } | Instr::Store { addr, tags, .. } => {
                        (*addr, tags.clone())
                    }
                    _ => continue,
                };
                let pts = pt.reg_tags(f, addr);
                if pts.is_empty() {
                    continue;
                }
                let new = old.intersect_universe(&pts);
                match &mut module.funcs[fi].blocks[bi].instrs[ii] {
                    Instr::Load { tags, .. } | Instr::Store { tags, .. } => *tags = new,
                    _ => unreachable!(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::TagSet;

    fn compile(src: &str) -> Module {
        minic::compile(src).expect("compile")
    }

    fn tag(m: &Module, name: &str) -> TagId {
        m.tags.lookup(name).unwrap_or_else(|| panic!("tag {name}"))
    }

    /// Find the tag set of the first Store in a function.
    fn first_store_tags(m: &Module, func: &str) -> TagSet {
        let f = m.func(m.lookup_func(func).unwrap());
        f.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find_map(|i| match i {
                Instr::Store { tags, .. } => Some(tags.clone()),
                _ => None,
            })
            .expect("store")
    }

    #[test]
    fn distinguishes_two_pointers() {
        let mut m = compile(
            r#"
int main() {
    int x = 0;
    int y = 0;
    int *p = &x;
    int *q = &y;
    *p = 1;
    *q = 2;
    return x + y;
}
"#,
        );
        let pt = analyze(&m);
        apply(&mut m, &pt);
        let x_tag = tag(&m, "main.x");
        let y_tag = tag(&m, "main.y");
        let main = m.func(m.main().unwrap());
        let stores: Vec<TagSet> = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match i {
                Instr::Store { tags, .. } => Some(tags.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(stores.len(), 2);
        assert_eq!(stores[0].as_singleton(), Some(x_tag));
        assert_eq!(stores[1].as_singleton(), Some(y_tag));
    }

    #[test]
    fn merges_at_join_points() {
        let mut m = compile(
            r#"
int pick;
int main() {
    int x = 0;
    int y = 0;
    int *p;
    if (pick) { p = &x; } else { p = &y; }
    *p = 1;
    return x + y;
}
"#,
        );
        let pt = analyze(&m);
        apply(&mut m, &pt);
        let s = first_store_tags(&m, "main");
        assert!(s.contains(tag(&m, "main.x")));
        assert!(s.contains(tag(&m, "main.y")));
        assert_eq!(s.len(), Some(2));
    }

    #[test]
    fn flows_through_parameters() {
        let mut m = compile(
            r#"
void set(int *p) { *p = 7; }
int main() {
    int a = 0;
    set(&a);
    return a;
}
"#,
        );
        let pt = analyze(&m);
        apply(&mut m, &pt);
        let s = first_store_tags(&m, "set");
        assert_eq!(s.as_singleton(), Some(tag(&m, "main.a")));
    }

    #[test]
    fn heap_sites_are_distinguished() {
        let mut m = compile(
            r#"
int main() {
    int *p = malloc(4);
    int *q = malloc(4);
    p[0] = 1;
    q[0] = 2;
    return p[0] + q[0];
}
"#,
        );
        let pt = analyze(&m);
        apply(&mut m, &pt);
        let main = m.func(m.main().unwrap());
        let stores: Vec<TagSet> = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match i {
                Instr::Store { tags, .. } => Some(tags.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(stores[0].as_singleton(), Some(tag(&m, "heap@0")));
        assert_eq!(stores[1].as_singleton(), Some(tag(&m, "heap@1")));
    }

    #[test]
    fn pointers_stored_in_memory_flow_back_out() {
        let mut m = compile(
            r#"
int *cell;
int target;
int main() {
    cell = &target;
    int *p = cell;
    *p = 3;
    return target;
}
"#,
        );
        let pt = analyze(&m);
        apply(&mut m, &pt);
        let s = first_store_tags(&m, "main");
        assert_eq!(s.as_singleton(), Some(tag(&m, "g:target")));
    }

    #[test]
    fn function_pointers_resolve_indirect_calls() {
        let m = compile(
            r#"
int f1(int x) { return x + 1; }
int f2(int x) { return x + 2; }
int main() {
    func g = f1;
    if (g(0)) { g = &f2; }
    return g(1);
}
"#,
        );
        let pt = analyze(&m);
        let targets = pt.indirect_targets(&m);
        let main = m.main().unwrap();
        let f1 = m.lookup_func("f1").unwrap();
        let f2 = m.lookup_func("f2").unwrap();
        assert!(targets[main.index()].contains(&f1));
        assert!(targets[main.index()].contains(&f2));
    }

    #[test]
    fn demand_driven_matches_dense_and_does_less_work() {
        // Multi-function program with stores through memory, parameter
        // flow, return flow, and an indirect call — every subscription
        // kind the demand-driven solver tracks.
        let m = compile(
            r#"
int *cell;
int target;
int slot;
int *give() { return &slot; }
void set(int *p) { *p = 7; }
int pad1() { return 1; }
int pad2() { return 2; }
int pad3() { return 3; }
int main() {
    cell = &target;
    int *p = cell;
    *p = 3;
    int *q = give();
    set(q);
    func g = pad1;
    if (pad2()) { g = &pad3; }
    return g(0);
}
"#,
        );
        let mut sparse_stats = DataflowStats::default();
        let sparse = analyze_with(&m, false, &mut sparse_stats);
        let mut dense_stats = DataflowStats::default();
        let dense = analyze_with(&m, true, &mut dense_stats);
        assert_eq!(sparse.reg_pts, dense.reg_pts);
        assert_eq!(sparse.tag_pts, dense.tag_pts);
        assert!(
            sparse_stats.transfer_evals < dense_stats.transfer_evals,
            "sparse {} >= dense {}",
            sparse_stats.transfer_evals,
            dense_stats.transfer_evals
        );
    }

    #[test]
    fn return_values_carry_pointers() {
        let mut m = compile(
            r#"
int slot;
int *give() { return &slot; }
int main() {
    int *p = give();
    *p = 9;
    return slot;
}
"#,
        );
        let pt = analyze(&m);
        apply(&mut m, &pt);
        let s = first_store_tags(&m, "main");
        assert_eq!(s.as_singleton(), Some(tag(&m, "g:slot")));
    }
}
