//! Interprocedural MOD/REF analysis (§4 of the paper).
//!
//! The analysis proceeds exactly as the paper describes:
//!
//! 1. Tag sets of pointer-based memory operations are limited to tags that
//!    have had their **address taken**, and a local's tag appears only in
//!    operations of **descendants** of the function that creates it.
//! 2. Function tag sets (MOD and REF) are the union of the tags the
//!    function and its call-graph descendants use, computed by condensing
//!    the call graph into SCCs and processing them in reverse topological
//!    order; all functions in an SCC share tag sets.
//! 3. Each call site receives the callee's MOD/REF sets, filtered to tags
//!    visible in the caller.
//!
//! All set algebra here runs on [`DenseTagSet`], so the SCC propagation
//! unions and the per-call-site visibility filters are word-wise kernels
//! once the sets grow past the inline capacity.

use crate::callgraph::{tarjan_sccs, CallGraph};
use ir::{Callee, DenseTagSet, FuncId, Instr, Module, TagKind, TagSet};
use std::collections::BTreeSet;

/// Per-function tag visibility: which tags a function's code could possibly
/// name.
#[derive(Debug, Clone)]
pub struct Visibility {
    /// Visible tag set per function.
    pub visible: Vec<DenseTagSet>,
}

impl Visibility {
    /// Computes visibility: globals, heap, and spill tags are visible
    /// everywhere; a local/param tag is visible exactly in the descendants
    /// of its owner.
    pub fn compute(module: &Module, graph: &CallGraph) -> Visibility {
        let n = module.funcs.len();
        let mut visible: Vec<DenseTagSet> = vec![DenseTagSet::new(); n];
        let mut everywhere = DenseTagSet::new();
        for (id, info) in module.tags.iter() {
            match info.kind {
                TagKind::Global | TagKind::Heap { .. } => {
                    everywhere.insert(id);
                }
                TagKind::Spill { owner } | TagKind::Local { owner } | TagKind::Param { owner } => {
                    for f in graph.descendants(FuncId(owner)) {
                        visible[f.index()].insert(id);
                    }
                }
            }
        }
        for v in &mut visible {
            v.union_with(&everywhere);
        }
        Visibility { visible }
    }
}

/// The computed MOD/REF summaries.
#[derive(Debug, Clone)]
pub struct ModRef {
    /// Tags possibly modified by each function (including via callees).
    pub func_mods: Vec<DenseTagSet>,
    /// Tags possibly referenced by each function (including via callees).
    pub func_refs: Vec<DenseTagSet>,
}

/// Shrinks pointer-based operation tag sets per the address-taken and
/// visibility rules, without any points-to information.
///
/// Every `load`/`store` tag set is intersected with
/// `address-taken ∩ visible(f)`; `{*}` becomes that whole set.
pub fn limit_pointer_ops(module: &mut Module, graph: &CallGraph) {
    let vis = Visibility::compute(module, graph);
    let at = module.tags.address_taken_set();
    for fi in 0..module.funcs.len() {
        let universe = at.intersect(&vis.visible[fi]);
        for block in &mut module.funcs[fi].blocks {
            for instr in &mut block.instrs {
                match instr {
                    Instr::Load { tags, .. } | Instr::Store { tags, .. } => {
                        *tags = tags.intersect_universe(&universe);
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Computes MOD/REF function summaries over the (already limited) tag sets
/// and installs them at every call site.
pub fn compute_and_apply(module: &mut Module, graph: &CallGraph) -> ModRef {
    compute_and_apply_with_sites(module, graph, None)
}

/// A per-call-site resolver for indirect calls: maps `(caller, target
/// register)` to the functions the register may hold. Pointer analysis
/// supplies this; without it every indirect call conservatively targets
/// all addressed functions.
pub type SiteTargets = std::collections::HashMap<(u32, ir::Reg), BTreeSet<FuncId>>;

/// Like [`compute_and_apply`], but indirect call sites whose target
/// register appears in `sites` receive only those targets' effects.
pub fn compute_and_apply_with_sites(
    module: &mut Module,
    graph: &CallGraph,
    sites: Option<&SiteTargets>,
) -> ModRef {
    let n = module.funcs.len();
    let vis = Visibility::compute(module, graph);
    // Direct effects per function.
    let mut func_mods: Vec<DenseTagSet> = vec![DenseTagSet::new(); n];
    let mut func_refs: Vec<DenseTagSet> = vec![DenseTagSet::new(); n];
    for (fi, func) in module.funcs.iter().enumerate() {
        for block in &func.blocks {
            for instr in &block.instrs {
                match instr {
                    Instr::SStore { tag, .. } => {
                        func_mods[fi].insert(*tag);
                    }
                    Instr::SLoad { tag, .. } | Instr::CLoad { tag, .. } => {
                        func_refs[fi].insert(*tag);
                    }
                    Instr::Store { tags, .. } => match tags {
                        TagSet::All => {
                            func_mods[fi].union_with(&vis.visible[fi]);
                        }
                        TagSet::Set(s) => {
                            func_mods[fi].union_with(s);
                        }
                    },
                    Instr::Load { tags, .. } => match tags {
                        TagSet::All => {
                            func_refs[fi].union_with(&vis.visible[fi]);
                        }
                        TagSet::Set(s) => {
                            func_refs[fi].union_with(s);
                        }
                    },
                    _ => {}
                }
            }
        }
    }
    // Propagate over SCCs in reverse topological order (callees first).
    let sccs = tarjan_sccs(graph);
    for comp in &sccs.components {
        // Union of direct effects and callee effects over the component.
        let mut mods = DenseTagSet::new();
        let mut refs = DenseTagSet::new();
        for &f in comp {
            mods.union_with(&func_mods[f.index()]);
            refs.union_with(&func_refs[f.index()]);
            for &g in &graph.callees[f.index()] {
                // Callees in earlier components are final; callees in this
                // component contribute their direct effects (already
                // unioned above on their turn in `comp`).
                mods.union_with(&func_mods[g.index()]);
                refs.union_with(&func_refs[g.index()]);
            }
        }
        for &f in comp {
            func_mods[f.index()] = mods.clone();
            func_refs[f.index()] = refs.clone();
        }
    }
    // Install at call sites, filtered to caller-visible tags.
    for fi in 0..n {
        let visible = &vis.visible[fi];
        let all_addressed: Vec<FuncId> = graph.addressed_funcs.iter().copied().collect();
        for block in &mut module.funcs[fi].blocks {
            for instr in &mut block.instrs {
                if let Instr::Call {
                    callee, mods, refs, ..
                } = instr
                {
                    let targets: Vec<FuncId> = match callee {
                        Callee::Direct(g) => vec![*g],
                        Callee::Indirect(r) => sites
                            .and_then(|s| s.get(&(fi as u32, *r)))
                            .map(|t| t.iter().copied().collect())
                            .unwrap_or_else(|| all_addressed.clone()),
                        Callee::Intrinsic(_) => {
                            // Intrinsics touch no tagged memory.
                            *mods = TagSet::empty();
                            *refs = TagSet::empty();
                            continue;
                        }
                    };
                    let mut m = DenseTagSet::new();
                    let mut r = DenseTagSet::new();
                    for g in targets {
                        m.union_with(&func_mods[g.index()].intersect(visible));
                        r.union_with(&func_refs[g.index()].intersect(visible));
                    }
                    *mods = TagSet::Set(m);
                    *refs = TagSet::Set(r);
                }
            }
        }
    }
    ModRef {
        func_mods,
        func_refs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::TagId;

    fn compile(src: &str) -> Module {
        minic::compile(src).expect("compile")
    }

    fn tag(module: &Module, name: &str) -> TagId {
        module
            .tags
            .lookup(name)
            .unwrap_or_else(|| panic!("tag {name}"))
    }

    #[test]
    fn pointer_ops_limited_to_address_taken() {
        let mut m = compile(
            r#"
int g;
int h;
int main() {
    int x = 0;
    int *p = &x;
    *p = g + h;
    return x;
}
"#,
        );
        let graph = CallGraph::build(&m, None);
        limit_pointer_ops(&mut m, &graph);
        let x_tag = tag(&m, "main.x");
        let main = m.func(m.main().unwrap());
        let store = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find_map(|i| match i {
                Instr::Store { tags, .. } => Some(tags.clone()),
                _ => None,
            })
            .expect("store through p");
        // Only x has its address taken: g and h are not in the set.
        assert!(store.contains(x_tag));
        assert!(!store.contains(tag(&m, "g:g")));
        assert!(!store.contains(tag(&m, "g:h")));
    }

    #[test]
    fn call_sites_receive_callee_effects() {
        let mut m = compile(
            r#"
int g;
int h;
void touch_g() { g = g + 1; }
int read_h() { return h; }
int main() {
    touch_g();
    int v = read_h();
    return v;
}
"#,
        );
        let graph = CallGraph::build(&m, None);
        limit_pointer_ops(&mut m, &graph);
        compute_and_apply(&mut m, &graph);
        let g_tag = tag(&m, "g:g");
        let h_tag = tag(&m, "g:h");
        let main = m.func(m.main().unwrap());
        let calls: Vec<(TagSet, TagSet)> = main
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter_map(|i| match i {
                Instr::Call { mods, refs, .. } => Some((mods.clone(), refs.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(calls.len(), 2);
        // touch_g mods g, refs g; read_h refs h only.
        assert!(calls[0].0.contains(g_tag));
        assert!(!calls[0].0.contains(h_tag));
        assert!(!calls[1].0.contains(g_tag) && !calls[1].0.contains(h_tag));
        assert!(calls[1].1.contains(h_tag));
    }

    #[test]
    fn effects_propagate_through_the_call_graph() {
        let mut m = compile(
            r#"
int g;
void leaf() { g = 1; }
void mid() { leaf(); }
int main() { mid(); return g; }
"#,
        );
        let graph = CallGraph::build(&m, None);
        limit_pointer_ops(&mut m, &graph);
        let mr = compute_and_apply(&mut m, &graph);
        let g_tag = tag(&m, "g:g");
        let mid = m.lookup_func("mid").unwrap();
        let main = m.main().unwrap();
        assert!(mr.func_mods[mid.index()].contains(g_tag));
        assert!(mr.func_mods[main.index()].contains(g_tag));
    }

    #[test]
    fn mutual_recursion_shares_tag_sets() {
        let mut m = compile(
            r#"
int a;
int b;
int even(int n) { if (n == 0) return 1; a = n; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; b = n; return even(n - 1); }
int main() { return even(10); }
"#,
        );
        let graph = CallGraph::build(&m, None);
        limit_pointer_ops(&mut m, &graph);
        let mr = compute_and_apply(&mut m, &graph);
        let a_tag = tag(&m, "g:a");
        let b_tag = tag(&m, "g:b");
        let even = m.lookup_func("even").unwrap();
        let odd = m.lookup_func("odd").unwrap();
        for f in [even, odd] {
            assert!(mr.func_mods[f.index()].contains(a_tag));
            assert!(mr.func_mods[f.index()].contains(b_tag));
        }
    }

    #[test]
    fn locals_invisible_to_non_descendants() {
        let mut m = compile(
            r#"
void stranger(int *p) { *p = 1; }
int main() {
    int x = 0;
    int *q = &x;
    *q = 2;
    return x;
}
"#,
        );
        // `stranger` is never called from main, so main.x must not appear
        // in stranger's store tag set.
        let graph = CallGraph::build(&m, None);
        limit_pointer_ops(&mut m, &graph);
        let x_tag = tag(&m, "main.x");
        let stranger = m.func(m.lookup_func("stranger").unwrap());
        let store_tags = stranger
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find_map(|i| match i {
                Instr::Store { tags, .. } => Some(tags.clone()),
                _ => None,
            })
            .expect("store");
        assert!(!store_tags.contains(x_tag));
    }

    #[test]
    fn intrinsic_calls_have_empty_sets() {
        let mut m = compile("int main() { print_int(1); return 0; }");
        let graph = CallGraph::build(&m, None);
        compute_and_apply(&mut m, &graph);
        let main = m.func(m.main().unwrap());
        for i in main.blocks.iter().flat_map(|b| &b.instrs) {
            if let Instr::Call { mods, refs, .. } = i {
                assert!(mods.is_empty() && refs.is_empty());
            }
        }
    }
}
