//! Interprocedural analysis for the register-promotion compiler.
//!
//! This crate implements the analysis half of the paper (§4): the MOD/REF
//! analysis with address-taken and visibility filtering and call-graph SCC
//! propagation, the whole-program points-to analysis (after Ruf), and — as
//! an ablation — a Steensgaard-style unification analysis. Each analysis
//! runs over and then *rewrites* the tag sets in an [`ir::Module`]; the
//! promoter and the optimizer read only the tag sets, so swapping analysis
//! levels is exactly the experiment of Figures 5–7.
//!
//! ```
//! use analysis::{analyze, AnalysisLevel};
//!
//! let mut module = minic::compile(r#"
//!     int g;
//!     void bump() { g = g + 1; }
//!     int main() { bump(); return g; }
//! "#)?;
//! let outcome = analyze(&mut module, AnalysisLevel::PointsTo);
//! assert_eq!(outcome.level, AnalysisLevel::PointsTo);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod callgraph;
mod modref;
mod points_to;
mod steensgaard;
mod strength;
mod summary;

pub use callgraph::{tarjan_sccs, CallGraph, Sccs};
pub use modref::{
    compute_and_apply, compute_and_apply_with_sites, limit_pointer_ops, ModRef, SiteTargets,
    Visibility,
};
pub use points_to::{
    analyze as points_to_analyze, analyze_with as points_to_analyze_with, apply as points_to_apply,
    PointsTo, Target,
};
pub use steensgaard::{analyze as steensgaard_analyze, apply as steensgaard_apply, Steensgaard};
pub use strength::singleton_is_unique_cell;
pub use summary::modref_summary_hashes;

use ir::{Instr, Module, TagSet};
use std::fmt;

/// The precision level of interprocedural analysis, the independent
/// variable of the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisLevel {
    /// Address-taken + visibility filtering only; call sites assume the
    /// whole visible set. (A baseline below anything the paper measures.)
    AddressTaken,
    /// The paper's MOD/REF analysis.
    ModRef,
    /// MOD/REF sharpened by the inclusion-based points-to analysis, with
    /// MOD/REF re-run afterwards — the paper's "pointer" configuration.
    PointsTo,
    /// Like [`AnalysisLevel::PointsTo`] but run at **SSA-name
    /// granularity**, exactly as the paper describes ("each function is
    /// converted into SSA form ... for each SSA name, the analyzer
    /// determines the set of tags"): functions are converted to pruned
    /// SSA, analyzed, and converted back. The register-granularity level
    /// is the default because it avoids perturbing the measured code with
    /// φ-elimination copies; the test suite checks the two levels promote
    /// identically on the benchmark suite.
    PointsToSsa,
    /// MOD/REF sharpened by Steensgaard-style unification (ablation).
    Steensgaard,
}

impl AnalysisLevel {
    /// All levels, weakest first.
    pub const ALL: [AnalysisLevel; 5] = [
        AnalysisLevel::AddressTaken,
        AnalysisLevel::ModRef,
        AnalysisLevel::Steensgaard,
        AnalysisLevel::PointsTo,
        AnalysisLevel::PointsToSsa,
    ];

    /// The name used in reports (the paper prints `modref` / `pointer`).
    pub fn label(self) -> &'static str {
        match self {
            AnalysisLevel::AddressTaken => "addrtaken",
            AnalysisLevel::ModRef => "modref",
            AnalysisLevel::PointsTo => "pointer",
            AnalysisLevel::PointsToSsa => "pointer-ssa",
            AnalysisLevel::Steensgaard => "steens",
        }
    }
}

impl fmt::Display for AnalysisLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Aggregate statistics about the precision achieved, for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TagSetStats {
    /// Number of pointer-based memory operations.
    pub pointer_ops: usize,
    /// Pointer ops whose tag set is a singleton.
    pub singleton_ops: usize,
    /// Pointer ops still carrying the universal set.
    pub all_ops: usize,
    /// Sum of explicit tag-set sizes over pointer ops.
    pub total_tags: usize,
    /// Number of call sites with explicit MOD sets.
    pub summarized_calls: usize,
}

impl TagSetStats {
    /// Mean explicit tag-set size over pointer ops with explicit sets.
    pub fn mean_tags(&self) -> f64 {
        let explicit = self.pointer_ops - self.all_ops;
        if explicit == 0 {
            0.0
        } else {
            self.total_tags as f64 / explicit as f64
        }
    }
}

/// The result of running [`analyze`].
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// The level that ran.
    pub level: AnalysisLevel,
    /// Final call graph (sharpened by pointer analysis when available).
    pub call_graph: CallGraph,
    /// Function MOD/REF summaries (empty sets at `AddressTaken` level).
    pub modref: ModRef,
    /// Tag-set precision statistics.
    pub stats: TagSetStats,
    /// Solver work done by the points-to fixpoint (zero for levels that
    /// run no points-to analysis).
    pub dataflow: cfg::DataflowStats,
}

/// Runs interprocedural analysis at `level`, rewriting the module's tag
/// sets and call-site MOD/REF lists in place.
pub fn analyze(module: &mut Module, level: AnalysisLevel) -> AnalysisOutcome {
    analyze_traced(module, level, None)
}

/// [`analyze`] with optional per-function trace buffers (one per function,
/// module index order). Only the `PointsToSsa` level currently emits
/// events — the SSA construction/destruction deltas of its per-name
/// analysis round trip.
pub fn analyze_traced(
    module: &mut Module,
    level: AnalysisLevel,
    traces: Option<&mut [trace::FuncTrace]>,
) -> AnalysisOutcome {
    analyze_traced_with(module, level, traces, false)
}

/// [`analyze_traced`] with solver selection: `dense_dataflow` runs the
/// points-to fixpoint as the round-robin baseline sweep instead of the
/// demand-driven worklist (the benchmark measures both).
pub fn analyze_traced_with(
    module: &mut Module,
    level: AnalysisLevel,
    mut traces: Option<&mut [trace::FuncTrace]>,
    dense_dataflow: bool,
) -> AnalysisOutcome {
    let mut dataflow = cfg::DataflowStats::default();
    let graph = CallGraph::build(module, None);
    limit_pointer_ops(module, &graph);
    let (graph, modref) = match level {
        AnalysisLevel::AddressTaken => {
            // Weakest sound call summaries: everything visible.
            let vis = Visibility::compute(module, &graph);
            let n = module.funcs.len();
            for fi in 0..n {
                let visible = vis.visible[fi].clone();
                for block in &mut module.funcs[fi].blocks {
                    for instr in &mut block.instrs {
                        if let Instr::Call {
                            callee, mods, refs, ..
                        } = instr
                        {
                            if matches!(callee, ir::Callee::Intrinsic(_)) {
                                *mods = TagSet::empty();
                                *refs = TagSet::empty();
                            } else {
                                *mods = TagSet::Set(visible.clone());
                                *refs = TagSet::Set(visible.clone());
                            }
                        }
                    }
                }
            }
            let modref = ModRef {
                func_mods: vec![Default::default(); module.funcs.len()],
                func_refs: vec![Default::default(); module.funcs.len()],
            };
            (graph, modref)
        }
        AnalysisLevel::ModRef => {
            let modref = compute_and_apply(module, &graph);
            (graph, modref)
        }
        AnalysisLevel::PointsTo => {
            let pt = points_to_analyze_with(module, dense_dataflow, &mut dataflow);
            points_to_apply(module, &pt);
            // Sharper call graph from resolved function pointers, then the
            // paper's "MOD/REF analysis is then repeated" — with per-site
            // indirect-call precision.
            let targets = pt.indirect_targets(module);
            let sites = pt.site_targets(module);
            let graph = CallGraph::build(module, Some(&targets));
            let modref = compute_and_apply_with_sites(module, &graph, Some(&sites));
            (graph, modref)
        }
        AnalysisLevel::PointsToSsa => {
            // The paper's formulation: per-SSA-name points-to. Convert,
            // analyze at what is now SSA-name granularity, install the
            // results, convert back (φs become coalescable copies).
            // One analysis cache per function, shared between the two
            // conversions: destruction's critical-edge scan reuses the CFG
            // construction built (tag-set application in between is
            // instruction-metadata only).
            let mut caches: Vec<cfg::FunctionAnalyses> = module
                .funcs
                .iter()
                .map(|_| cfg::FunctionAnalyses::new())
                .collect();
            for (fi, (f, fa)) in module.funcs.iter_mut().zip(&mut caches).enumerate() {
                match traces.as_deref_mut() {
                    Some(ts) => {
                        ssa::construct_in_traced(f, fa, &mut ts[fi]);
                    }
                    None => {
                        ssa::construct_in(f, fa);
                    }
                }
            }
            let pt = points_to_analyze_with(module, dense_dataflow, &mut dataflow);
            points_to_apply(module, &pt);
            let targets = pt.indirect_targets(module);
            let sites = pt.site_targets(module);
            let graph = CallGraph::build(module, Some(&targets));
            let modref = compute_and_apply_with_sites(module, &graph, Some(&sites));
            for (fi, (f, fa)) in module.funcs.iter_mut().zip(&mut caches).enumerate() {
                match traces.as_deref_mut() {
                    Some(ts) => {
                        ssa::destruct_in_traced(f, fa, &mut ts[fi]);
                    }
                    None => {
                        ssa::destruct_in(f, fa);
                    }
                }
            }
            (graph, modref)
        }
        AnalysisLevel::Steensgaard => {
            let st = steensgaard_analyze(module);
            steensgaard_apply(module, &st);
            let targets = st.indirect_targets(module);
            let sites = st.site_targets(module);
            let graph = CallGraph::build(module, Some(&targets));
            let modref = compute_and_apply_with_sites(module, &graph, Some(&sites));
            (graph, modref)
        }
    };
    let stats = collect_stats(module);
    AnalysisOutcome {
        level,
        call_graph: graph,
        modref,
        stats,
        dataflow,
    }
}

fn collect_stats(module: &Module) -> TagSetStats {
    let mut stats = TagSetStats::default();
    for func in &module.funcs {
        for block in &func.blocks {
            for instr in &block.instrs {
                match instr {
                    Instr::Load { tags, .. } | Instr::Store { tags, .. } => {
                        stats.pointer_ops += 1;
                        match tags.len() {
                            None => stats.all_ops += 1,
                            Some(n) => {
                                stats.total_tags += n;
                                if n == 1 {
                                    stats.singleton_ops += 1;
                                }
                            }
                        }
                    }
                    Instr::Call { mods, .. } => {
                        if !mods.is_all() {
                            stats.summarized_calls += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_is_monotone_across_levels() {
        let src = r#"
int g;
int h;
int data[16];
void writer(int *p) { *p = g; }
int main() {
    int i;
    int x = 0;
    for (i = 0; i < 16; i++) {
        writer(&x);
        data[i] = x + h;
    }
    return x;
}
"#;
        let mut means = Vec::new();
        for level in [
            AnalysisLevel::AddressTaken,
            AnalysisLevel::Steensgaard,
            AnalysisLevel::PointsTo,
        ] {
            let mut m = minic::compile(src).unwrap();
            let out = analyze(&mut m, level);
            ir::validate(&m).expect("still valid");
            means.push(out.stats.mean_tags());
        }
        // Monotonically non-increasing mean tag-set size.
        assert!(means[0] >= means[1], "{means:?}");
        assert!(means[1] >= means[2], "{means:?}");
    }

    #[test]
    fn pointsto_gives_singleton_for_unique_target() {
        let src = r#"
int g;
int main() {
    int x = 0;
    int *p = &x;
    *p = g;
    return x;
}
"#;
        let mut m = minic::compile(src).unwrap();
        let out = analyze(&mut m, AnalysisLevel::PointsTo);
        assert_eq!(out.stats.singleton_ops, out.stats.pointer_ops);
    }

    #[test]
    fn analysis_preserves_behaviour() {
        let src = r#"
int g;
int acc[8];
void step(int *p, int k) { *p = *p + k; g = g + 1; }
int main() {
    int i;
    int x = 0;
    for (i = 0; i < 8; i++) {
        step(&x, i);
        acc[i] = x;
    }
    print_int(x);
    print_int(g);
    return 0;
}
"#;
        let baseline = {
            let m = minic::compile(src).unwrap();
            vm::Vm::run_main(&m, vm::VmOptions::default()).unwrap()
        };
        for level in AnalysisLevel::ALL {
            let mut m = minic::compile(src).unwrap();
            analyze(&mut m, level);
            ir::validate(&m).expect("valid after analysis");
            let out = vm::Vm::run_main(&m, vm::VmOptions::default()).unwrap();
            assert_eq!(out.output, baseline.output, "level {level}");
            // Analysis alone never changes memory traffic; the SSA-based
            // level may add (coalescable) φ-elimination copies, every
            // other level changes no executed instruction at all.
            assert_eq!(out.counts.loads, baseline.counts.loads, "level {level}");
            assert_eq!(out.counts.stores, baseline.counts.stores, "level {level}");
            if level != AnalysisLevel::PointsToSsa {
                assert_eq!(out.counts, baseline.counts, "level {level}");
            }
        }
    }
}
