//! SSA well-formedness checking.

use cfg::{Cfg, DomTree};
use ir::{BlockId, Function, Instr, Reg};
use std::error::Error;
use std::fmt;

/// A violation of SSA form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsaError(String);

impl fmt::Display for SsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SSA violation: {}", self.0)
    }
}

impl Error for SsaError {}

/// Checks that `func` is in SSA form:
///
/// * every register has at most one definition (parameters count as
///   defined at entry);
/// * every use is dominated by its definition (φ-uses are checked at the
///   corresponding predecessor's exit); never-defined registers are
///   permitted only as whole-function "undefined value" names (no
///   definition anywhere);
/// * every φ has exactly one argument per reachable predecessor.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_ssa(func: &Function) -> Result<(), SsaError> {
    let cfg = Cfg::build(func);
    let dom = DomTree::lengauer_tarjan(&cfg);
    let nregs = func.next_reg as usize;
    // Definition positions. Instruction indices are shifted by one so
    // that parameters can sit at position 0, strictly before the entry
    // block's first instruction.
    let mut def_at: Vec<Option<(BlockId, usize)>> = vec![None; nregs];
    for p in 0..func.arity {
        def_at[p] = Some((func.entry, 0));
    }
    for b in func.block_ids() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            if let Some(d) = instr.def() {
                if let Some((ob, oi)) = def_at[d.index()] {
                    if (ob, oi) != (b, i + 1) {
                        return Err(SsaError(format!(
                            "{d} defined at {ob}[{oi}] and again at {b}[{i}]"
                        )));
                    }
                }
                def_at[d.index()] = Some((b, i + 1));
            }
        }
    }
    // Dominance of uses.
    let dominates_use = |def: Option<(BlockId, usize)>, ub: BlockId, ui: usize| -> bool {
        match def {
            None => true, // undefined-value name
            Some((db, di)) => {
                if db == ub {
                    di < ui
                } else {
                    dom.strictly_dominates(db, ub) || dom.dominates(db, ub)
                }
            }
        }
    };
    for b in func.block_ids() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let preds = &cfg.preds[b.index()];
        for (i, instr) in func.block(b).instrs.iter().enumerate() {
            if let Instr::Phi { dst, args } = instr {
                let reachable_preds: Vec<BlockId> = preds
                    .iter()
                    .copied()
                    .filter(|p| cfg.is_reachable(*p))
                    .collect();
                if args.len() != reachable_preds.len() {
                    return Err(SsaError(format!(
                        "phi {dst} in {b} has {} args for {} predecessors",
                        args.len(),
                        reachable_preds.len()
                    )));
                }
                for (p, r) in args {
                    if !reachable_preds.contains(p) {
                        return Err(SsaError(format!(
                            "phi {dst} in {b} names non-predecessor {p}"
                        )));
                    }
                    // The argument must be available at the end of p.
                    let avail = match def_at[r.index()] {
                        None => true,
                        Some((db, _)) => dom.dominates(db, *p),
                    };
                    if !avail {
                        return Err(SsaError(format!(
                            "phi {dst} argument {r} not available at end of {p}"
                        )));
                    }
                }
            } else {
                let mut bad: Option<Reg> = None;
                instr.visit_uses(|r| {
                    if bad.is_none() && !dominates_use(def_at[r.index()], b, i + 1) {
                        bad = Some(r);
                    }
                });
                if let Some(r) = bad {
                    return Err(SsaError(format!(
                        "use of {r} at {b}[{i}] not dominated by its definition"
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::FunctionBuilder;

    #[test]
    fn rejects_double_definition() {
        let mut b = FunctionBuilder::new("f", 0);
        let r = b.iconst(1);
        b.emit(Instr::IConst { dst: r, value: 2 });
        b.ret(None);
        let f = b.finish();
        assert!(verify_ssa(&f).is_err());
    }

    #[test]
    fn accepts_straight_line_ssa() {
        let mut b = FunctionBuilder::new("f", 0);
        let x = b.iconst(1);
        let y = b.copy(x);
        b.ret(Some(y));
        let mut f = b.finish();
        f.has_result = true;
        assert!(verify_ssa(&f).is_ok());
    }

    #[test]
    fn rejects_use_not_dominated() {
        // use in entry of a value defined in a later block.
        let mut b = FunctionBuilder::new("f", 0);
        let later = b.new_block();
        let v = b.new_reg();
        let u = b.copy(v); // use before any def
        let _ = u;
        b.jump(later);
        b.switch_to(later);
        b.emit(Instr::IConst { dst: v, value: 3 });
        b.ret(None);
        let f = b.finish();
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.to_string().contains("not dominated"));
    }
}
