//! SSA form for the register-promotion IL.
//!
//! The paper's points-to analysis "converts each function into SSA form"
//! and propagates pointer values over SSA names (after Ruf). This crate
//! provides that machinery: pruned SSA construction (Cytron et al.
//! dominance-frontier placement + liveness pruning), SSA verification, and
//! destruction back to executable form via edge-split parallel copies.
//!
//! The default pipeline's analyses run at register granularity (a
//! documented substitution in `DESIGN.md`); the analysis crate's
//! `PointsToSsa` configuration uses this crate to run the paper's
//! SSA-name-granularity analysis, and the test suite checks both levels
//! agree on the benchmark suite.
//!
//! ```
//! let module = ir::parse_module(r#"
//! func @main(0) result {
//! B0:
//!   r0 = iconst 0
//!   jump B1
//! B1:
//!   r1 = iconst 1
//!   r0 = add r0, r1
//!   r2 = iconst 10
//!   r3 = cmplt r0, r2
//!   branch r3, B1, B2
//! B2:
//!   ret r0
//! }
//! "#)?;
//! let mut func = module.func(module.main().unwrap()).clone();
//! let map = ssa::construct(&mut func);
//! ssa::verify_ssa(&func)?;                 // r0 now has φ-managed versions
//! let removed = ssa::destruct(&mut func);  // back to executable copies
//! assert!(removed >= 1);
//! # let _ = map;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod construct;
mod destruct;
mod verify;

pub use construct::{construct, construct_in, SsaMap};
pub use destruct::{
    destruct, destruct_in, sequentialize_parallel_copy, split_critical_edges,
    split_critical_edges_in,
};
pub use verify::{verify_ssa, SsaError};

/// The before-count for a delta: the [`trace::FuncTrace`] stats cache if
/// a preceding delta stage left one, else a fresh body scan. `None` when
/// tracing is off.
fn cached_or_scan(func: &ir::Function, tr: &trace::FuncTrace) -> Option<ir::BodyStats> {
    if !tr.enabled() {
        return None;
    }
    Some(match tr.cached_stats() {
        Some((instrs, loads, stores)) => ir::BodyStats {
            instrs,
            loads,
            stores,
        },
        None => func.body_stats(),
    })
}

/// [`construct_in`] with a `ssa-construct` delta recorded when tracing is
/// enabled (φ insertion shows up as negative `instrs_removed`).
pub fn construct_in_traced(
    func: &mut ir::Function,
    analyses: &mut cfg::FunctionAnalyses,
    tr: &mut trace::FuncTrace,
) -> SsaMap {
    let before = cached_or_scan(func, tr);
    let map = construct_in(func, analyses);
    if let Some(before) = before {
        let after = func.body_stats();
        let (i, l, s) = before.delta(&after);
        tr.delta("ssa-construct", i, l, s);
        tr.set_stats((after.instrs, after.loads, after.stores));
    }
    map
}

/// [`destruct_in`] with a `ssa-destruct` delta recorded when tracing is
/// enabled.
pub fn destruct_in_traced(
    func: &mut ir::Function,
    analyses: &mut cfg::FunctionAnalyses,
    tr: &mut trace::FuncTrace,
) -> usize {
    let before = cached_or_scan(func, tr);
    let removed = destruct_in(func, analyses);
    if let Some(before) = before {
        let after = func.body_stats();
        let (i, l, s) = before.delta(&after);
        tr.delta("ssa-destruct", i, l, s);
        tr.set_stats((after.instrs, after.loads, after.stores));
    }
    removed
}
