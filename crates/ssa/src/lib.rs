//! SSA form for the register-promotion IL.
//!
//! The paper's points-to analysis "converts each function into SSA form"
//! and propagates pointer values over SSA names (after Ruf). This crate
//! provides that machinery: pruned SSA construction (Cytron et al.
//! dominance-frontier placement + liveness pruning), SSA verification, and
//! destruction back to executable form via edge-split parallel copies.
//!
//! The default pipeline's analyses run at register granularity (a
//! documented substitution in `DESIGN.md`); the analysis crate's
//! `PointsToSsa` configuration uses this crate to run the paper's
//! SSA-name-granularity analysis, and the test suite checks both levels
//! agree on the benchmark suite.
//!
//! ```
//! let module = ir::parse_module(r#"
//! func @main(0) result {
//! B0:
//!   r0 = iconst 0
//!   jump B1
//! B1:
//!   r1 = iconst 1
//!   r0 = add r0, r1
//!   r2 = iconst 10
//!   r3 = cmplt r0, r2
//!   branch r3, B1, B2
//! B2:
//!   ret r0
//! }
//! "#)?;
//! let mut func = module.func(module.main().unwrap()).clone();
//! let map = ssa::construct(&mut func);
//! ssa::verify_ssa(&func)?;                 // r0 now has φ-managed versions
//! let removed = ssa::destruct(&mut func);  // back to executable copies
//! assert!(removed >= 1);
//! # let _ = map;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod construct;
mod destruct;
mod verify;

pub use construct::{construct, construct_in, SsaMap};
pub use destruct::{
    destruct, destruct_in, sequentialize_parallel_copy, split_critical_edges,
    split_critical_edges_in,
};
pub use verify::{verify_ssa, SsaError};
