//! Pruned SSA construction (Cytron et al.).
//!
//! φ-functions are placed at the iterated dominance frontiers of each
//! register's definition sites, *pruned* by liveness (no φ for a value
//! dead at the join), then definitions are renamed along a dominator-tree
//! walk. Parameters are treated as definitions at the entry; a use
//! reachable by no definition renames to a fresh never-defined register
//! (matching the original program's read-of-uninitialized behaviour).

use cfg::{Cfg, DomTree, FunctionAnalyses};
use ir::{BlockId, Function, Instr, Reg};
use std::collections::{BTreeMap, BTreeSet};

/// Records how construction renamed things, for consumers that need to
/// map SSA names back to the original registers.
#[derive(Debug, Clone)]
pub struct SsaMap {
    /// For every register of the SSA form: the original register it
    /// versions (identity for registers untouched by renaming).
    pub origin: Vec<Reg>,
}

impl SsaMap {
    /// The original register behind an SSA name.
    pub fn origin_of(&self, r: Reg) -> Reg {
        self.origin.get(r.index()).copied().unwrap_or(r)
    }
}

/// Converts `func` to pruned SSA form in place.
///
/// # Panics
///
/// Panics if the function already contains φ-nodes.
pub fn construct(func: &mut Function) -> SsaMap {
    construct_in(func, &mut FunctionAnalyses::new())
}

/// [`construct`] against a shared analysis cache: the CFG, dominator tree,
/// and liveness are taken from (and on a warm cache, reused out of)
/// `analyses`; the φ-insertion and renaming are reported as a body-tier
/// change.
pub fn construct_in(func: &mut Function, analyses: &mut FunctionAnalyses) -> SsaMap {
    assert!(
        !func
            .blocks
            .iter()
            .any(|b| b.instrs.iter().any(|i| matches!(i, Instr::Phi { .. }))),
        "function is already in SSA form"
    );
    let (cfg, dom, live) = analyses.cfg_dom_liveness(func);
    let df = dom.dominance_frontiers(cfg);
    let nregs = func.next_reg as usize;

    // Definition sites per register (entry counts for parameters).
    let mut def_blocks: Vec<BTreeSet<BlockId>> = vec![BTreeSet::new(); nregs];
    for p in 0..func.arity {
        def_blocks[p].insert(func.entry);
    }
    for bid in func.block_ids() {
        for instr in &func.block(bid).instrs {
            if let Some(d) = instr.def() {
                def_blocks[d.index()].insert(bid);
            }
        }
    }

    // φ placement at iterated dominance frontiers, pruned by liveness.
    // phis[b] = set of original registers needing a φ at b.
    let mut phis: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); func.blocks.len()];
    for r in 0..nregs {
        if def_blocks[r].len() < 1 {
            continue;
        }
        let reg = Reg(r as u32);
        let mut work: Vec<BlockId> = def_blocks[r].iter().copied().collect();
        let mut placed: BTreeSet<BlockId> = BTreeSet::new();
        while let Some(b) = work.pop() {
            for &f in &df[b.index()] {
                if !cfg.is_reachable(f) || placed.contains(&f) {
                    continue;
                }
                // Pruned: only where the value is live-in.
                if !live.live_in[f.index()].contains(reg) {
                    continue;
                }
                placed.insert(f);
                phis[f.index()].insert(reg);
                if !def_blocks[r].contains(&f) {
                    work.push(f);
                }
            }
        }
    }
    // Materialize φ instructions (dst filled during renaming; start with
    // the original register as a placeholder).
    for bid in func.block_ids() {
        let list: Vec<Reg> = phis[bid.index()].iter().copied().collect();
        for (k, r) in list.into_iter().enumerate() {
            func.block_mut(bid).instrs.insert(
                k,
                Instr::Phi {
                    dst: r,
                    args: Vec::new(),
                },
            );
        }
    }

    // Renaming along the dominator tree.
    let origin: Vec<Reg> = (0..func.next_reg).map(Reg).collect();
    let mut stacks: Vec<Vec<Reg>> = vec![Vec::new(); nregs];
    // Parameters enter with their own names.
    for p in 0..func.arity {
        stacks[p].push(Reg(p as u32));
    }
    // A shared "undefined" name per original register, created on demand.
    let undef: BTreeMap<Reg, Reg> = BTreeMap::new();

    struct Renamer<'a> {
        func: &'a mut Function,
        cfg: &'a Cfg,
        dom: &'a DomTree,
        stacks: Vec<Vec<Reg>>,
        origin: Vec<Reg>,
        undef: BTreeMap<Reg, Reg>,
        phi_orig: Vec<Vec<Reg>>, // original register of each φ in a block
    }

    impl Renamer<'_> {
        fn fresh(&mut self, orig: Reg) -> Reg {
            let r = Reg(self.func.next_reg);
            self.func.next_reg += 1;
            self.origin.push(orig);
            r
        }

        fn top(&mut self, orig: Reg) -> Reg {
            if let Some(&t) = self.stacks[orig.index()].last() {
                return t;
            }
            if let Some(&u) = self.undef.get(&orig) {
                return u;
            }
            let u = self.fresh(orig);
            self.undef.insert(orig, u);
            u
        }

        fn rename_block(&mut self, b: BlockId) {
            let mut pushed: Vec<Reg> = Vec::new();
            // φ defs first.
            let phi_count = self.phi_orig[b.index()].len();
            for k in 0..phi_count {
                let orig = self.phi_orig[b.index()][k];
                let new = self.fresh(orig);
                if let Instr::Phi { dst, .. } = &mut self.func.blocks[b.index()].instrs[k] {
                    *dst = new;
                }
                self.stacks[orig.index()].push(new);
                pushed.push(orig);
            }
            // Ordinary instructions.
            let len = self.func.blocks[b.index()].instrs.len();
            for i in phi_count..len {
                // Uses first (reading the pre-instruction state)...
                let mut instr =
                    std::mem::replace(&mut self.func.blocks[b.index()].instrs[i], Instr::Nop);
                let mut use_map: Vec<(Reg, Reg)> = Vec::new();
                instr.visit_uses(|r| use_map.push((r, Reg(0))));
                for (orig, new) in &mut use_map {
                    *new = self.top(*orig);
                }
                let mut idx = 0;
                instr.visit_uses_mut(|r| {
                    *r = use_map[idx].1;
                    idx += 1;
                });
                // ...then the definition.
                if let Some(d) = instr.def() {
                    let new = self.fresh(d);
                    *instr.def_mut().expect("def exists") = new;
                    self.stacks[d.index()].push(new);
                    pushed.push(d);
                }
                self.func.blocks[b.index()].instrs[i] = instr;
            }
            // Fill φ arguments of successors.
            for &s in &self.cfg.succs[b.index()] {
                for k in 0..self.phi_orig[s.index()].len() {
                    let orig = self.phi_orig[s.index()][k];
                    let incoming = self.top(orig);
                    if let Instr::Phi { args, .. } = &mut self.func.blocks[s.index()].instrs[k] {
                        args.push((b, incoming));
                    }
                }
            }
            // Recurse over dominator-tree children.
            let children = self.dom.children[b.index()].clone();
            for c in children {
                if self.cfg.is_reachable(c) {
                    self.rename_block(c);
                }
            }
            // Pop this block's definitions.
            for orig in pushed.into_iter().rev() {
                self.stacks[orig.index()].pop();
            }
        }
    }

    let phi_orig: Vec<Vec<Reg>> = phis.iter().map(|s| s.iter().copied().collect()).collect();
    let mut renamer = Renamer {
        func,
        cfg,
        dom,
        stacks,
        origin,
        undef,
        phi_orig,
    };
    renamer.rename_block(cfg.entry);
    let origin = renamer.origin;
    // φ insertion and renaming rewrite instructions and mint registers but
    // leave every edge alone.
    analyses.note_body_changed();
    SsaMap { origin }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_ssa;
    use ir::{BinOp, CmpOp, FunctionBuilder};

    fn loop_function() -> Function {
        // i = 0; while (i < 10) i = i + 1; return i;
        let mut b = FunctionBuilder::new("f", 0);
        let i = b.iconst(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        let ten = b.iconst(10);
        let c = b.cmp(CmpOp::Lt, i, ten);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.iconst(1);
        b.emit(Instr::Binary {
            op: BinOp::Add,
            dst: i,
            lhs: i,
            rhs: one,
        });
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        f.has_result = true;
        f
    }

    #[test]
    fn loop_variable_gets_a_phi() {
        let mut f = loop_function();
        construct(&mut f);
        verify_ssa(&f).expect("valid SSA");
        let phis: usize = f
            .blocks
            .iter()
            .map(|b| {
                b.instrs
                    .iter()
                    .filter(|i| matches!(i, Instr::Phi { .. }))
                    .count()
            })
            .sum();
        assert_eq!(phis, 1, "exactly one phi, for the loop counter");
    }

    #[test]
    fn behaviour_preserved_by_construction() {
        let mut f = loop_function();
        let mut m0 = ir::Module::new();
        m0.add_func(f.clone());
        let before = vm::Vm::run_main(
            &{
                let mut m = ir::Module::new();
                let mut main = f.clone();
                main.name = "main".into();
                m.add_func(main);
                m
            },
            vm::VmOptions::default(),
        );
        construct(&mut f);
        let mut m = ir::Module::new();
        f.name = "main".into();
        m.add_func(f);
        ir::validate(&m).expect("valid IL");
        let after = vm::Vm::run_main(&m, vm::VmOptions::default());
        assert_eq!(before.expect("runs").result, after.expect("runs").result);
    }

    #[test]
    fn origins_track_versions() {
        let mut f = loop_function();
        let map = construct(&mut f);
        // Every register's origin is within the original register space.
        for r in 0..f.next_reg {
            let o = map.origin_of(Reg(r));
            assert!(o.0 <= r);
        }
    }

    #[test]
    fn diamond_join_gets_phi_only_if_live() {
        // x defined in both arms, read after the join -> one phi.
        // y defined in both arms, never read -> pruned, no phi.
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.iconst(0);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let x = b.new_reg();
        let y = b.new_reg();
        b.branch(c, t, e);
        b.switch_to(t);
        b.emit(Instr::IConst { dst: x, value: 1 });
        b.emit(Instr::IConst { dst: y, value: 10 });
        b.jump(j);
        b.switch_to(e);
        b.emit(Instr::IConst { dst: x, value: 2 });
        b.emit(Instr::IConst { dst: y, value: 20 });
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(x));
        let mut f = b.finish();
        f.has_result = true;
        construct(&mut f);
        verify_ssa(&f).expect("valid SSA");
        let phis: usize = f
            .blocks
            .iter()
            .map(|bl| {
                bl.instrs
                    .iter()
                    .filter(|i| matches!(i, Instr::Phi { .. }))
                    .count()
            })
            .sum();
        assert_eq!(phis, 1, "y's phi is pruned");
    }
}
