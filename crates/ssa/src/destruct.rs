//! SSA destruction: replacing φ-functions with copies.
//!
//! Critical edges are split, each edge's φ moves form a *parallel copy*
//! that is sequentialized correctly (temporaries break cycles, so the
//! classic lost-copy and swap problems cannot occur), and the copies are
//! placed at predecessor edge blocks.

use cfg::FunctionAnalyses;
use ir::{BlockId, Function, Instr, Reg};

/// Splits every critical edge (multi-successor source to multi-predecessor
/// target). Returns the number of edges split.
pub fn split_critical_edges(func: &mut Function) -> usize {
    split_critical_edges_in(func, &mut FunctionAnalyses::new())
}

/// [`split_critical_edges`] against a shared analysis cache. Splitting an
/// edge is a shape-tier change; splitting nothing leaves the cache warm.
pub fn split_critical_edges_in(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    let cfg = analyses.cfg(func);
    let mut splits: Vec<(BlockId, BlockId)> = Vec::new();
    for b in func.block_ids() {
        if !cfg.is_reachable(b) {
            continue;
        }
        if cfg.succs[b.index()].len() > 1 {
            for &s in &cfg.succs[b.index()] {
                if cfg.preds[s.index()].len() > 1 {
                    splits.push((b, s));
                }
            }
        }
    }
    let n = splits.len();
    if n > 0 {
        analyses.note_shape_changed();
    }
    for (from, to) in splits {
        let mid = func.new_block();
        func.block_mut(mid).instrs.push(Instr::Jump { target: to });
        // Retarget only the from->to edge(s) in the terminator.
        if let Some(t) = func.block_mut(from).terminator_mut() {
            t.retarget_blocks(|b| if b == to { mid } else { b });
        }
        // φ predecessor labels in `to` must follow the edge.
        for instr in &mut func.block_mut(to).instrs {
            if let Instr::Phi { args, .. } = instr {
                for (p, _) in args {
                    if *p == from {
                        *p = mid;
                    }
                }
            }
        }
    }
    n
}

/// Sequentializes a parallel copy `dst_i <- src_i` into a series of
/// [`Instr::Copy`]s, using `fresh` to allocate a cycle-breaking
/// temporary when needed.
pub fn sequentialize_parallel_copy(
    moves: &[(Reg, Reg)],
    mut fresh: impl FnMut() -> Reg,
) -> Vec<Instr> {
    let mut pending: Vec<(Reg, Reg)> = moves.iter().copied().filter(|(d, s)| d != s).collect();
    let mut out = Vec::new();
    while !pending.is_empty() {
        // A move whose destination is not the source of any other pending
        // move can be emitted safely.
        let ready = pending
            .iter()
            .position(|&(d, _)| !pending.iter().any(|&(_, s)| s == d));
        match ready {
            Some(i) => {
                let (d, s) = pending.remove(i);
                out.push(Instr::Copy { dst: d, src: s });
            }
            None => {
                // Pure cycle: break it with a temporary.
                let (d, s) = pending[0];
                let t = fresh();
                out.push(Instr::Copy { dst: t, src: s });
                pending[0] = (d, t);
                // The original source register is now free to be written:
                // rewrite other pending moves reading `s`? Not needed —
                // only one move may read each cycle register in a valid
                // parallel copy produced by φ-nodes of one block, but stay
                // general: redirect all readers of `s` except the one we
                // just serviced to the temporary.
                for m in pending.iter_mut().skip(1) {
                    if m.1 == s {
                        m.1 = t;
                    }
                }
            }
        }
    }
    out
}

/// Replaces every φ-node with copies on the incoming edges. The function
/// must have no critical edges carrying φ moves; [`split_critical_edges`]
/// is called internally first.
pub fn destruct(func: &mut Function) -> usize {
    destruct_in(func, &mut FunctionAnalyses::new())
}

/// [`destruct`] against a shared analysis cache: edge splits report a
/// shape-tier change, φ removal and copy insertion a body-tier one.
pub fn destruct_in(func: &mut Function, analyses: &mut FunctionAnalyses) -> usize {
    split_critical_edges_in(func, analyses);
    // Collect per-predecessor parallel copies.
    let mut edge_moves: Vec<Vec<(Reg, Reg)>> = vec![Vec::new(); func.blocks.len()];
    let mut removed = 0;
    for b in func.block_ids() {
        // φ-nodes form the block's leading prefix; drain them in one shift
        // instead of one `remove(0)` per node, moving each `args` vector
        // out rather than cloning it.
        let block = func.block_mut(b);
        let nphi = block.first_non_phi();
        for instr in block.instrs.drain(0..nphi) {
            let Instr::Phi { dst, args } = instr else {
                unreachable!("first_non_phi bounds the φ prefix");
            };
            for (p, src) in args {
                edge_moves[p.index()].push((dst, src));
            }
            removed += 1;
        }
    }
    for p in func.block_ids() {
        let moves = std::mem::take(&mut edge_moves[p.index()]);
        if moves.is_empty() {
            continue;
        }
        let seq = sequentialize_parallel_copy(&moves, || {
            let r = Reg(func.next_reg);
            func.next_reg += 1;
            r
        });
        func.block_mut(p).splice_before_terminator(seq);
    }
    if removed > 0 {
        analyses.note_body_changed();
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_copy_simple_chain() {
        // a <- b, b <- c : emit a<-b first, then b<-c.
        let a = Reg(0);
        let b = Reg(1);
        let c = Reg(2);
        let seq = sequentialize_parallel_copy(&[(a, b), (b, c)], || unreachable!());
        assert_eq!(
            seq,
            vec![
                Instr::Copy { dst: a, src: b },
                Instr::Copy { dst: b, src: c }
            ]
        );
    }

    #[test]
    fn parallel_copy_swap_uses_temp() {
        let a = Reg(0);
        let b = Reg(1);
        let t = Reg(9);
        let seq = sequentialize_parallel_copy(&[(a, b), (b, a)], || t);
        // t <- b; a <- ... the cycle is broken through t.
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0], Instr::Copy { dst: t, src: b });
        // After the temp, both targets get written from non-clobbered
        // sources.
        assert!(seq
            .iter()
            .skip(1)
            .any(|i| matches!(i, Instr::Copy { dst, .. } if *dst == a)));
        assert!(seq
            .iter()
            .skip(1)
            .any(|i| matches!(i, Instr::Copy { dst, .. } if *dst == b)));
    }

    #[test]
    fn identity_moves_vanish() {
        let a = Reg(0);
        let seq = sequentialize_parallel_copy(&[(a, a)], || unreachable!());
        assert!(seq.is_empty());
    }
}
