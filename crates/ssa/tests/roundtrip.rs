//! SSA round-trip: construct → verify → destruct must preserve behaviour
//! on real compiled programs, including loops, calls, and recursion.
//!
//! The randomized cases use an in-tree xorshift64* generator so the test
//! is deterministic and builds offline.

use vm::{Vm, VmOptions};

fn roundtrip(src: &str) {
    let module = minic::compile(src).expect("compile");
    let before = Vm::run_main(&module, VmOptions::default()).expect("baseline");
    // SSA on every function, verify, run (the VM executes φ directly).
    let mut in_ssa = module.clone();
    for f in &mut in_ssa.funcs {
        ssa::construct(f);
        ssa::verify_ssa(f).unwrap_or_else(|e| panic!("{}: {e}", f.name));
    }
    ir::validate(&in_ssa).expect("valid IL in SSA form");
    let mid = Vm::run_main(&in_ssa, VmOptions::default()).expect("ssa form runs");
    assert_eq!(
        before.output, mid.output,
        "construction preserves behaviour"
    );
    // Destruct, run again.
    let mut back = in_ssa.clone();
    for f in &mut back.funcs {
        ssa::destruct(f);
        assert!(
            !f.blocks
                .iter()
                .any(|b| b.instrs.iter().any(|i| matches!(i, ir::Instr::Phi { .. }))),
            "{}: no φ remains",
            f.name
        );
    }
    ir::validate(&back).expect("valid IL after destruction");
    let after = Vm::run_main(&back, VmOptions::default()).expect("destructed runs");
    assert_eq!(
        before.output, after.output,
        "destruction preserves behaviour"
    );
}

#[test]
fn loops_and_conditionals() {
    roundtrip(
        r#"
int g;
int main() {
    int x = 0;
    int i;
    for (i = 0; i < 50; i++) {
        if (i % 3 == 0) { x = x + 2; } else { x = x - 1; }
        g = g + x;
    }
    print_int(x);
    print_int(g);
    return 0;
}
"#,
    );
}

#[test]
fn nested_loops_with_breaks() {
    roundtrip(
        r#"
int main() {
    int s = 0;
    int i; int j;
    for (i = 0; i < 10; i++) {
        for (j = 0; j < 10; j++) {
            s = s + i * j;
            if (s > 500) break;
        }
        if (s > 800) break;
    }
    print_int(s);
    return 0;
}
"#,
    );
}

#[test]
fn recursion_and_calls() {
    roundtrip(
        r#"
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(12));
    return 0;
}
"#,
    );
}

#[test]
fn swap_pattern_exercises_parallel_copies() {
    // Classic φ-swap: two values exchanged every iteration.
    roundtrip(
        r#"
int main() {
    int a = 1;
    int b = 2;
    int i;
    for (i = 0; i < 7; i++) {
        int t = a;
        a = b;
        b = t + 1;
    }
    print_int(a);
    print_int(b);
    return 0;
}
"#,
    );
}

#[test]
fn pointer_code_roundtrips() {
    roundtrip(
        r#"
int data[16];
int main() {
    int *p = data;
    int i;
    for (i = 0; i < 16; i++) {
        *p = i * i;
        p = p + 1;
    }
    int s = 0;
    for (i = 0; i < 16; i++) s += data[i];
    print_int(s);
    return 0;
}
"#,
    );
}

fn generated(globals: usize, depth: usize, stmts: &[(usize, usize, i32)]) -> String {
    use std::fmt::Write;
    let mut src = String::new();
    for g in 0..globals {
        let _ = writeln!(src, "int g{g} = {};", g + 1);
    }
    src.push_str("int main() {\n    int a = 1; int b = 2;\n");
    for d in 0..depth {
        let _ = writeln!(src, "    int i{d};");
        let _ = writeln!(src, "    for (i{d} = 0; i{d} < 3; i{d}++) {{");
    }
    for (op, g, c) in stmts {
        let g = g % globals;
        match op % 4 {
            0 => {
                let _ = writeln!(src, "        a = a + g{g} + {c};");
            }
            1 => {
                let _ = writeln!(
                    src,
                    "        if (a % 2) {{ b = a; }} else {{ a = b + {c}; }}"
                );
            }
            2 => {
                let _ = writeln!(src, "        g{g} = g{g} + b;");
            }
            _ => {
                let _ = writeln!(src, "        int t = a; a = b; b = t + {c};");
            }
        }
    }
    for _ in 0..depth {
        src.push_str("    }\n");
    }
    src.push_str("    print_int(a); print_int(b);\n");
    for g in 0..globals {
        let _ = writeln!(src, "    print_int(g{g});");
    }
    src.push_str("    return 0;\n}\n");
    src
}

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn random_programs_roundtrip() {
    let mut rng = Rng::new(0x55A_0C41);
    for _case in 0..64 {
        let globals = 1 + rng.below(3);
        let depth = rng.below(4);
        let n_stmts = 1 + rng.below(7);
        let stmts: Vec<(usize, usize, i32)> = (0..n_stmts)
            .map(|_| (rng.below(4), rng.below(4), 1 + rng.below(8) as i32))
            .collect();
        roundtrip(&generated(globals, depth, &stmts));
    }
}
