//! The promotion data-flow equations (Figure 1 of the paper).
//!
//! For each block `b` the compiler gathers
//!
//! * `B_EXPLICIT(b)` — tags referenced by an explicit memory operation, and
//! * `B_AMBIGUOUS(b)` — tags referenced ambiguously, through procedure
//!   calls or pointer-based operations whose pointer carries multiple tags;
//!
//! then for each loop `l`
//!
//! ```text
//! L_EXPLICIT(l)   = ⋃ B_EXPLICIT(b)   for b ∈ l          (1)
//! L_AMBIGUOUS(l)  = ⋃ B_AMBIGUOUS(b)  for b ∈ l          (2)
//! L_PROMOTABLE(l) = L_EXPLICIT(l) − L_AMBIGUOUS(l)       (3)
//! L_LIFT(l)       = L_PROMOTABLE(l)                 if l is outermost
//!                 = L_PROMOTABLE(l) − L_PROMOTABLE(parent(l))  otherwise (4)
//! ```
//!
//! One extension beyond the paper's presentation: a pointer-based operation
//! whose tag set is a *singleton scalar* is treated as an explicit
//! reference when it provably denotes the same single location as the
//! scalar opcodes would (a global, or a local of a non-recursive function
//! inside that function), and as ambiguous otherwise. Without this, a tag
//! accessed both explicitly and through a singleton pointer would satisfy
//! equation (3) while the rewrite left the pointer access reading stale
//! memory.

use cfg::{LoopForest, LoopId};
use ir::{DenseTagSet, FuncId, Function, Instr, TagId, TagSet, TagTable};

/// How a memory reference participates in the equations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefClass {
    /// Counts into `B_EXPLICIT` and is rewritable to a register copy.
    Explicit,
    /// Counts into `B_AMBIGUOUS`.
    Ambiguous,
}

/// Classifies a singleton pointer-based access to `tag` in `func`.
pub fn classify_singleton(
    tags: &TagTable,
    func: FuncId,
    func_is_recursive: bool,
    tag: TagId,
) -> RefClass {
    if analysis::singleton_is_unique_cell(tags, func, func_is_recursive, tag) {
        RefClass::Explicit
    } else {
        RefClass::Ambiguous
    }
}

/// The per-block information of step 2 of the algorithm.
#[derive(Debug, Clone, Default)]
pub struct BlockSets {
    /// `B_EXPLICIT`: tags referenced by explicit operations.
    pub explicit: DenseTagSet,
    /// `B_AMBIGUOUS`: tags referenced ambiguously. `TagSet::All` when the
    /// block contains an un-analyzed operation.
    pub ambiguous: TagSet,
}

/// Computes `B_EXPLICIT` and `B_AMBIGUOUS` for every block of `func`.
///
/// Takes the tag table (not the module) so the per-function promotion pass
/// can run while other functions are mutably borrowed by the parallel
/// pipeline.
pub fn block_sets(
    tags_table: &TagTable,
    func_id: FuncId,
    func: &Function,
    func_is_recursive: bool,
) -> Vec<BlockSets> {
    let mut out = Vec::with_capacity(func.blocks.len());
    for block in &func.blocks {
        let mut sets = BlockSets::default();
        for instr in &block.instrs {
            match instr {
                Instr::SLoad { tag, .. } | Instr::SStore { tag, .. } | Instr::CLoad { tag, .. } => {
                    sets.explicit.insert(*tag);
                }
                Instr::Load { tags, .. } | Instr::Store { tags, .. } => match tags.as_singleton() {
                    Some(t)
                        if classify_singleton(tags_table, func_id, func_is_recursive, t)
                            == RefClass::Explicit =>
                    {
                        sets.explicit.insert(t);
                    }
                    _ => {
                        sets.ambiguous.union_with(tags);
                    }
                },
                Instr::Call { mods, refs, .. } => {
                    sets.ambiguous.union_with(mods);
                    sets.ambiguous.union_with(refs);
                }
                _ => {}
            }
        }
        out.push(sets);
    }
    out
}

/// The per-loop sets of Figure 1, indexed by [`LoopId`].
#[derive(Debug, Clone)]
pub struct LoopSets {
    /// `L_EXPLICIT` per loop.
    pub explicit: Vec<DenseTagSet>,
    /// `L_AMBIGUOUS` per loop.
    pub ambiguous: Vec<TagSet>,
    /// `L_PROMOTABLE` per loop.
    pub promotable: Vec<DenseTagSet>,
    /// `L_LIFT` per loop.
    pub lift: Vec<DenseTagSet>,
}

impl LoopSets {
    /// Solves equations (1)–(4) over the loop nest with the word-wise
    /// union/difference kernels of [`DenseTagSet`].
    pub fn solve(blocks: &[BlockSets], forest: &LoopForest) -> LoopSets {
        let nloops = forest.len();
        let mut explicit = vec![DenseTagSet::new(); nloops];
        let mut ambiguous = vec![TagSet::empty(); nloops];
        for (li, l) in forest.loops.iter().enumerate() {
            for &b in &l.blocks {
                explicit[li].union_with(&blocks[b.index()].explicit);
                ambiguous[li].union_with(&blocks[b.index()].ambiguous);
            }
        }
        let mut promotable = vec![DenseTagSet::new(); nloops];
        for li in 0..nloops {
            promotable[li] = match &ambiguous[li] {
                // Equation (3): everything is ambiguous, nothing promotes.
                TagSet::All => DenseTagSet::new(),
                TagSet::Set(amb) => explicit[li].difference(amb),
            };
        }
        let mut lift = vec![DenseTagSet::new(); nloops];
        for li in 0..nloops {
            lift[li] = match forest.loops[li].parent {
                None => promotable[li].clone(),
                Some(p) => promotable[li].difference(&promotable[p.index()]),
            };
        }
        LoopSets {
            explicit,
            ambiguous,
            promotable,
            lift,
        }
    }

    /// Union of `L_PROMOTABLE` over every loop containing `b`.
    pub fn promotable_in_block(&self, forest: &LoopForest, b: ir::BlockId) -> DenseTagSet {
        let mut out = DenseTagSet::new();
        let mut cur = forest.block_loop[b.index()];
        while let Some(l) = cur {
            out.union_with(&self.promotable[l.index()]);
            cur = forest.loops[l.index()].parent;
        }
        out
    }

    /// All tags promotable in at least one loop.
    pub fn all_promotable(&self) -> DenseTagSet {
        let mut out = DenseTagSet::new();
        for p in &self.promotable {
            out.union_with(p);
        }
        out
    }

    /// Loops (id order) where `t` must be lifted.
    pub fn lift_loops(&self, t: TagId) -> Vec<LoopId> {
        (0..self.lift.len() as u32)
            .map(LoopId)
            .filter(|l| self.lift[l.index()].contains(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::Module;

    /// Hand-build the situation of the paper's Figure 2 and check every
    /// set matches the figure. Loop structure (headers): B1 ⊃ B3 ⊃ B5.
    ///
    /// | block | B_EXPLICIT | B_AMBIGUOUS |
    /// |-------|------------|-------------|
    /// | B0    | C (sload)  |             |
    /// | B1    | C (sstore) | A, B?      | — the JSR in B1 references A ambiguously
    /// | B3    | B (sstore) | B (JSR)     |
    /// | B5    | A (sload)  |             |
    fn figure2_module() -> (Module, FuncId) {
        let src = r#"
tag "A" global size=1 addressed
tag "B" global size=1 addressed
tag "C" global size=1 addressed
global "A" ints 1
global "B" ints 2
global "C" ints 3
func @ext(0) {
B0:
  ret
}
func @main(0) {
B0:
  r0 = sload "C"
  jump B1
B1:
  sstore r0, "C"
  call @ext() mods{"A"} refs{"A"}
  jump B2
B2:
  r1 = sload "A"
  jump B3
B3:
  sstore r1, "B"
  call @ext() mods{"B"} refs{"B"}
  jump B4
B4:
  jump B5
B5:
  r2 = sload "A"
  jump B6
B6:
  r3 = iconst 1
  branch r3, B5, B7
B7:
  branch r3, B3, B8
B8:
  branch r3, B1, B9
B9:
  sstore r2, "C"
  ret
}
"#;
        let m = ir::parse_module(src).expect("parse");
        let f = m.lookup_func("main").unwrap();
        (m, f)
    }

    #[test]
    fn figure2_sets() {
        let (mut m, f) = figure2_module();
        cfg::normalize_loops(&mut m.funcs[f.index()]);
        let nest = cfg::LoopNest::compute(m.func(f));
        assert_eq!(nest.forest.len(), 3);
        let blocks = block_sets(&m.tags, f, m.func(f), false);
        let sets = LoopSets::solve(&blocks, &nest.forest);
        let a = m.tags.lookup("A").unwrap();
        let b = m.tags.lookup("B").unwrap();
        let c = m.tags.lookup("C").unwrap();
        // Identify loops by nesting depth: outer (B1), middle (B3),
        // inner (B5).
        let order = nest.forest.outer_to_inner();
        let (outer, middle, inner) = (order[0], order[1], order[2]);
        assert_eq!(nest.forest.get(outer).depth, 1);
        assert_eq!(nest.forest.get(inner).depth, 3);

        // The paper's table: PROMOTABLE(B1) = {C}, PROMOTABLE(B3) = {A},
        // PROMOTABLE(B5) = {A}; LIFT(B1) = {C}, LIFT(B3) = {A},
        // LIFT(B5) = {}.
        assert_eq!(sets.promotable[outer.index()], DenseTagSet::singleton(c));
        assert_eq!(sets.promotable[middle.index()], DenseTagSet::singleton(a));
        assert_eq!(sets.promotable[inner.index()], DenseTagSet::singleton(a));
        assert_eq!(sets.lift[outer.index()], DenseTagSet::singleton(c));
        assert_eq!(sets.lift[middle.index()], DenseTagSet::singleton(a));
        assert!(sets.lift[inner.index()].is_empty());
        // B is explicit in the middle loop but ambiguous there too.
        assert!(sets.explicit[middle.index()].contains(b));
        assert!(sets.ambiguous[middle.index()].contains(b));
    }

    #[test]
    fn singleton_scalar_pointer_ops_are_explicit_for_globals() {
        let src = r#"
tag "g" global size=1 addressed
global "g" zero
func @main(0) {
B0:
  r0 = lea "g"
  r1 = load [r0] {"g"}
  ret
}
"#;
        let m = ir::parse_module(src).unwrap();
        let f = m.lookup_func("main").unwrap();
        let blocks = block_sets(&m.tags, f, m.func(f), false);
        let g = m.tags.lookup("g").unwrap();
        assert!(blocks[0].explicit.contains(g));
        assert!(blocks[0].ambiguous.is_empty());
    }

    #[test]
    fn singleton_array_pointer_ops_are_ambiguous() {
        let src = r#"
tag "a" global size=8 addressed
global "a" zero
func @main(0) {
B0:
  r0 = lea "a"
  r1 = load [r0] {"a"}
  ret
}
"#;
        let m = ir::parse_module(src).unwrap();
        let f = m.lookup_func("main").unwrap();
        let blocks = block_sets(&m.tags, f, m.func(f), false);
        let a = m.tags.lookup("a").unwrap();
        assert!(!blocks[0].explicit.contains(a));
        assert!(blocks[0].ambiguous.contains(a));
    }

    #[test]
    fn recursion_blocks_singleton_local_classification() {
        let src = r#"
tag "f.x" local owner=0 size=1 addressed
func @f(0) {
B0:
  r0 = lea "f.x"
  r1 = load [r0] {"f.x"}
  ret
}
"#;
        let m = ir::parse_module(src).unwrap();
        let f = m.lookup_func("f").unwrap();
        let x = m.tags.lookup("f.x").unwrap();
        // Non-recursive: explicit.
        let blocks = block_sets(&m.tags, f, m.func(f), false);
        assert!(blocks[0].explicit.contains(x));
        // Recursive: ambiguous.
        let blocks = block_sets(&m.tags, f, m.func(f), true);
        assert!(blocks[0].ambiguous.contains(x));
    }

    #[test]
    fn all_tagset_poisons_ambiguity() {
        let src = r#"
tag "g" global size=1 addressed
global "g" zero
func @main(0) {
B0:
  r0 = sload "g"
  r1 = lea "g"
  store r0, [r1] {*}
  jump B1
B1:
  r2 = sload "g"
  r3 = iconst 0
  branch r3, B1, B2
B2:
  ret
}
"#;
        let mut m = ir::parse_module(src).unwrap();
        let f = m.lookup_func("main").unwrap();
        cfg::normalize_loops(&mut m.funcs[f.index()]);
        let nest = cfg::LoopNest::compute(m.func(f));
        let blocks = block_sets(&m.tags, f, m.func(f), false);
        let sets = LoopSets::solve(&blocks, &nest.forest);
        // g is explicit in the loop and the {*} store is outside it, so g
        // is promotable in the loop.
        let g = m.tags.lookup("g").unwrap();
        assert_eq!(sets.promotable[0], DenseTagSet::singleton(g));
        // But B0's ambiguity is total.
        assert!(blocks[0].ambiguous.is_all());
    }
}
