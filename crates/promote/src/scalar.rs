//! Scalar register promotion: the rewrite half of §3.1.
//!
//! For every tag in some `L_PROMOTABLE`, a virtual register is created;
//! references inside loops where the tag is promotable become register
//! copies, the tag is loaded in the landing pad of every loop in whose
//! `L_LIFT` it appears, and stored in each such loop's exit blocks.

use crate::equations::{block_sets, classify_singleton, LoopSets, RefClass};
use cfg::FunctionAnalyses;
use ir::{DenseTagSet, FuncId, Function, Instr, Module, Reg, TagId, TagTable};
use std::collections::{BTreeMap, BTreeSet};
use trace::{BlockReason, FuncTrace, LoopRef, Remark};

/// What scalar promotion did to one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScalarReport {
    /// Number of loops examined.
    pub loops: usize,
    /// Distinct tags promoted somewhere in the function.
    pub promoted_tags: usize,
    /// Loads/stores inserted around loops (lift edges × tags).
    pub lifts: usize,
    /// Memory references rewritten to copies.
    pub rewritten_refs: usize,
}

/// Runs scalar promotion on one (already loop-normalized) function.
///
/// `func_is_recursive` must say whether the function lies on a call-graph
/// cycle; it gates the classification of singleton pointer references to
/// the function's own locals.
///
/// `max_per_loop` is the paper's §7 proposal made concrete: "we may need
/// to extend our promotion algorithm with an explicit decision-making
/// process that considers register pressure and frequency of use before
/// promoting a value" (Carr adopted "a bin-packing discipline to throttle
/// the promotion process"). When set, each loop keeps only its
/// `max_per_loop` most-referenced promotable tags; the rest stay in
/// memory rather than risk being spilled back by the allocator.
pub fn promote_scalars_in_func(
    module: &mut Module,
    func_id: FuncId,
    func_is_recursive: bool,
    max_per_loop: Option<usize>,
) -> ScalarReport {
    promote_scalars_in_func_core(
        &module.tags,
        &mut module.funcs[func_id.index()],
        func_id,
        func_is_recursive,
        max_per_loop,
        &mut FunctionAnalyses::new(),
    )
}

/// The per-function core of scalar promotion: needs only the (read-only)
/// tag table and the function body, so independent functions can be
/// promoted concurrently.
pub fn promote_scalars_in_func_core(
    tags: &TagTable,
    func: &mut Function,
    func_id: FuncId,
    func_is_recursive: bool,
    max_per_loop: Option<usize>,
    analyses: &mut FunctionAnalyses,
) -> ScalarReport {
    promote_scalars_in_func_traced(
        tags,
        func,
        func_id,
        func_is_recursive,
        max_per_loop,
        analyses,
        &mut FuncTrace::off(),
    )
}

/// [`promote_scalars_in_func_core`] with remark emission: when tracing is
/// enabled, every loop's verdict is reported — a [`Remark::Promoted`] per
/// (tag, loop) that equation (3) admits (with the lift placement from
/// equation (4)), and a [`Remark::Blocked`] with a concrete
/// [`BlockReason`] per explicitly-referenced tag that `L_AMBIGUOUS`
/// claims — plus a `promote` delta covering the rewrite (lift insertion
/// shows as negative counts).
#[allow(clippy::too_many_arguments)]
pub fn promote_scalars_in_func_traced(
    tags: &TagTable,
    func: &mut Function,
    func_id: FuncId,
    func_is_recursive: bool,
    max_per_loop: Option<usize>,
    analyses: &mut FunctionAnalyses,
    tr: &mut FuncTrace,
) -> ScalarReport {
    crate::with_delta("promote", func, tr, |func, tr| {
        promote_scalars_in_func_inner(
            tags,
            func,
            func_id,
            func_is_recursive,
            max_per_loop,
            analyses,
            tr,
        )
    })
}

#[allow(clippy::too_many_arguments)]
fn promote_scalars_in_func_inner(
    tags: &TagTable,
    func: &mut Function,
    func_id: FuncId,
    func_is_recursive: bool,
    max_per_loop: Option<usize>,
    analyses: &mut FunctionAnalyses,
    tr: &mut FuncTrace,
) -> ScalarReport {
    let (_, forest, geom) = analyses.loop_view(func);
    let mut report = ScalarReport {
        loops: forest.len(),
        ..Default::default()
    };
    if forest.is_empty() {
        return report;
    }
    let blocks = block_sets(tags, func_id, func, func_is_recursive);
    let mut sets = LoopSets::solve(&blocks, forest);
    if let Some(cap) = max_per_loop {
        throttle(func, forest, &mut sets, cap);
    }
    if tr.enabled() {
        // Emitted before the rewrite below, while the loop bodies still
        // hold the memory operations the verdicts are about.
        emit_promotion_remarks(tags, func, func_id, func_is_recursive, forest, &sets, tr);
    }
    let promotable = sets.all_promotable();
    if promotable.is_empty() {
        return report;
    }
    report.promoted_tags = promotable.len();
    // One virtual register per promoted tag.
    let mut tag_reg: BTreeMap<TagId, Reg> = BTreeMap::new();
    for t in promotable.iter() {
        let r = func.new_reg();
        tag_reg.insert(t, r);
    }
    // Step 5: rewrite references inside loops where the tag is promotable.
    let nblocks = func.blocks.len();
    for bi in 0..nblocks {
        let here = sets.promotable_in_block(forest, ir::BlockId(bi as u32));
        if here.is_empty() {
            continue;
        }
        let mut rewritten: Vec<(usize, Instr)> = Vec::new();
        for (ii, instr) in func.blocks[bi].instrs.iter().enumerate() {
            let new = match instr {
                Instr::SLoad { dst, tag } | Instr::CLoad { dst, tag } if here.contains(*tag) => {
                    Some(Instr::Copy {
                        dst: *dst,
                        src: tag_reg[tag],
                    })
                }
                Instr::SStore { src, tag } if here.contains(*tag) => Some(Instr::Copy {
                    dst: tag_reg[tag],
                    src: *src,
                }),
                Instr::Load { dst, tags: ts, .. } => match ts.as_singleton() {
                    Some(t)
                        if here.contains(t)
                            && classify_singleton(tags, func_id, func_is_recursive, t)
                                == RefClass::Explicit =>
                    {
                        Some(Instr::Copy {
                            dst: *dst,
                            src: tag_reg[&t],
                        })
                    }
                    _ => None,
                },
                Instr::Store { src, tags: ts, .. } => match ts.as_singleton() {
                    Some(t)
                        if here.contains(t)
                            && classify_singleton(tags, func_id, func_is_recursive, t)
                                == RefClass::Explicit =>
                    {
                        Some(Instr::Copy {
                            dst: tag_reg[&t],
                            src: *src,
                        })
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some(n) = new {
                rewritten.push((ii, n));
            }
        }
        report.rewritten_refs += rewritten.len();
        for (ii, n) in rewritten {
            func.blocks[bi].instrs[ii] = n;
        }
    }
    // Step 6: lift — load in the landing pad of, and store at the exits
    // of, every loop where the tag appears in L_LIFT.
    //
    // Refinement over the paper's presentation: a tag that is never
    // *stored* anywhere in the loop cannot have changed, so the demotion
    // stores are skipped (otherwise promotion would manufacture store
    // traffic for read-only values, which the paper's flat rows — tsp,
    // allroots — show its implementation did not do).
    //
    // Demotion stores are inserted at the *front* of exit blocks and
    // promotion loads just before the landing pad's terminator, so a block
    // serving as both (exit of one loop, pad of the next) stays correct.
    let stored_in_loop: Vec<BTreeSet<TagId>> = {
        forest
            .loops
            .iter()
            .map(|l| {
                let mut stored = BTreeSet::new();
                for &b in &l.blocks {
                    for instr in &func.blocks[b.index()].instrs {
                        match instr {
                            Instr::SStore { tag, .. } => {
                                stored.insert(*tag);
                            }
                            Instr::Store { tags, .. } => {
                                if let Some(t) = tags.as_singleton() {
                                    stored.insert(t);
                                }
                            }
                            // Rewritten stores are already copies into the
                            // promotion register; track them through it.
                            Instr::Copy { dst, .. } => {
                                if let Some((&t, _)) = tag_reg.iter().find(|(_, v)| **v == *dst) {
                                    stored.insert(t);
                                }
                            }
                            _ => {}
                        }
                    }
                }
                stored
            })
            .collect()
    };
    let mut exit_inserts: BTreeMap<usize, Vec<Instr>> = BTreeMap::new();
    let mut pad_inserts: BTreeMap<usize, Vec<Instr>> = BTreeMap::new();
    for li in 0..forest.len() {
        let l = cfg::LoopId(li as u32);
        for t in sets.lift[li].iter() {
            let v = tag_reg[&t];
            pad_inserts
                .entry(geom.landing_pad(l).index())
                .or_default()
                .push(Instr::SLoad { dst: v, tag: t });
            report.lifts += 1;
            if stored_in_loop[li].contains(&t) {
                for &e in geom.exits(l) {
                    exit_inserts
                        .entry(e.index())
                        .or_default()
                        .push(Instr::SStore { src: v, tag: t });
                }
                report.lifts += geom.exits(l).len();
            }
        }
    }
    for (bi, instrs) in exit_inserts {
        for (k, instr) in instrs.into_iter().enumerate() {
            func.blocks[bi].instrs.insert(k, instr);
        }
    }
    for (bi, instrs) in pad_inserts {
        for instr in instrs {
            func.blocks[bi].insert_before_terminator(instr);
        }
    }
    // Promotion rewrites references and inserts lift code into existing
    // blocks; the CFG shape is untouched.
    if report.rewritten_refs > 0 || report.lifts > 0 {
        analyses.note_body_changed();
    }
    report
}

/// Reports, per loop in index order, every promoted tag (with its lift
/// placement) and every blocked explicit candidate (with why).
fn emit_promotion_remarks(
    tags: &TagTable,
    func: &Function,
    func_id: FuncId,
    func_is_recursive: bool,
    forest: &cfg::LoopForest,
    sets: &LoopSets,
    tr: &mut FuncTrace,
) {
    for li in 0..forest.len() {
        let l = &forest.loops[li];
        let in_loop = LoopRef {
            header: l.header.0,
            depth: l.depth as u32,
        };
        for t in sets.promotable[li].iter() {
            // The lift lands at the outermost enclosing loop where the tag
            // is still promotable — equation (4) unrolled.
            let mut at = li;
            while let Some(p) = forest.loops[at].parent {
                if !sets.promotable[p.index()].contains(t) {
                    break;
                }
                at = p.index();
            }
            tr.remark(
                "promote",
                Remark::Promoted {
                    tag: tags.info(t).name.clone(),
                    in_loop,
                    lifted_from: forest.loops[at].header.0,
                },
            );
        }
        // Blocked = L_EXPLICIT ∩ L_AMBIGUOUS: referenced by rewritable
        // operations, but claimed by equation (2). (Throttled-out tags are
        // not "blocked" — they were promotable and deliberately skipped.)
        for t in sets.explicit[li].iter() {
            if !sets.ambiguous[li].contains(t) {
                continue;
            }
            tr.remark(
                "promote",
                Remark::Blocked {
                    tag: tags.info(t).name.clone(),
                    in_loop,
                    reason: blocked_reason(tags, func, func_id, func_is_recursive, l, t),
                },
            );
        }
    }
}

/// Pins down which clause of the ambiguity definition claimed `t` in loop
/// `l`, by rescanning the loop body the way [`block_sets`] did.
fn blocked_reason(
    tags: &TagTable,
    func: &Function,
    func_id: FuncId,
    func_is_recursive: bool,
    l: &cfg::Loop,
    t: TagId,
) -> BlockReason {
    let mut singleton_ambiguous = false;
    let mut multi_ref = false;
    for &b in &l.blocks {
        for instr in &func.blocks[b.index()].instrs {
            match instr {
                Instr::Call { mods, refs, .. } => {
                    if mods.contains(t) || refs.contains(t) {
                        return BlockReason::CallModRef;
                    }
                }
                Instr::Load { tags: ts, .. } | Instr::Store { tags: ts, .. } => {
                    if !ts.contains(t) {
                        continue;
                    }
                    match ts.as_singleton() {
                        Some(s) if s == t => {
                            if classify_singleton(tags, func_id, func_is_recursive, t)
                                == RefClass::Ambiguous
                            {
                                singleton_ambiguous = true;
                            }
                        }
                        _ => multi_ref = true,
                    }
                }
                _ => {}
            }
        }
    }
    if multi_ref {
        BlockReason::AmbiguousRef
    } else if singleton_ambiguous {
        // The only ambiguity is a singleton pointer access that fails the
        // unique-cell test; say whether recursion or storage shape is the
        // culprit.
        if func_is_recursive && tags.info(t).kind.owner() == Some(func_id.0) {
            BlockReason::RecursionFlag
        } else {
            BlockReason::AddressTaken
        }
    } else {
        BlockReason::AmbiguousRef
    }
}

/// Applies the pressure throttle: each loop keeps only its `cap`
/// most-frequently-referenced promotable tags, and `L_LIFT` is re-derived
/// from the trimmed sets (equation (4) of the paper).
fn throttle(func: &Function, forest: &cfg::LoopForest, sets: &mut LoopSets, cap: usize) {
    for li in 0..forest.len() {
        if sets.promotable[li].len() <= cap {
            continue;
        }
        // Frequency of use: explicit references within the loop.
        let mut freq: BTreeMap<TagId, usize> = BTreeMap::new();
        for &b in &forest.loops[li].blocks {
            for instr in &func.blocks[b.index()].instrs {
                match instr {
                    Instr::SLoad { tag, .. }
                    | Instr::SStore { tag, .. }
                    | Instr::CLoad { tag, .. } => {
                        *freq.entry(*tag).or_default() += 1;
                    }
                    Instr::Load { tags, .. } | Instr::Store { tags, .. } => {
                        if let Some(t) = tags.as_singleton() {
                            *freq.entry(t).or_default() += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut ranked: Vec<TagId> = sets.promotable[li].iter().collect();
        ranked.sort_by_key(|t| std::cmp::Reverse(freq.get(t).copied().unwrap_or(0)));
        sets.promotable[li] = ranked.into_iter().take(cap).collect();
    }
    // Re-derive L_LIFT (equation 4) from the throttled promotable sets.
    for li in 0..forest.len() {
        sets.lift[li] = match forest.loops[li].parent {
            None => sets.promotable[li].clone(),
            Some(p) => sets.promotable[li].difference(&sets.promotable[p.index()]),
        };
    }
}

/// Set of tags promotable anywhere in `func` — exposed for the driver's
/// reporting and for tests.
pub fn promotable_tags(module: &Module, func_id: FuncId, func_is_recursive: bool) -> DenseTagSet {
    let nest = cfg::LoopNest::compute(module.func(func_id));
    if nest.forest.is_empty() {
        return DenseTagSet::new();
    }
    let blocks = block_sets(
        &module.tags,
        func_id,
        module.func(func_id),
        func_is_recursive,
    );
    LoopSets::solve(&blocks, &nest.forest).all_promotable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{Vm, VmOptions};

    fn prepare(src: &str) -> Module {
        let mut m = minic::compile(src).expect("compile");
        for fi in 0..m.funcs.len() {
            cfg::normalize_loops(&mut m.funcs[fi]);
        }
        analysis::analyze(&mut m, analysis::AnalysisLevel::ModRef);
        m
    }

    fn promote_all(m: &mut Module) -> ScalarReport {
        let graph = analysis::CallGraph::build(m, None);
        let sccs = analysis::tarjan_sccs(&graph);
        let mut total = ScalarReport::default();
        for fi in 0..m.funcs.len() {
            let f = FuncId(fi as u32);
            let rec = graph.is_recursive(f, &sccs);
            let r = promote_scalars_in_func(m, f, rec, None);
            total.loops += r.loops;
            total.promoted_tags += r.promoted_tags;
            total.lifts += r.lifts;
            total.rewritten_refs += r.rewritten_refs;
        }
        total
    }

    #[test]
    fn promotes_global_in_hot_loop() {
        let src = r#"
int g;
int main() {
    int i;
    for (i = 0; i < 1000; i++) { g = g + 1; }
    print_int(g);
    return 0;
}
"#;
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let report = promote_all(&mut m);
        ir::validate(&m).expect("valid after promotion");
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert!(report.promoted_tags >= 1);
        // 1000 loads + 1000 stores collapse to 1 load + 1 store.
        assert!(before.counts.loads >= 1000);
        assert!(after.counts.loads <= before.counts.loads - 999);
        assert!(after.counts.stores <= before.counts.stores - 999);
    }

    #[test]
    fn call_in_loop_blocks_promotion() {
        let src = r#"
int g;
void touch() { g = g + 1; }
int main() {
    int i;
    for (i = 0; i < 100; i++) { g = g + 1; touch(); }
    print_int(g);
    return 0;
}
"#;
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        promote_all(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        // g is ambiguous in the loop (the call mods it): no load removal.
        assert_eq!(after.counts.loads, before.counts.loads);
        assert_eq!(after.counts.stores, before.counts.stores);
    }

    #[test]
    fn unrelated_call_does_not_block_with_modref() {
        let src = r#"
int g;
int h;
void touch_h() { h = h + 1; }
int main() {
    int i;
    for (i = 0; i < 100; i++) { g = g + 1; touch_h(); }
    print_int(g);
    print_int(h);
    return 0;
}
"#;
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        promote_all(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        // g promoted even though the loop calls touch_h (MOD/REF shows the
        // call cannot touch g).
        assert!(after.counts.loads < before.counts.loads);
    }

    #[test]
    fn pointer_alias_blocks_promotion() {
        let src = r#"
int g;
int main() {
    int i;
    int *p = &g;
    for (i = 0; i < 50; i++) {
        g = g + 1;
        *p = *p + 1;
    }
    print_int(g);
    return 0;
}
"#;
        // With ModRef, *p carries {g} (singleton!) so the accesses unify
        // and promotion may legally promote g — both paths rewrite.
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        promote_all(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(after.output, vec!["100"]);
    }

    #[test]
    fn multi_target_pointer_blocks_promotion() {
        let src = r#"
int g;
int h;
int pick;
int main() {
    int i;
    int *p = &g;
    if (pick) { p = &h; }
    for (i = 0; i < 50; i++) {
        g = g + 1;
        *p = *p + 1;
    }
    print_int(g);
    print_int(h);
    return 0;
}
"#;
        let mut m = minic::compile(src).unwrap();
        for fi in 0..m.funcs.len() {
            cfg::normalize_loops(&mut m.funcs[fi]);
        }
        analysis::analyze(&mut m, analysis::AnalysisLevel::PointsTo);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        promote_all(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(after.output, vec!["100", "0"]);
        // g must NOT have been promoted: *p = {g, h} is ambiguous.
        assert_eq!(after.counts.loads, before.counts.loads);
    }

    #[test]
    fn nested_loops_lift_to_outermost_safe_level() {
        // The Figure 2 situation, source-level: C is promotable across the
        // whole nest; A only in the middle loop.
        let src = r#"
int c;
int a;
void touch_a() { a = a + 1; }
int main() {
    int i; int j;
    for (i = 0; i < 10; i++) {
        c = c + 1;
        touch_a();
        for (j = 0; j < 10; j++) {
            c = c + a;
        }
    }
    print_int(c);
    print_int(a);
    return 0;
}
"#;
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        promote_all(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        // c: ~220 memory refs before, 2 after. a: unpromotable in the
        // outer loop (call), promotable in the inner (load only).
        assert!(before.counts.loads > 200);
        assert!(after.counts.loads < 60, "loads = {}", after.counts.loads);
    }

    #[test]
    fn zero_trip_loop_is_still_correct() {
        // The landing-pad load and exit store execute even when the loop
        // body never does; the paper's dhrystone anomaly in miniature.
        let src = r#"
int g = 7;
int main() {
    int i;
    for (i = 0; i < 0; i++) { g = g + 1; }
    print_int(g);
    return 0;
}
"#;
        let mut m = prepare(src);
        promote_all(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, vec!["7"]);
        // The lift itself costs one load and one store.
        assert!(after.counts.loads >= 1);
        assert!(after.counts.stores >= 1);
    }

    #[test]
    fn break_paths_demote_correctly() {
        let src = r#"
int g;
int limit = 5;
int main() {
    int i;
    for (i = 0; i < 100; i++) {
        g = g + 1;
        if (g == limit) break;
    }
    print_int(g);
    return 0;
}
"#;
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        promote_all(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(after.output, vec!["5"]);
        assert!(after.counts.loads < before.counts.loads);
    }

    #[test]
    fn addressed_local_promotes_when_unaliased_in_loop() {
        let src = r#"
int use_later(int *p) { return *p; }
int main() {
    int x = 0;
    int i;
    for (i = 0; i < 200; i++) { x = x + 2; }
    print_int(use_later(&x));
    return 0;
}
"#;
        let mut m = minic::compile(src).unwrap();
        for fi in 0..m.funcs.len() {
            cfg::normalize_loops(&mut m.funcs[fi]);
        }
        analysis::analyze(&mut m, analysis::AnalysisLevel::PointsTo);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        promote_all(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(after.output, vec!["400"]);
        assert!(after.counts.loads < before.counts.loads);
    }
}
