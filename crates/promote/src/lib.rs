//! Register promotion — the primary contribution of *Register Promotion in
//! C Programs* (Cooper & Lu, PLDI 1997).
//!
//! Promotion allows a value that normally resides in memory to reside in a
//! register for portions of the code. This crate implements both halves of
//! the paper's transformation:
//!
//! * **Scalar promotion** (§3.1): the data-flow equations of Figure 1 over
//!   the loop nesting forest, followed by the rewrite that loads each
//!   promotable tag in the landing pad of the outermost loop where it is
//!   safe, converts interior references to register copies, and stores the
//!   value back at the loop exits.
//! * **Pointer-based promotion** (§3.3): promotion of loop-invariant
//!   pointer references (e.g. `B[i]` inside a `j` loop) when all accesses
//!   to the referenced tags go through one invariant base register.
//!
//! ```
//! use promote::{promote_module, PromotionOptions};
//!
//! let mut module = minic::compile(r#"
//!     int g;
//!     int main() {
//!         int i;
//!         for (i = 0; i < 100; i++) { g = g + 1; }
//!         return g;
//!     }
//! "#)?;
//! analysis::analyze(&mut module, analysis::AnalysisLevel::ModRef);
//! let report = promote_module(&mut module, &PromotionOptions::default());
//! assert_eq!(report.scalar.promoted_tags, 1); // g promoted in the loop
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod equations;
mod pointer;
mod scalar;

pub use equations::{block_sets, classify_singleton, BlockSets, LoopSets, RefClass};
pub use pointer::{
    promote_pointers_in_func, promote_pointers_in_func_core, promote_pointers_in_func_traced,
    PointerReport,
};
pub use scalar::{
    promotable_tags, promote_scalars_in_func, promote_scalars_in_func_core,
    promote_scalars_in_func_traced, ScalarReport,
};

use analysis::{tarjan_sccs, CallGraph};
use ir::Module;

/// Runs a rewriting stage and, when tracing is enabled, records its
/// before-minus-after [`trace::PassEvent::Delta`] under `pass` (lift and
/// store-back insertion shows up as negative counts). Chains body scans
/// through the [`trace::FuncTrace`] stats cache like `opt::with_delta`.
fn with_delta<R>(
    pass: &'static str,
    func: &mut ir::Function,
    tr: &mut trace::FuncTrace,
    stage: impl FnOnce(&mut ir::Function, &mut trace::FuncTrace) -> R,
) -> R {
    if !tr.enabled() {
        return stage(func, tr);
    }
    let before = match tr.cached_stats() {
        Some((instrs, loads, stores)) => ir::BodyStats {
            instrs,
            loads,
            stores,
        },
        None => func.body_stats(),
    };
    let result = stage(func, tr);
    let after = func.body_stats();
    let (instrs, loads, stores) = before.delta(&after);
    tr.delta(pass, instrs, loads, stores);
    tr.set_stats((after.instrs, after.loads, after.stores));
    result
}

/// Configuration for [`promote_module`].
#[derive(Debug, Clone)]
pub struct PromotionOptions {
    /// Run scalar promotion (§3.1).
    pub scalar: bool,
    /// Run pointer-based promotion (§3.3). The driver enables this only
    /// after LICM has hoisted base addresses.
    pub pointer_based: bool,
    /// Pressure throttle (the paper's §7 proposal, after Carr): keep only
    /// this many promotable tags per loop, ranked by reference frequency.
    /// `None` promotes everything, as the paper's measured implementation
    /// does.
    pub max_promoted_per_loop: Option<usize>,
}

impl Default for PromotionOptions {
    fn default() -> Self {
        PromotionOptions {
            scalar: true,
            pointer_based: false,
            max_promoted_per_loop: None,
        }
    }
}

/// Aggregate report over a module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PromotionReport {
    /// Scalar promotion totals.
    pub scalar: ScalarReport,
    /// Pointer-based promotion totals.
    pub pointer: PointerReport,
}

/// Runs register promotion over every function of `module`.
///
/// Loop normalization (landing pads + dedicated exits) is performed first;
/// the interprocedural analyses are expected to have already shrunk the
/// module's tag sets (see [`analysis::analyze`]), though promotion is sound
/// — merely unproductive — over unanalyzed `{*}` sets.
pub fn promote_module(module: &mut Module, opts: &PromotionOptions) -> PromotionReport {
    let graph = CallGraph::build(module, None);
    let sccs = tarjan_sccs(&graph);
    let recursive: Vec<bool> = (0..module.funcs.len())
        .map(|fi| graph.is_recursive(ir::FuncId(fi as u32), &sccs))
        .collect();
    promote_module_with_flags(module, opts, &recursive)
}

/// [`promote_module`] with precomputed per-function recursion flags.
///
/// The pipeline's analysis barrier already builds the call graph and its
/// SCCs; this entry point lets it pass those results down instead of
/// recomputing them, while standalone callers go through
/// [`promote_module`] and share the same code path.
pub fn promote_module_with_flags(
    module: &mut Module,
    opts: &PromotionOptions,
    recursive: &[bool],
) -> PromotionReport {
    assert_eq!(
        recursive.len(),
        module.funcs.len(),
        "one recursion flag per function"
    );
    for fi in 0..module.funcs.len() {
        cfg::normalize_loops(&mut module.funcs[fi]);
    }
    let mut report = PromotionReport::default();
    for fi in 0..module.funcs.len() {
        let f = ir::FuncId(fi as u32);
        if opts.scalar {
            let r = scalar::promote_scalars_in_func(
                module,
                f,
                recursive[fi],
                opts.max_promoted_per_loop,
            );
            report.scalar.loops += r.loops;
            report.scalar.promoted_tags += r.promoted_tags;
            report.scalar.lifts += r.lifts;
            report.scalar.rewritten_refs += r.rewritten_refs;
        }
        if opts.pointer_based {
            let r = pointer::promote_pointers_in_func(module, f);
            report.pointer.promoted_bases += r.promoted_bases;
            report.pointer.rewritten_refs += r.rewritten_refs;
            report.pointer.lifts += r.lifts;
        }
    }
    debug_assert!(
        ir::validate(module).is_ok(),
        "promotion produced invalid IL"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{Vm, VmOptions};

    #[test]
    fn end_to_end_scalar_and_pointer() {
        let src = r#"
int g;
int B[8];
int A[8][8];
int main() {
    int i; int j;
    for (i = 0; i < 8; i++)
        for (j = 0; j < 8; j++)
            A[i][j] = i * j;
    for (i = 0; i < 8; i++) {
        int *p = &B[i];
        for (j = 0; j < 8; j++) {
            *p += A[i][j];
            g = g + 1;
        }
    }
    print_int(g);
    print_int(B[7]);
    return 0;
}
"#;
        let mut m = minic::compile(src).unwrap();
        analysis::analyze(&mut m, analysis::AnalysisLevel::PointsTo);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let report = promote_module(
            &mut m,
            &PromotionOptions {
                scalar: true,
                pointer_based: true,
                ..Default::default()
            },
        );
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert!(report.scalar.promoted_tags >= 1);
        assert!(report.pointer.promoted_bases >= 1);
        assert!(after.counts.memory_ops() < before.counts.memory_ops());
    }

    #[test]
    fn promotion_is_idempotent_on_counts() {
        let src = r#"
int g;
int main() {
    int i;
    for (i = 0; i < 64; i++) { g = g + i; }
    print_int(g);
    return 0;
}
"#;
        let mut m = minic::compile(src).unwrap();
        analysis::analyze(&mut m, analysis::AnalysisLevel::ModRef);
        promote_module(&mut m, &PromotionOptions::default());
        let once = Vm::run_main(&m, VmOptions::default()).unwrap();
        promote_module(&mut m, &PromotionOptions::default());
        let twice = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(once.output, twice.output);
        assert_eq!(once.counts.loads, twice.counts.loads);
        assert_eq!(once.counts.stores, twice.counts.stores);
    }
}
