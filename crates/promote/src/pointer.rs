//! Pointer-based register promotion (§3.3 of the paper).
//!
//! Finds memory references whose base register is **loop-invariant** and
//! where *all* accesses in the loop to the referenced tags go through that
//! one base register. Such a location is a single run-time cell for the
//! duration of the loop even though its tag may name many cells (an array
//! element like `B[i]` in the paper's Figure 3), so it is promoted with the
//! same load-before / copy-inside / store-after rewriting as a scalar.
//!
//! The transformation relies on loop-invariant code motion having hoisted
//! the base-address computation out of the loop; the driver therefore runs
//! it after LICM.

use cfg::{FunctionAnalyses, LoopId};
use ir::{FuncId, Function, Instr, Module, Reg, TagSet};
use std::collections::{BTreeMap, BTreeSet};
use trace::{FuncTrace, LoopRef, Remark};

/// What pointer-based promotion did to one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointerReport {
    /// Base registers promoted.
    pub promoted_bases: usize,
    /// References rewritten to copies.
    pub rewritten_refs: usize,
    /// Lift loads/stores inserted.
    pub lifts: usize,
}

/// Runs pointer-based promotion on one normalized function.
pub fn promote_pointers_in_func(module: &mut Module, func_id: FuncId) -> PointerReport {
    promote_pointers_in_func_core(
        &mut module.funcs[func_id.index()],
        &mut FunctionAnalyses::new(),
    )
}

/// The per-function core of pointer-based promotion. Entirely
/// function-local, so the parallel pipeline can fan it out across
/// functions.
pub fn promote_pointers_in_func_core(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
) -> PointerReport {
    promote_pointers_in_func_traced(func, analyses, &mut FuncTrace::off())
}

/// [`promote_pointers_in_func_core`] with remark emission: one
/// [`Remark::PointerPromoted`] per promoted base register when tracing is
/// enabled, plus a `pointer-promote` delta covering the rewrite.
pub fn promote_pointers_in_func_traced(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    tr: &mut FuncTrace,
) -> PointerReport {
    crate::with_delta("pointer-promote", func, tr, |func, tr| {
        promote_pointers_in_func_inner(func, analyses, tr)
    })
}

fn promote_pointers_in_func_inner(
    func: &mut Function,
    analyses: &mut FunctionAnalyses,
    tr: &mut FuncTrace,
) -> PointerReport {
    let mut report = PointerReport::default();
    let (_, forest, geom) = analyses.loop_view(func);
    if forest.is_empty() {
        return report;
    }
    // Registers defined in each loop (for invariance checks).
    let mut defs_in_loop: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); forest.len()];
    for (li, l) in forest.loops.iter().enumerate() {
        for &b in &l.blocks {
            for instr in &func.blocks[b.index()].instrs {
                if let Some(d) = instr.def() {
                    defs_in_loop[li].insert(d);
                }
            }
        }
    }
    // Innermost-first, find candidate base registers per loop.
    #[derive(Default)]
    struct Candidate {
        tags: TagSet,
        loads: Vec<(usize, usize)>,
        stores: Vec<(usize, usize)>,
        viable: bool,
    }
    let mut planned: Vec<(LoopId, Reg, TagSet, bool, Reg)> = Vec::new();
    let mut rewrites: Vec<(usize, usize, Reg, bool)> = Vec::new(); // (block, instr, v, is_store)
                                                                   // Tags already promoted in an enclosing pass of this loop walk — avoid
                                                                   // double promotion of overlapping candidates.
    let mut claimed_tags: BTreeSet<ir::TagId> = BTreeSet::new();
    let mut claimed_blocks: BTreeSet<(usize, usize)> = BTreeSet::new();
    for li in forest.inner_to_outer() {
        let l = &forest.loops[li.index()];
        let mut cands: BTreeMap<Reg, Candidate> = BTreeMap::new();
        // Gather pointer ops by base register; track every tag touched in
        // the loop by other means.
        let mut other_touched = TagSet::empty();
        for &b in &l.blocks {
            for (ii, instr) in func.blocks[b.index()].instrs.iter().enumerate() {
                match instr {
                    Instr::Load { addr, tags, .. } | Instr::Store { addr, tags, .. } => {
                        let invariant = !defs_in_loop[li.index()].contains(addr);
                        let entry = cands.entry(*addr).or_insert_with(|| Candidate {
                            tags: TagSet::empty(),
                            loads: Vec::new(),
                            stores: Vec::new(),
                            viable: true,
                        });
                        entry.viable &= invariant && !tags.is_all();
                        entry.tags.union_with(tags);
                        if matches!(instr, Instr::Load { .. }) {
                            entry.loads.push((b.index(), ii));
                        } else {
                            entry.stores.push((b.index(), ii));
                        }
                    }
                    Instr::SLoad { tag, .. }
                    | Instr::SStore { tag, .. }
                    | Instr::CLoad { tag, .. } => {
                        other_touched.insert(*tag);
                    }
                    Instr::Call { mods, refs, .. } => {
                        other_touched.union_with(mods);
                        other_touched.union_with(refs);
                    }
                    _ => {}
                }
            }
        }
        for (base, cand) in cands {
            if !cand.viable || cand.tags.is_empty() {
                continue;
            }
            // Every access to the candidate's tags must go through `base`:
            // (a) no explicit op or call touches them, and (b) no *other*
            // pointer op's tag set intersects them.
            if other_touched.is_all() {
                continue;
            }
            let tags: BTreeSet<_> = cand.tags.iter().collect();
            if tags
                .iter()
                .any(|&t| other_touched.contains(t) || claimed_tags.contains(&t))
            {
                continue;
            }
            let mut conflicting = false;
            for &b in &l.blocks {
                for instr in &func.blocks[b.index()].instrs {
                    if let Instr::Load { addr, tags: ts, .. }
                    | Instr::Store { addr, tags: ts, .. } = instr
                    {
                        if *addr != base && (ts.is_all() || tags.iter().any(|&t| ts.contains(t))) {
                            conflicting = true;
                        }
                    }
                }
            }
            if conflicting {
                continue;
            }
            // Skip references already rewritten for an inner loop.
            if cand
                .loads
                .iter()
                .chain(&cand.stores)
                .any(|k| claimed_blocks.contains(k))
            {
                continue;
            }
            // Viable: allocate the register and plan the rewrite.
            let v = func.new_reg();
            let has_store = !cand.stores.is_empty();
            for &(b, i) in &cand.loads {
                rewrites.push((b, i, v, false));
                claimed_blocks.insert((b, i));
            }
            for &(b, i) in &cand.stores {
                rewrites.push((b, i, v, true));
                claimed_blocks.insert((b, i));
            }
            report.rewritten_refs += cand.loads.len() + cand.stores.len();
            claimed_tags.extend(tags.iter().copied());
            planned.push((li, base, cand.tags.clone(), has_store, v));
            report.promoted_bases += 1;
        }
    }
    // Apply reference rewrites.
    for (b, i, v, _is_store) in rewrites {
        let old = func.blocks[b].instrs[i].clone();
        func.blocks[b].instrs[i] = match old {
            Instr::Load { dst, .. } => Instr::Copy { dst, src: v },
            Instr::Store { src, .. } => Instr::Copy { dst: v, src },
            _ => unreachable!("planned rewrite targets a memory op"),
        };
    }
    if tr.enabled() {
        for &(li, base, _, _, _) in &planned {
            let l = &forest.loops[li.index()];
            tr.remark(
                "pointer-promote",
                Remark::PointerPromoted {
                    base_reg: base.0,
                    in_loop: LoopRef {
                        header: l.header.0,
                        depth: l.depth as u32,
                    },
                },
            );
        }
    }
    // Insert lifts.
    for (li, base, tags, has_store, v) in planned {
        let pad = geom.landing_pad(li);
        func.block_mut(pad).insert_before_terminator(Instr::Load {
            dst: v,
            addr: base,
            tags: tags.clone(),
        });
        report.lifts += 1;
        if has_store {
            for &e in geom.exits(li) {
                func.blocks[e.index()].instrs.insert(
                    0,
                    Instr::Store {
                        src: v,
                        addr: base,
                        tags: tags.clone(),
                    },
                );
                report.lifts += 1;
            }
        }
    }
    // Same tier as scalar promotion: instruction-level rewrites only.
    if report.rewritten_refs > 0 || report.lifts > 0 {
        analyses.note_body_changed();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::{Vm, VmOptions};

    fn prepare(src: &str) -> Module {
        let mut m = minic::compile(src).expect("compile");
        for fi in 0..m.funcs.len() {
            cfg::normalize_loops(&mut m.funcs[fi]);
        }
        analysis::analyze(&mut m, analysis::AnalysisLevel::PointsTo);
        m
    }

    fn promote_pointers(m: &mut Module) -> PointerReport {
        let mut total = PointerReport::default();
        for fi in 0..m.funcs.len() {
            let r = promote_pointers_in_func(m, FuncId(fi as u32));
            total.promoted_bases += r.promoted_bases;
            total.rewritten_refs += r.rewritten_refs;
            total.lifts += r.lifts;
        }
        total
    }

    #[test]
    fn figure3_kernel_promotes_row_element() {
        // B[i] += A[i][j]: after LICM-like shaping, &B[i] is invariant in
        // the inner loop. Here we hand-shape the base hoisting with a
        // pointer variable to make the base register loop-invariant.
        let src = r#"
int A[8][8];
int B[8];
int main() {
    int i; int j;
    for (i = 0; i < 8; i++)
        for (j = 0; j < 8; j++)
            A[i][j] = i + j;
    for (i = 0; i < 8; i++) {
        int *p = &B[i];
        *p = 0;
        for (j = 0; j < 8; j++) {
            *p += A[i][j];
        }
    }
    print_int(B[3]);
    print_int(B[7]);
    return 0;
}
"#;
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let report = promote_pointers(&mut m);
        ir::validate(&m).expect("valid");
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(after.output, vec!["52", "84"]);
        assert!(report.promoted_bases >= 1, "report: {report:?}");
        // The inner-loop load+store of *p (8 iterations × 8 rows × 2 ops)
        // collapse to copies.
        // 64 inner-loop stores through p collapse to 8 demotion stores.
        assert!(
            after.counts.stores + 50 <= before.counts.stores,
            "stores {} -> {}",
            before.counts.stores,
            after.counts.stores
        );
    }

    #[test]
    fn varying_base_is_not_promoted() {
        let src = r#"
int B[8];
int main() {
    int i;
    int *p = B;
    for (i = 0; i < 8; i++) {
        *p = i;
        p = p + 1;
    }
    print_int(B[5]);
    return 0;
}
"#;
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let report = promote_pointers(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(report.promoted_bases, 0);
        assert_eq!(after.counts.stores, before.counts.stores);
    }

    #[test]
    fn interfering_access_blocks_promotion() {
        // B[0] is written through p but also read directly as B[j] in the
        // loop: the tags collide, so no promotion.
        let src = r#"
int B[8];
int main() {
    int j;
    int *p = &B[0];
    int s = 0;
    for (j = 0; j < 8; j++) {
        *p = *p + 1;
        s += B[j];
    }
    print_int(s);
    return 0;
}
"#;
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let report = promote_pointers(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(report.promoted_bases, 0);
    }

    #[test]
    fn load_only_reference_skips_demotion_stores() {
        let src = r#"
int B[4] = {5, 6, 7, 8};
int main() {
    int j;
    int *p = &B[2];
    int s = 0;
    for (j = 0; j < 100; j++) {
        s += *p;
    }
    print_int(s);
    return 0;
}
"#;
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let report = promote_pointers(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(after.output, vec!["700"]);
        assert!(report.promoted_bases >= 1);
        // 100 loads collapse to 1; no stores are introduced.
        assert!(after.counts.loads + 90 <= before.counts.loads);
        assert_eq!(after.counts.stores, before.counts.stores);
    }

    #[test]
    fn call_touching_tags_blocks_promotion() {
        let src = r#"
int B[4];
void poke() { B[0] = B[0] + 1; }
int main() {
    int j;
    int *p = &B[0];
    for (j = 0; j < 10; j++) {
        *p = *p + 1;
        poke();
    }
    print_int(B[0]);
    return 0;
}
"#;
        let mut m = prepare(src);
        let before = Vm::run_main(&m, VmOptions::default()).unwrap();
        let report = promote_pointers(&mut m);
        ir::validate(&m).unwrap();
        let after = Vm::run_main(&m, VmOptions::default()).unwrap();
        assert_eq!(after.output, before.output);
        assert_eq!(after.output, vec!["20"]);
        assert_eq!(report.promoted_bases, 0);
    }
}
