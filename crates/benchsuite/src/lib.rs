//! The 14-program benchmark suite of the paper's evaluation (its Figure 4),
//! re-created in MiniC.
//!
//! The paper compiled 14 C programs; we cannot ship those sources, so each
//! entry here is a MiniC program **named after and modeled on** the
//! original, engineered to exhibit the phenomenon the paper reports for
//! it (see each module's documentation and `DESIGN.md` §3). The
//! benchmarks are deterministic — every program prints a checksum-style
//! output that must be identical across all compiler configurations.
//!
//! ```
//! let bench = benchsuite::find("mlink").expect("mlink exists");
//! let module = minic::compile(bench.source)?;
//! assert!(module.main().is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod programs {
    pub mod allroots;
    pub mod bc;
    pub mod bison;
    pub mod clean;
    pub mod compress;
    pub mod dhrystone;
    pub mod fft;
    pub mod go;
    pub mod gzip_dec;
    pub mod gzip_enc;
    pub mod indent;
    pub mod mlink;
    pub mod tsp;
    pub mod water;
}

/// One benchmark program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Benchmark {
    /// Short name, matching the paper's figures (e.g. `"mlink"`).
    pub name: &'static str,
    /// The paper's one-line description (its Figure 4).
    pub description: &'static str,
    /// What the paper measured for this program, i.e. the shape this
    /// model is engineered to reproduce.
    pub paper_expectation: &'static str,
    /// MiniC source text.
    pub source: &'static str,
}

/// The full suite in the paper's presentation order.
pub const SUITE: &[Benchmark] = &[
    Benchmark {
        name: "tsp",
        description: "a traveling salesman problem",
        paper_expectation: "0.00% everywhere: hot state is unaliased locals and arrays",
        source: programs::tsp::SRC,
    },
    Benchmark {
        name: "mlink",
        description: "medical genetics linkage analysis",
        paper_expectation: "the headline win: ~57% of stores and ~23% of loads removed, \
                            no pointer analysis needed",
        source: programs::mlink::SRC,
    },
    Benchmark {
        name: "fft",
        description: "fast Fourier transform",
        paper_expectation: "small overall; promotion of T1 requires pointer analysis; the \
                            one visible pointer-based-promotion success",
        source: programs::fft::SRC,
    },
    Benchmark {
        name: "clean",
        description: "a game program from the SPEC benchmarks",
        paper_expectation: "~3.3% of stores removed under both analyses",
        source: programs::clean::SRC,
    },
    Benchmark {
        name: "compress",
        description: "file compression program",
        paper_expectation: "moderate win in per-symbol statistics traffic",
        source: programs::compress::SRC,
    },
    Benchmark {
        name: "go",
        description: "game program from SPEC benchmarks",
        paper_expectation: "~15% of loads removed; equal under both analyses",
        source: programs::go::SRC,
    },
    Benchmark {
        name: "dhrystone",
        description: "the classic synthetic benchmark",
        paper_expectation: "flat loads/stores; slight total-op degradation from promoting \
                            in a loop that always executes once",
        source: programs::dhrystone::SRC,
    },
    Benchmark {
        name: "water",
        description: "molecular dynamics from SPEC (SPLASH)",
        paper_expectation: "28 values promoted in one nest; spills give the savings back",
        source: programs::water::SRC,
    },
    Benchmark {
        name: "indent",
        description: "prettyprinter for C programs",
        paper_expectation: "~4% of stores removed, identical under both analyses",
        source: programs::indent::SRC,
    },
    Benchmark {
        name: "allroots",
        description: "polynomial root-finder",
        paper_expectation: "nothing to promote: 11 stores in the whole run",
        source: programs::allroots::SRC,
    },
    Benchmark {
        name: "bc",
        description: "calculator language from GNU",
        paper_expectation: "8.8% of stores removed under MOD/REF vs 27.5% under pointer \
                            analysis (function-pointer dispatch resolution)",
        source: programs::bc::SRC,
    },
    Benchmark {
        name: "bison",
        description: "LR(1) parser generator",
        paper_expectation: "flat (±0.04%); promotes values only accessed on an error path",
        source: programs::bison::SRC,
    },
    Benchmark {
        name: "gzip_enc",
        description: "gzip compression",
        paper_expectation: "1.75% (modref) vs 2.15% (pointer) of total ops removed",
        source: programs::gzip_enc::SRC,
    },
    Benchmark {
        name: "gzip_dec",
        description: "gzip decompression",
        paper_expectation: "≈ flat, slightly negative total ops; small load win",
        source: programs::gzip_dec::SRC,
    },
];

/// Looks a benchmark up by name.
pub fn find(name: &str) -> Option<&'static Benchmark> {
    SUITE.iter().find(|b| b.name == name)
}

/// A two-version program for the warm-edit (incremental recompilation)
/// benchmark: `edited` differs from `base` in exactly one function body,
/// with every signature, global, and MOD/REF summary unchanged — the
/// canonical "developer tweaks one function and recompiles" scenario.
/// Kept separate from [`SUITE`] so the paper's 14-program figure stays
/// exactly 14 entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmEditPair {
    /// The suite program the pair is based on.
    pub name: &'static str,
    /// The unedited source, identical to the suite entry.
    pub base: &'static str,
    /// The edited source: one function body changed.
    pub edited: String,
}

/// Builds the warm-edit scenario: `compress` with the byte-skew
/// constants of `next_byte` changed. The edit alters only that
/// function's arithmetic — `next_byte` still touches exactly the same
/// globals — so an incremental compiler should recompile `next_byte`
/// alone and splice every other function from its cache.
pub fn warm_edit_pair() -> WarmEditPair {
    let base = find("compress").expect("compress is in the suite").source;
    let needle = "if (b > 128) b = b % 32;";
    assert!(base.contains(needle), "compress lost its skew line");
    WarmEditPair {
        name: "compress",
        base,
        edited: base.replace(needle, "if (b > 120) b = b % 64;"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_fourteen_programs() {
        assert_eq!(SUITE.len(), 14);
        let mut names: Vec<_> = SUITE.iter().map(|b| b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 14, "names are unique");
        assert!(find("mlink").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn every_program_compiles() {
        for b in SUITE {
            let module = minic::compile(b.source)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", b.name));
            ir::validate(&module).unwrap_or_else(|e| panic!("{}: invalid IL: {e}", b.name));
            assert!(module.main().is_some(), "{} has a main", b.name);
        }
    }

    #[test]
    fn warm_edit_pair_is_a_single_function_edit() {
        let pair = warm_edit_pair();
        assert_ne!(pair.base, pair.edited, "the edit changes the text");
        for (label, src) in [("base", pair.base), ("edited", pair.edited.as_str())] {
            let module = minic::compile(src).unwrap_or_else(|e| panic!("{label}: {e}"));
            ir::validate(&module).unwrap_or_else(|e| panic!("{label}: invalid IL: {e}"));
            let out = vm::Vm::run_main(&module, vm::VmOptions::default())
                .unwrap_or_else(|e| panic!("{label} failed to run: {e}"));
            assert_eq!(out.exit_code, 0, "{label} exits cleanly");
        }
        // Same function set, same context: the edit lives inside one body.
        let base_fp = minic::source_fingerprint(pair.base);
        let edit_fp = minic::source_fingerprint(&pair.edited);
        assert_eq!(
            base_fp.context, edit_fp.context,
            "globals and signatures untouched"
        );
        let names = |fp: &minic::SourceFingerprint| -> Vec<String> {
            fp.funcs.iter().map(|f| f.name.clone()).collect()
        };
        assert_eq!(
            names(&base_fp),
            names(&edit_fp),
            "no function added or removed"
        );
    }

    #[test]
    fn every_program_runs_and_prints() {
        for b in SUITE {
            let module = minic::compile(b.source).expect(b.name);
            let out = vm::Vm::run_main(&module, vm::VmOptions::default())
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", b.name));
            assert!(!out.output.is_empty(), "{} prints a checksum", b.name);
            assert_eq!(out.exit_code, 0, "{} exits cleanly", b.name);
        }
    }
}
