//! `go` — the SPEC game program (paper: one of the larger load
//! reductions, ~15% of loads removed, with the benefit essentially equal
//! under MOD/REF and pointer analysis).
//!
//! Modeled as a board-influence evaluator. The influence counters are
//! pinned by helper calls (their traffic survives promotion), while the
//! `bias` scalar is read at every point but written only rarely — LICM
//! cannot hoist its loads (the loop does write it), but promotion keeps it
//! in a register, which is what makes go a load-heavy, store-light win.

/// MiniC source.
pub const SRC: &str = r#"
int board[361];
int influence_black;
int influence_white;
int territory;
int contested;
int bias;
int rng = 271828;

int next_rand() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    return rng;
}

// The influence bookkeeping goes through calls, pinning these globals in
// the evaluation loops.
void credit(int black, int white) {
    influence_black = influence_black + black;
    influence_white = influence_white + white;
}

void contest() {
    contested = contested + 1;
}

int main() {
    int i;
    for (i = 0; i < 361; i++) board[i] = next_rand() % 3;
    int pass;
    for (pass = 0; pass < 300; pass++) {
        int p;
        for (p = 0; p < 361; p++) {
            int stone = board[p];
            // `bias` is read at every point but written only on a sparse
            // stride: LICM cannot hoist the load (the loop writes it), but
            // promotion keeps it in a register across the pass.
            int swing = bias % 16 - 8;
            if (stone == 1) {
                credit(2, 0);
                if (swing < 0) contest();
            } else if (stone == 2) {
                credit(0, 2);
                if (swing > 0) contest();
            } else {
                if (swing > 4) territory = territory + 1;
                if (swing < -4) territory = territory - 1;
            }
            if ((p & 15) == 0) {
                bias = (bias * 5 + stone + 1) % 4093;
            }
        }
        // Decay between passes.
        credit(-influence_black / 2, -influence_white / 2);
    }
    print_int(influence_black);
    print_int(influence_white);
    print_int(territory);
    print_int(contested);
    print_int(bias);
    return 0;
}
"#;
