//! `gzip(dec)` — gzip decompression (paper: a *slight degradation* in
//! total operations, −0.02% / −0.01%, alongside a small 1–2% load
//! reduction: promotion's lift overhead on short-trip loops roughly
//! cancels its wins).
//!
//! Modeled as a block decoder whose inner copy loops run for only a few
//! iterations per entry: each entry pays the landing-pad load and exit
//! store for the promoted CRC accumulator while saving only a handful of
//! in-loop references.

/// MiniC source.
pub const SRC: &str = r#"
int out_buf[8192];
int crc;
int out_len;
int blocks;
int trailer;
int rng = 600613;

int next_rand() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    return rng;
}

// Reads the decoder state once per block, which keeps crc, out_len, and
// blocks ambiguous in the outer loop: the only promotion left is crc
// around the short inner copy loop, which barely breaks even.
void emit_block() {
    trailer = (trailer + crc + out_len % 7 + blocks % 3) % 65521;
}

int main() {
    int block;
    for (block = 0; block < 12000; block++) {
        // Each "block" copies a very short match: 1..2 symbols. Promotion
        // of crc around this short-trip loop barely breaks even: the
        // landing-pad load and exit store cost almost exactly what the
        // in-loop references did.
        int len = 1;
        if (next_rand() % 4 == 0) len = 2;
        int src = next_rand() % 4096;
        int k;
        for (k = 0; k < len; k++) {
            int sym = (src + k * 7) % 251;
            out_buf[(out_len + k) % 8192] = sym;
            crc = (crc * 2 + sym) % 65521;
        }
        emit_block();
        out_len = out_len + len;
        blocks = blocks + 1;
    }
    print_int(crc);
    print_int(out_len % 8192);
    print_int(blocks);
    print_int(trailer);
    return 0;
}
"#;
