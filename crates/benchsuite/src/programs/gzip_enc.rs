//! `gzip(enc)` — gzip compression (paper: 1.75% / 2.15% of total
//! operations removed under MOD/REF / pointer analysis — one of the few
//! programs where pointer analysis visibly improves the result).
//!
//! Modeled as an LZ77-style matcher over a sliding window. The
//! deflate-state statistics are updated through a pointer into the state
//! block: MOD/REF can only bound those stores by "anything addressed",
//! while points-to pins them, unlocking promotion of the adjacent
//! explicit counters.

/// MiniC source.
pub const SRC: &str = r#"
int window[4096];
int head[512];
int bits_out;
int matches;
int literals;
int longest;
int state_block[4];   // deflate state accessed via pointer
int rng = 888887;

// Called once at the end with &bits_out: taking the address is what
// forces MOD/REF to treat the pointer stores in the hot loop as possible
// writes to bits_out. Points-to proves they are not.
void flush(int *counter) {
    *counter = *counter + 7;
}

int next_byte() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    int b = rng % 256;
    if (b > 96) b = b % 24;
    return b;
}

int main() {
    int i;
    for (i = 0; i < 512; i++) head[i] = -1;
    for (i = 0; i < 4096; i++) window[i] = next_byte();
    int *stats = state_block;       // pointer into the state block
    int pos;
    int round;
    for (round = 0; round < 25; round++) {
        for (pos = 2; pos < 4000; pos++) {
            int h = (window[pos] * 33 + window[pos + 1] * 7 + window[pos + 2]) % 512;
            int cand = head[h];
            head[h] = pos;
            // Stores through `stats`: MOD/REF sees "any addressed tag",
            // pointer analysis sees exactly state_block.
            stats[0] = stats[0] + 1;
            if (cand >= 0 && cand < pos) {
                int len = 0;
                while (len < 16 && window[cand + len] == window[pos + len] && pos + len < 4095) {
                    len = len + 1;
                }
                if (len >= 3) {
                    matches = matches + 1;
                    bits_out = bits_out + 12;
                    if (len > longest) longest = len;
                    pos = pos + len - 1;
                } else {
                    literals = literals + 1;
                    bits_out = bits_out + 9;
                }
            } else {
                literals = literals + 1;
                bits_out = bits_out + 9;
            }
        }
    }
    flush(&bits_out);
    print_int(matches);
    print_int(literals);
    print_int(bits_out);
    print_int(longest);
    print_int(state_block[0]);
    return 0;
}
"#;
