//! `clean` — a game program from the SPEC benchmarks (paper row: 3.28% of
//! stores removed under both analyses, with a smaller load reduction).
//!
//! Modeled as a board-sweeping game kernel whose store traffic is
//! dominated by unpromotable array stores and call-pinned counters, with
//! one promotable global (`parity`) updated on a sparse stride — yielding
//! the paper's small-but-real single-digit store reduction.

/// MiniC source.
pub const SRC: &str = r#"
int board[256];
int moves;
int captures;
int score;
int parity;
int rng = 777;

int next_rand() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    return rng;
}

// Touches the counters, pinning them in the loops that call this.
void reward(int amount) {
    score = score + amount;
    moves = moves + 1;
    captures = captures + 1;
}

int main() {
    int i;
    for (i = 0; i < 256; i++) board[i] = next_rand() % 4;
    int turn;
    for (turn = 0; turn < 400; turn++) {
        int pos;
        for (pos = 0; pos < 256; pos++) {
            int cell = board[pos];
            if (cell == 3) {
                board[pos] = 0;
                reward(2);
            } else {
                board[pos] = cell + 1;
            }
            // `parity` is explicit-only in this nest and therefore
            // promotable; it updates on a sparse stride so the win is
            // small, like the paper's clean row.
            if ((pos & 15) == 0) {
                parity = parity ^ pos;
            }
        }
    }
    print_int(moves);
    print_int(captures);
    print_int(score);
    print_int(parity);
    return 0;
}
"#;
