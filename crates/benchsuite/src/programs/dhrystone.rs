//! `dhrystone` — the classic synthetic benchmark.
//!
//! The paper singles dhrystone out as a *degradation* case: "values were
//! promoted in a loop that always executed once", so the landing-pad load
//! and exit store (plus the copies) cost more than the references they
//! replaced. This model embeds such a once-executing loop inside a
//! frequently called procedure; the promoter dutifully promotes and pays
//! the price on every call.

/// MiniC source.
pub const SRC: &str = r#"
int int_glob;
int bool_glob;
int ch_glob;
int array_glob[50];

// The body loop "for (i = 0; i < 1; i++)" always executes exactly once --
// dhrystone's Proc_8 shape. Promotion lifts int_glob/bool_glob around it
// anyway.
void proc_once(int base) {
    int i;
    for (i = 0; i < 1; i++) {
        int_glob = int_glob + base;
        bool_glob = !bool_glob;
        array_glob[(base + i) % 50] = int_glob;
    }
}

// Reads ch_glob, pinning it in the driver loop (dhrystone's comparison
// routines read global state).
int compare(int a, int b) {
    if (a + ch_glob % 2 > b) return a - b;
    return b - a;
}

int main() {
    int run;
    for (run = 0; run < 30000; run++) {
        proc_once(run % 17);
        ch_glob = compare(run % 9, run % 7) + ch_glob % 97;
    }
    print_int(int_glob);
    print_int(bool_glob);
    print_int(ch_glob);
    print_int(array_glob[13]);
    return 0;
}
"#;
