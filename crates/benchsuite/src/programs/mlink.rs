//! `mlink` — medical-genetics linkage analysis (28553 lines in the paper).
//!
//! The paper's biggest promotion win: 57.4% of stores and ~23% of loads
//! removed, 4.1–4.3% of all operations, and "register promotion removed
//! 2.8 million loads from one function" — improvements that did **not**
//! require pointer analysis, because the hot references are plain global
//! scalars (likelihood accumulators) updated inside loop nests whose calls
//! provably cannot touch them. This model reproduces exactly that shape:
//! global accumulators red-hot in nested loops, helper calls with disjoint
//! MOD/REF sets.

/// MiniC source.
pub const SRC: &str = r#"
// Pedigree-likelihood style accumulation over loci and genotypes.
double like;
double scale;
int evaluations;
int overflow_guard;

double pen_table[64];
double theta_table[16];
double posterior[256];
int    genotypes[256];
int    rng = 99991;

int next_rand() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    return rng;
}

// Pure per-genotype work: parameters only, no global side effects -- the
// MOD/REF sets of these calls are empty, which is what unlocks promotion.
double penetrance(int g, int locus) {
    int idx = (g * 7 + locus * 3) % 64;
    double base = pen_table[idx];
    return base * 0.5 + 0.25;
}

double recombine(int a, int b) {
    int idx = (a * 5 + b) % 16;
    return theta_table[idx];
}

void setup() {
    int i;
    for (i = 0; i < 64; i++) pen_table[i] = (i % 9) * 0.111;
    for (i = 0; i < 16; i++) theta_table[i] = (i % 5) * 0.2;
    for (i = 0; i < 256; i++) genotypes[i] = next_rand() % 8;
    like = 1.0;
    scale = 0.0;
    evaluations = 0;
    overflow_guard = 0;
}

int main() {
    setup();
    int ped;
    for (ped = 0; ped < 40; ped++) {
        int locus;
        for (locus = 0; locus < 24; locus++) {
            int g;
            for (g = 0; g < 128; g++) {
                // like / scale / evaluations are global scalars referenced
                // explicitly in the innermost loop; the calls cannot touch
                // them.
                double p = penetrance(genotypes[g % 256], locus);
                double t = recombine(g, locus);
                like = like * (0.5 + p * t * 0.001);
                // Per-genotype posterior write: real mlink keeps large
                // unpromotable array traffic next to the scalar
                // accumulators, which is why its store reduction is ~57%
                // rather than ~100%.
                posterior[g % 256] = like * 0.001 + t;
                evaluations = evaluations + 1;
                if (like > 1000000.0) {
                    like = like * 0.000001;
                    scale = scale + 6.0;
                }
            }
            // Rescale once per locus.
            if (like < 0.000001) {
                like = like * 1000000.0;
                scale = scale - 6.0;
            }
        }
    }
    print_float(like);
    print_float(scale);
    print_int(evaluations);
    print_int(overflow_guard);
    print_float(posterior[17]);
    return 0;
}
"#;
