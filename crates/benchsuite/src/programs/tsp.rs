//! `tsp` — "a traveling salesman problem" (760 lines in the paper).
//!
//! The paper measures **zero** effect from promotion on tsp (0.00% in all
//! three figures): its hot state lives in unaliased locals and arrays, so
//! the promoter finds nothing to do. This model keeps every scalar in
//! registers and all array traffic unpromotable, reproducing the flat row.

/// MiniC source.
pub const SRC: &str = r#"
// Nearest-neighbour tour over a synthetic distance matrix.
int xs[48];
int ys[48];
int visited[48];
int n_cities = 48;
int rng = 12345;

int next_rand() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    return rng;
}

int dist2(int a, int b) {
    int dx = xs[a] - xs[b];
    int dy = ys[a] - ys[b];
    return dx * dx + dy * dy;
}

int main() {
    int i;
    for (i = 0; i < n_cities; i++) {
        xs[i] = next_rand() % 1000;
        ys[i] = next_rand() % 1000;
        visited[i] = 0;
    }
    int rounds;
    int grand = 0;
    for (rounds = 0; rounds < 60; rounds++) {
        for (i = 0; i < n_cities; i++) visited[i] = 0;
        int start = rounds % n_cities;
        int current = start;
        visited[current] = 1;
        int total = 0;
        int step;
        for (step = 1; step < n_cities; step++) {
            int best = -1;
            int best_d = 2000000000;
            int c;
            for (c = 0; c < n_cities; c++) {
                if (!visited[c]) {
                    int d = dist2(current, c);
                    if (d < best_d) { best_d = d; best = c; }
                }
            }
            visited[best] = 1;
            total = total + best_d;
            current = best;
        }
        total = total + dist2(current, start);
        grand = grand + total % 100000;
    }
    print_int(grand);
    return 0;
}
"#;
