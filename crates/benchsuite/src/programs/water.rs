//! `water` — the SPEC molecular-dynamics benchmark.
//!
//! The paper's register-pressure anomaly: "register promotion was able to
//! promote twenty-eight values for one loop nest. Unfortunately, this
//! caused the register allocator to spill values which resulted in a
//! performance loss compared to no register promotion." This model updates
//! 28 global accumulators in one loop nest; with the default 32-register
//! machine the promoted registers plus scratch exceed supply and the
//! allocator spills — promotion's savings are (partly) given back as
//! spill traffic, exactly the paper's story.

/// MiniC source.
pub const SRC: &str = r#"
// 28 global accumulators live across the interaction loop.
int vxx; int vxy; int vxz; int vyx; int vyy; int vyz;
int vzx; int vzy; int vzz; int fxx; int fxy; int fxz;
int fyx; int fyy; int fyz; int fzx; int fzy; int fzz;
int pe1; int pe2; int pe3; int ke1; int ke2; int ke3;
int virial1; int virial2; int virial3; int count;

int mol[128];
int rng = 161803;

int next_rand() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    return rng;
}

int main() {
    int i;
    for (i = 0; i < 128; i++) mol[i] = next_rand() % 64;
    int step;
    for (step = 0; step < 120; step++) {
        int m;
        for (m = 0; m < 128; m++) {
            int q = mol[m];
            int r = q * q + 1;
            vxx = vxx + q;       vxy = vxy + r;       vxz = vxz + q * 2;
            vyx = vyx + r % 7;   vyy = vyy + q % 5;   vyz = vyz + r % 3;
            vzx = vzx + q + 1;   vzy = vzy + r + 2;   vzz = vzz + q - 1;
            fxx = fxx + r / 3;   fxy = fxy + q / 2;   fxz = fxz + r / 5;
            fyx = fyx + q * 3;   fyy = fyy + r * 2;   fyz = fyz + q * 5;
            fzx = fzx + r - q;   fzy = fzy + q - r;   fzz = fzz + r * q % 11;
            pe1 = pe1 + q;       pe2 = pe2 + r;       pe3 = pe3 + q + r;
            ke1 = ke1 + q % 3;   ke2 = ke2 + r % 4;   ke3 = ke3 + q % 6;
            virial1 = virial1 + r;
            virial2 = virial2 + q;
            virial3 = virial3 + r % 13;
            count = count + 1;
        }
    }
    print_int(vxx + vxy + vxz + vyx + vyy + vyz + vzx + vzy + vzz);
    print_int(fxx + fxy + fxz + fyx + fyy + fyz + fzx + fzy + fzz);
    print_int(pe1 + pe2 + pe3 + ke1 + ke2 + ke3);
    print_int(virial1 + virial2 + virial3);
    print_int(count);
    return 0;
}
"#;
