//! `allroots` — the polynomial root finder (215 lines; the smallest
//! program in the paper's suite).
//!
//! The paper's counts for allroots are striking: **11 stores in the whole
//! execution** and zero effect from promotion. Everything lives in
//! unaliased locals; the only memory traffic is a handful of coefficient
//! reads. This model keeps the same character: Newton iteration entirely
//! in registers over a small coefficient array.

/// MiniC source.
pub const SRC: &str = r#"
double coeff[5];

double eval(double x) {
    double y = 0.0;
    int i;
    for (i = 4; i >= 0; i--) {
        y = y * x + coeff[i];
    }
    return y;
}

double eval_deriv(double x) {
    double y = 0.0;
    int i;
    for (i = 4; i >= 1; i--) {
        y = y * x + coeff[i] * i;
    }
    return y;
}

int main() {
    // (x-1)(x-2)(x-3)(x-4) = x^4 - 10x^3 + 35x^2 - 50x + 24
    coeff[4] = 1.0;
    coeff[3] = -10.0;
    coeff[2] = 35.0;
    coeff[1] = -50.0;
    coeff[0] = 24.0;
    double guesses[4];
    guesses[0] = 0.5;
    guesses[1] = 2.4;
    guesses[2] = 3.2;
    guesses[3] = 5.0;
    int g;
    for (g = 0; g < 4; g++) {
        double x = guesses[g];
        int it;
        for (it = 0; it < 40; it++) {
            double d = eval_deriv(x);
            if (fabs(d) < 0.000000001) break;
            x = x - eval(x) / d;
        }
        print_float(x);
    }
    return 0;
}
"#;
