//! `fft` — fast Fourier transform (the paper's §5 case study).
//!
//! Two phenomena live here. First, the paper's code fragment where
//! promotion of `T1` **requires pointer analysis**: `T1`'s address is
//! taken elsewhere and `X2` is a pointer, so under MOD/REF alone the
//! stores through `X2` might modify `T1` and promotion is blocked; the
//! points-to analysis proves `X2` targets only its array and `T1` becomes
//! promotable. Second, fft is the one program where **pointer-based
//! promotion** (§3.3) paid off visibly — modeled by the accumulation loop
//! through the loop-invariant pointer `acc`.

/// MiniC source.
pub const SRC: &str = r#"
double X1[512];
double X2[512];
double X3[64];
double T1;        // address taken below: aliased as far as MOD/REF knows
int    KT = 3;
int    N1 = 8;
int    N3 = 4;

void seed(double *slot, double v) {
    *slot = v;
}

void setup() {
    int i;
    for (i = 0; i < 512; i++) {
        X1[i] = (i % 17) * 0.25 + 1.0;
        X2[i] = 0.0;
    }
    for (i = 0; i < 64; i++) X3[i] = 1.0 + (i % 5) * 0.125;
    seed(&T1, 1.0);
}

int main() {
    setup();
    double *px1 = X1;
    double *px2 = X2;
    double *px3 = X3;
    int I; int J; int K;
    // The paper's kernel: T1 = pow(X3[index3], KT);
    //                     X2[index1]    = T1 * X1[index1];
    //                     X2[index1+N1] = T1 * X1[index1+N1];
    for (I = 0; I < 8; I++) {
        for (J = 0; J < N3; J++) {
            for (K = 0; K < N1; K++) {
                int index3 = (I * N3 + J) * 2 + K % 2;
                int index1 = (I * N3 + J) * N1 * 2 + K;
                T1 = pow(px3[index3 % 64], 1.0 * KT);
                px2[index1 % 500] = T1 * px1[index1 % 500];
                px2[(index1 + N1) % 500] = T1 * px1[(index1 + N1) % 500];
            }
        }
    }
    // Pointer-based promotion target: the address &X2[I] is invariant in
    // the K loop and all accesses to X2 in that loop go through it.
    double checksum = 0.0;
    for (I = 0; I < 64; I++) {
        double *acc = &X2[I];
        for (K = 0; K < 48; K++) {
            *acc = *acc + X1[(I + K) % 512] * X3[K % 64];
        }
    }
    for (I = 0; I < 512; I++) checksum = checksum + X2[I];
    print_float(checksum);
    print_float(T1);
    return 0;
}
"#;
