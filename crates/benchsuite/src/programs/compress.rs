//! `compress` — the SPEC file-compression program.
//!
//! Modeled as an LZW-style coder over a synthetic byte stream: the hash
//! table traffic is unpromotable array work, the output routine pins the
//! counters it owns, and the per-symbol statistics (`in_count`,
//! `checksum`) are explicit-only in the main loop — a moderate promotion
//! win concentrated in loads and stores of those statistics.

/// MiniC source.
pub const SRC: &str = r#"
int htab[1024];
int codetab[1024];
int out_count;
int out_hash;
int in_count;
int checksum;
int free_code;
int rng = 31415;

int next_byte() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    // Skewed distribution so matches actually happen.
    int b = rng % 256;
    if (b > 128) b = b % 32;
    return b;
}

// Owns the output counters: calls to this pin them.
void put_code(int code) {
    out_count = out_count + 1;
    out_hash = (out_hash * 31 + code) % 1000003;
}

int main() {
    int i;
    for (i = 0; i < 1024; i++) { htab[i] = -1; codetab[i] = 0; }
    free_code = 256;
    int prefix = next_byte();
    int n;
    for (n = 0; n < 60000; n++) {
        int c = next_byte();
        in_count = in_count + 1;
        checksum = (checksum + c) % 65536;
        int key = (prefix * 256 + c) % 1024;
        if (htab[key] == prefix * 256 + c) {
            prefix = codetab[key];
        } else {
            put_code(prefix);
            if (free_code < 4096) {
                htab[key] = prefix * 256 + c;
                codetab[key] = free_code % 1024;
                free_code = free_code + 1;
            }
            prefix = c;
        }
    }
    put_code(prefix);
    print_int(in_count);
    print_int(out_count);
    print_int(out_hash);
    print_int(checksum);
    print_int(free_code);
    return 0;
}
"#;
