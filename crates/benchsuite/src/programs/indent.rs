//! `indent` — the C prettyprinter (paper: ~4% of stores and a couple of
//! percent of loads removed; identical under MOD/REF and pointer
//! analysis).
//!
//! Modeled as a character-scanning formatter maintaining global layout
//! state: the hot scan loop updates `column`/`depth` explicitly (the
//! promotion win) while emission calls pin the output counters.

/// MiniC source.
pub const SRC: &str = r#"
int column;
int depth;
int line_count;
int emitted;
int out_hash;
int input[4096];
int rng = 42424;

int next_rand() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    return rng;
}

// Emission owns the output counters and *reads* the current column and
// depth, pinning both in every loop that emits -- only `line_count` stays
// promotable, keeping the win small like the paper's indent row.
void emit(int ch) {
    emitted = emitted + 1;
    out_hash = (out_hash * 131 + ch + column + depth) % 1000003;
}

int main() {
    int i;
    // Token classes: 0 space, 1 word, 2 open brace, 3 close brace,
    // 4 newline.
    for (i = 0; i < 4096; i++) {
        int r = next_rand() % 16;
        int t = 1;
        if (r < 4) t = 0;
        if (r == 12) t = 2;
        if (r == 13) t = 3;
        if (r >= 14) t = 4;
        input[i] = t;
    }
    int round;
    for (round = 0; round < 120; round++) {
        column = 0;
        depth = 0;
        for (i = 0; i < 4096; i++) {
            int t = input[i];
            if (t == 2) {
                if (depth < 10) depth = depth + 1;
                emit(t);
                column = column + 1;
            } else if (t == 3) {
                if (depth > 0) depth = depth - 1;
                emit(t);
                column = column + 1;
            } else if (t == 4) {
                line_count = line_count + 1;
                column = depth * 4;
            } else {
                emit(t);
                column = column + 1;
                if (column > 78) {
                    line_count = line_count + 1;
                    column = depth * 4;
                }
            }
        }
    }
    print_int(line_count);
    print_int(emitted);
    print_int(out_hash);
    print_int(column);
    print_int(depth);
    return 0;
}
"#;
