//! `bison` — the LR(1) parser generator (paper: essentially flat rows,
//! 0.04% of loads; the text notes that in bison "values were promoted
//! that were only accessed on an error condition" — a mild degradation
//! mechanism).
//!
//! Modeled as a table-driven parse loop whose `error_count` global is
//! referenced only on a path the input never takes. The promoter lifts it
//! around the inner loop anyway, paying a load and a store per loop entry
//! for a value the loop never touches.

/// MiniC source.
pub const SRC: &str = r#"
int action[64][8];
int goto_tab[64][8];
int error_count;
int reductions;
int tokens[8192];
int rng = 123321;

int next_rand() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    return rng;
}

// Owns `reductions`: the call pins it in the parse loop, keeping bison's
// promotion opportunities confined to the dead error path.
void note_reduction() {
    reductions = reductions + 1;
}

int main() {
    int s; int t;
    for (s = 0; s < 64; s++) {
        for (t = 0; t < 8; t++) {
            // All actions are shifts/reduces; action 0 (error) never
            // appears in a reachable table cell.
            action[s][t] = 1 + (s * 3 + t) % 4;
            goto_tab[s][t] = (s * 7 + t * 5 + 1) % 64;
        }
    }
    for (t = 0; t < 8192; t++) tokens[t] = next_rand() % 8;
    int run;
    for (run = 0; run < 40; run++) {
        int state = 0;
        int i;
        for (i = 0; i < 8192; i++) {
            int tok = tokens[i];
            int a = action[state][tok];
            if (a == 0) {
                // Never taken: the only references to error_count in the
                // loop sit on this dead path, yet promotion still lifts
                // the value around the loop.
                error_count = error_count + 1;
                if (error_count > 100) break;
            } else if (a == 1) {
                note_reduction();
                state = goto_tab[state][tok];
            } else {
                state = (state + a) % 64;
            }
        }
    }
    print_int(reductions);
    print_int(error_count);
    return 0;
}
"#;
