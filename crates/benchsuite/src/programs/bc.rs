//! `bc` — the GNU calculator language (paper: the program where pointer
//! analysis pays off most visibly — 8.8% of stores removed under MOD/REF
//! vs **27.5%** under pointer analysis).
//!
//! The interpreter dispatches operations through a **function-pointer
//! table**. Under MOD/REF alone an indirect call may target *any*
//! addressed function — including the addressed-but-never-dispatched
//! `log_stats`, which modifies `op_count` — so `op_count` stays pinned in
//! the interpreter loop. Points-to analysis resolves the table to the four
//! arithmetic handlers, whose effect sets do not contain `op_count`, and
//! the promotion win grows accordingly. The `steps` counter is promotable
//! under both analyses, giving the smaller MOD/REF baseline win.

/// MiniC source.
pub const SRC: &str = r#"
int acc;
int scratch;
int op_count;
int steps;
int program[2048]; // opcode stream
int operand[2048];
int rng = 55555;

int next_rand() {
    rng = (rng * 1103515 + 12345) % 2147483647;
    if (rng < 0) rng = -rng;
    return rng;
}

int op_add(int v) { acc = acc + v; return acc; }
int op_sub(int v) { acc = acc - v; return acc; }
int op_mul(int v) { acc = acc * v % 1000003; return acc; }
int op_mod(int v) { acc = acc % (v + 1); return acc; }

// Addressed (stored into a func variable) but never called from the hot
// loop; its MOD set contains op_count, which is what fools MOD/REF.
int log_stats(int v) { op_count = op_count + v; return op_count; }

void stir(int *cell, int v) { *cell = *cell + v; }

func dispatch[4];
func logger;

int main() {
    dispatch[0] = op_add;
    dispatch[1] = op_sub;
    dispatch[2] = op_mul;
    dispatch[3] = op_mod;
    logger = log_stats;
    stir(&scratch, 7);
    int i;
    for (i = 0; i < 2048; i++) {
        program[i] = next_rand() % 8;
        operand[i] = next_rand() % 97 + 1;
    }
    int round;
    for (round = 0; round < 150; round++) {
        int pc;
        for (pc = 0; pc < 2048; pc++) {
            int op = program[pc];
            if (op < 4) {
                func f = dispatch[op];
                f(operand[pc]);
            } else if (op < 6) {
                // Promotable only when the analysis can prove the
                // indirect calls above never reach log_stats.
                op_count = op_count + 1;
            }
            if ((pc & 7) == 0) {
                // Promotable under both analyses.
                steps = steps + 1;
            }
        }
    }
    int final_log = logger(0);
    print_int(acc);
    print_int(op_count);
    print_int(steps);
    print_int(scratch);
    print_int(final_log);
    return 0;
}
"#;
