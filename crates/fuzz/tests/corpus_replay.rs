//! Regression corpus: every reproducer checked in under `corpus/` once
//! tripped the oracle (or the compiler itself) and must now pass the full
//! configuration matrix. `promo-fuzz --replay corpus/<file>.c` runs the
//! same check from the command line.

use fuzz::{Oracle, OracleOptions, Verdict};
use std::path::Path;

#[test]
fn checked_in_reproducers_stay_fixed() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus must not be empty");
    let oracle = Oracle::new(OracleOptions::default());
    for path in entries {
        let source = std::fs::read_to_string(&path).expect("readable reproducer");
        match oracle.check(&source) {
            Verdict::Pass => {}
            v => panic!("{}: regressed: {v:?}", path.display()),
        }
    }
}
