//! Generator guarantees: every seed yields a program the whole pipeline
//! accepts and the VM runs trap-free, generation is deterministic, and a
//! modest campaign exercises every construct the grammar can emit.

use driver::prelude::*;
use fuzz::{generate, ConstructStats};

/// Seeds covered by the compile/run sweep. Matches the CI smoke run's
/// count so a generator regression fails here before it fails in CI.
const SWEEP: u64 = 300;

#[test]
fn every_seed_compiles_and_runs_cleanly() {
    // One warm session for the whole sweep — this is the Session API's
    // whole point, and it keeps 300 compiles under a few seconds.
    let session = Session::builder().threads(Some(1)).build();
    for seed in 0..SWEEP {
        let source = generate(seed).render();
        let compiled = session
            .compile_and_run(&source)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: {e}\n{source}"));
        let outcome = compiled.outcome.expect("outcome populated");
        assert_eq!(
            outcome.exit_code, 0,
            "seed {seed:#x}: main must return 0\n{source}"
        );
    }
}

#[test]
fn generation_is_deterministic() {
    for seed in [0, 1, 0xC0FFEE, u64::MAX] {
        let a = generate(seed).render();
        let b = generate(seed).render();
        assert_eq!(a, b, "seed {seed:#x} must be reproducible");
    }
    assert_ne!(
        generate(7).render(),
        generate(8).render(),
        "adjacent seeds should differ"
    );
}

#[test]
fn campaign_exercises_every_construct() {
    let mut stats = ConstructStats::default();
    for seed in 0..SWEEP {
        stats.merge(&ConstructStats::of(&generate(seed)));
    }
    // Every counter the generator can emit must actually fire over a
    // 300-seed campaign; a silent zero means a grammar path is dead.
    let hits = [
        ("globals", stats.globals),
        ("global_arrays", stats.global_arrays),
        ("global_ptrs", stats.global_ptrs),
        ("helpers", stats.helpers),
        ("recursive_helpers", stats.recursive_helpers),
        ("fors", stats.fors),
        ("whiles", stats.whiles),
        ("do_whiles", stats.do_whiles),
        ("ifs", stats.ifs),
        ("derefs", stats.derefs),
        ("addr_of_local", stats.addr_of_local),
        ("addr_of_global", stats.addr_of_global),
        ("indexes", stats.indexes),
        ("mallocs", stats.mallocs),
        ("local_arrays", stats.local_arrays),
        ("calls", stats.calls),
        ("compound_assigns", stats.compound_assigns),
        ("incrs", stats.incrs),
        ("breaks", stats.breaks),
        ("continues", stats.continues),
        ("prints", stats.prints),
        ("divisions", stats.divisions),
        ("shifts", stats.shifts),
    ];
    for (name, n) in hits {
        assert!(n > 0, "construct {name} never generated in {SWEEP} seeds");
    }
}
