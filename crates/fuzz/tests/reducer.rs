//! Reducer guarantees, exercised through a *planted* miscompile: the
//! sabotage hook bumps the first integer constant in `main` on the default
//! arm only, so the oracle must fail, and the reducer must shrink the
//! witness to a handful of statements — deterministically.

use fuzz::{generate, reduce, FailureKind, Oracle, OracleOptions, Verdict};

fn sabotage_oracle() -> Oracle {
    Oracle::new(OracleOptions {
        sabotage: true,
        ..OracleOptions::default()
    })
}

#[test]
fn planted_miscompile_is_caught_and_shrinks() {
    let oracle = sabotage_oracle();
    // Seed 1's program prints a constant-derived value early, so the
    // planted off-by-N is observable on the default arm.
    let program = generate(1);
    let failure = match oracle.check(&program.render()) {
        Verdict::Fail(f) => f,
        v => panic!("sabotage must trip the oracle, got {v:?}"),
    };
    assert_eq!(failure.kind, FailureKind::OutputMismatch);
    let reduction = reduce(&program, &failure, &oracle);
    assert!(
        reduction.to_statements <= 15,
        "reducer left {} statements (from {})",
        reduction.to_statements,
        reduction.from_statements
    );
    assert!(reduction.to_statements < reduction.from_statements);
    // The reduced program still trips the same oracle check.
    match oracle.check(&reduction.program.render()) {
        Verdict::Fail(f) => assert_eq!(f.kind, failure.kind, "same failure kind after reduction"),
        v => panic!("reduced program must still fail, got {v:?}"),
    }
}

#[test]
fn reduction_is_deterministic() {
    let oracle = sabotage_oracle();
    let program = generate(1);
    let failure = match oracle.check(&program.render()) {
        Verdict::Fail(f) => f,
        v => panic!("sabotage must trip the oracle, got {v:?}"),
    };
    let a = reduce(&program, &failure, &oracle);
    let b = reduce(&program, &failure, &oracle);
    assert_eq!(a.program.render(), b.program.render());
    assert_eq!(a.oracle_runs, b.oracle_runs);
}
