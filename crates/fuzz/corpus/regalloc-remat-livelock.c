// Fuzzer-found regression (promo-fuzz seed 0xc10039): under a tight
// 8-register allocation the rematerializer left dead constant defs in
// the interference graph, and the allocator livelocked re-spilling
// the same register until its convergence assert fired.
// See regalloc::alloc::try_rematerialize.
int g0 = 9;
int g1 = -1;
int g2 = 3;
int ga0[8];
int *gp0;

int f0() {
    int *v0 = &g2;
    g2++;
    print_int(((*v0) <= ga0[(g1 & 7)]));
    return (g0 + (g2 ^ ga0[((0 - 1) & 7)]));
}

int f1(int h1d, int h1a0, int h1a1) {
    if (h1d <= 0) {
        return h1a1;
    }
    f0();
    int *v1 = &g0;
    int *v2 = &g0;
    if ((ga0[(g2 & 7)] <= ((*v2) % (h1a0 | 1)))) {
        g2 = (!(g1 > 11));
        g0--;
        f0();
    }
    int v3 = 11;
    return f1(h1d - 1, h1a0, h1a1) + (h1a1);
}

int f2(int h2d, int h2a0) {
    if (h2d <= 0) {
        return ((0 - 31259) <= (ga0[((0 - 2) & 7)] & g0));
    }
    int c0 = 0;
    int c1 = 0;
    int c2 = 0;
    for (c0 = 0; c0 < 2; c0++) {
        f1(5, (h2d >= c0), f0());
        ga0[(c0 & 7)] -= 2;
        if ((!(13 * ga0[(14 & 7)]))) {
            ga0[(h2a0 & 7)] = ((g0 >= ga0[((0 - 5) & 7)]) | (h2a0 << ((0 - 1) & 15)));
            ga0[(g0 & 7)] = f0();
            ga0[(g1 & 7)] += g1;
        } else {
            int v4 = ((0 - 4) % ((ga0[(g0 & 7)] % (ga0[(g0 & 7)] | 1)) | 1));
            f1(4, (c0 - c0), 7);
        }
    }
    int *v5 = &g0;
    f0();
    for (c1 = 0; c1 < 9; c1++) {
        print_int((((*v5) + h2d) <= 7));
        g1 = g2;
        c2 = 0;
        while (c2 < 3) {
            int v6 = (ga0[(g1 & 7)] + ((*v5) >> (ga0[(h2a0 & 7)] & 15)));
            c2 = c2 + 1;
        }
    }
    int v7 = (*v5);
    return f2(h2d - 1, h2a0) + (((0 - 31259) <= (ga0[((0 - 2) & 7)] & g0)));
}

int main() {
    gp0 = &g2;
    if ((0 - 4076)) {
        f1(4, ((*gp0) <= 15), ga0[(g1 & 7)]);
    }
    f2(1, (g1 == (*gp0)));
    *gp0 = f1(3, (ga0[(10 & 7)] << (ga0[(g1 & 7)] & 15)), (g1 << ((*gp0) & 15)));
    gp0 = &g1;
    g0 *= f2(2, f0());
    g1 -= (!f0());
    int v8 = f1(5, f0(), (!(0 - 8)));
    f1(5, 4, (ga0[(v8 & 7)] >> ((*gp0) & 15)));
    if ((f1(1, (0 - 4), (*gp0)) | (!ga0[(16 & 7)]))) {
        f0();
    }
    ga0[(g2 & 7)] = (((*gp0) / (10 | 1)) || f1(4, v8, (*gp0)));
    print_int(f0());
    g2 = (((*gp0) * 14) <= f1(5, g1, ga0[((0 - 1) & 7)]));
    print_int(((12 >= (*gp0)) - ((*gp0) << (v8 & 15))));
    print_int(g0);
    print_int(g1);
    print_int(g2);
    return 0;
}
