//! Differential fuzzing CLI.
//!
//! ```text
//! promo-fuzz [--seed N] [--count N] [--edit N] [--time-budget SECS]
//!            [--reduce] [--out DIR] [--max-steps N] [--replay FILE]...
//!            [--sabotage]
//! ```
//!
//! Checks `count` generated programs (seeds `seed..seed+count`) against
//! the differential oracle, optionally reducing and persisting every
//! failure under `--out` (default `results/fuzz/`). Exits nonzero when
//! any oracle violation was found, so CI can gate on it.
//!
//! `--edit N` applies N cumulative single-function mutations after each
//! passing seed and holds every mutant to the oracle matrix plus the
//! incremental-recompilation differential (a persistent warm session vs
//! a cold one). `--replay FILE` skips generation and runs the oracle on
//! an existing reproducer (repeatable). `--sabotage` plants a deliberate
//! miscompile in the default arm — a self-test that must *fail*.

use fuzz::{run_campaign, CampaignOptions, Oracle, Verdict};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: promo-fuzz [--seed N] [--count N] [--edit N] [--time-budget SECS] \
         [--reduce] [--out DIR] [--max-steps N] [--replay FILE]... [--sabotage]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut options = CampaignOptions {
        count: 100,
        out_dir: Some(PathBuf::from("results/fuzz")),
        ..CampaignOptions::default()
    };
    let mut replays: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("promo-fuzz: {name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--seed" => match value("--seed").and_then(|v| parse_u64(&v)) {
                Some(v) => options.seed = v,
                None => return usage(),
            },
            "--count" => match value("--count").and_then(|v| parse_u64(&v)) {
                Some(v) => options.count = v,
                None => return usage(),
            },
            "--edit" => match value("--edit").and_then(|v| parse_u64(&v)) {
                Some(v) => options.edits = v,
                None => return usage(),
            },
            "--time-budget" => match value("--time-budget").and_then(|v| parse_u64(&v)) {
                Some(v) => options.time_budget = Some(Duration::from_secs(v)),
                None => return usage(),
            },
            "--max-steps" => match value("--max-steps").and_then(|v| parse_u64(&v)) {
                Some(v) => options.oracle.max_steps = v,
                None => return usage(),
            },
            "--out" => match value("--out") {
                Some(v) => options.out_dir = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--replay" => match value("--replay") {
                Some(v) => replays.push(PathBuf::from(v)),
                None => return usage(),
            },
            "--dump" => match value("--dump").and_then(|v| parse_u64(&v)) {
                Some(v) => {
                    print!("{}", fuzz::generate(v).render());
                    return ExitCode::SUCCESS;
                }
                None => return usage(),
            },
            "--reduce" => options.reduce = true,
            "--sabotage" => options.oracle.sabotage = true,
            _ => {
                eprintln!("promo-fuzz: unknown argument {arg:?}");
                return usage();
            }
        }
    }

    if !replays.is_empty() {
        let oracle = Oracle::new(options.oracle.clone());
        let mut bad = 0u32;
        for path in &replays {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("promo-fuzz: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match oracle.check(&source) {
                Verdict::Pass => println!("{}: pass", path.display()),
                Verdict::Skip(why) => println!("{}: skip ({why})", path.display()),
                Verdict::Fail(f) => {
                    bad += 1;
                    println!(
                        "{}: FAIL [{} / {}] {}",
                        path.display(),
                        f.arm.label(),
                        f.kind.label(),
                        f.detail
                    );
                }
            }
        }
        return if bad == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let summary = match run_campaign(&options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("promo-fuzz: corpus I/O error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "promo-fuzz: {} checked ({} passed, {} skipped, {} failed{}) from seed {:#x}",
        summary.checked,
        summary.passed,
        summary.skipped,
        summary.failures.len(),
        if summary.edits_checked > 0 {
            format!(", {} edit-mode mutants", summary.edits_checked)
        } else {
            String::new()
        },
        options.seed,
    );
    let s = &summary.stats;
    println!(
        "  constructs: {} globals, {} ptr-globals, {} derefs, {} addr-of-local, \
         {} indexes, {} mallocs, {} for / {} while / {} do, {} ifs, {} calls, \
         {} recursive-helpers, {} breaks, {} continues",
        s.globals,
        s.global_ptrs,
        s.derefs,
        s.addr_of_local,
        s.indexes,
        s.mallocs,
        s.fors,
        s.whiles,
        s.do_whiles,
        s.ifs,
        s.calls,
        s.recursive_helpers,
        s.breaks,
        s.continues,
    );
    for f in &summary.failures {
        println!(
            "  seed {:#x}: [{} / {}] {}{}",
            f.seed,
            f.failure.arm.label(),
            f.failure.kind.label(),
            f.failure.detail,
            f.reduced_statements
                .map(|n| format!(" (reduced to {n} statements)"))
                .unwrap_or_default(),
        );
    }
    if summary.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        if let Some(dir) = &options.out_dir {
            println!("  corpus written under {}", dir.display());
        }
        ExitCode::FAILURE
    }
}
