//! The differential execution oracle.
//!
//! One [`Oracle`] owns a persistent [`Session`] per configuration arm
//! (so worker pools and warm front ends amortize across a whole
//! campaign) and checks each program end to end:
//!
//! * **reference** — the `-O0` arm: no optimizer, no promotion, no
//!   allocator. Its output/exit code is ground truth.
//! * **behavioral arms** — default pipeline, points-to + pointer
//!   promotion, dense dataflow, fresh scratch arenas, fresh front end,
//!   the `minic::classic` front end, and a register-starved allocator:
//!   each must reproduce the reference output and exit code exactly.
//! * **determinism arms** — worker counts 2 and 8 must produce
//!   bit-identical IL (compared as rendered text) and identical dynamic
//!   counts to the single-threaded default arm.
//! * **traffic invariant** — the paper's whole point: optimized code may
//!   not execute more loads+stores than the reference beyond a lift
//!   allowance, unless the allocator spilled (the paper's `water`
//!   anomaly, where promotion plus spilling legitimately adds traffic).
//!
//! A `sabotage` test hook deliberately corrupts the first integer
//! constant in `main` *after* optimization of the default arm — a valid
//! IL mutation the oracle must catch, used to test the oracle and the
//! reducer themselves.

use driver::prelude::*;
use ir::Instr;
use vm::Vm;

/// Default VM step budget per arm execution. Generated programs finish
/// in well under a million steps; the budget only exists to bound
/// pathological reducer candidates.
pub const DEFAULT_MAX_STEPS: u64 = 1 << 28;

/// Which oracle arm observed a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// The unoptimized reference pipeline.
    Reference,
    /// Default pipeline (MOD/REF, scalar promotion, 32-register
    /// allocator).
    Default,
    /// Points-to analysis plus pointer promotion.
    Pointer,
    /// Dense (resweep) dataflow solvers.
    Dense,
    /// Scratch-arena reuse disabled.
    FreshScratch,
    /// Fresh front end per compile (no warm interner).
    FreshFrontend,
    /// The `minic::classic` (String/Box) front end feeding the same
    /// pipeline.
    Classic,
    /// Worker pool of 2 threads (IL + counts determinism vs Default).
    Workers2,
    /// Worker pool of 8 threads (IL + counts determinism vs Default).
    Workers8,
    /// 8-register allocator (spill-heavy; output equality only).
    TightRegs,
    /// Persistent `incremental(true)` session (edit mode): IL, remarks,
    /// and dynamic counts must be byte-identical to a fresh cold session
    /// on every version of an edited program.
    Incremental,
}

impl Arm {
    /// Stable lowercase label (corpus records, CLI output).
    pub fn label(self) -> &'static str {
        match self {
            Arm::Reference => "reference",
            Arm::Default => "default",
            Arm::Pointer => "pointer",
            Arm::Dense => "dense",
            Arm::FreshScratch => "fresh-scratch",
            Arm::FreshFrontend => "fresh-frontend",
            Arm::Classic => "classic",
            Arm::Workers2 => "workers2",
            Arm::Workers8 => "workers8",
            Arm::TightRegs => "tight-regs",
            Arm::Incremental => "incremental",
        }
    }
}

/// What kind of oracle violation occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// An arm rejected a program another arm accepted (or the generator
    /// produced something no front end accepts).
    CompileError,
    /// An arm faulted at runtime while the reference ran clean.
    VmFault,
    /// Printed output diverged from the reference.
    OutputMismatch,
    /// Exit code diverged from the reference.
    ExitMismatch,
    /// Optimized code executed more memory traffic than the reference
    /// plus the lift allowance (without spilling to excuse it).
    TrafficRegression,
    /// A multi-worker arm produced different IL or dynamic counts than
    /// the single-threaded default arm.
    Determinism,
}

impl FailureKind {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::CompileError => "compile-error",
            FailureKind::VmFault => "vm-fault",
            FailureKind::OutputMismatch => "output-mismatch",
            FailureKind::ExitMismatch => "exit-mismatch",
            FailureKind::TrafficRegression => "traffic-regression",
            FailureKind::Determinism => "determinism",
        }
    }
}

/// One oracle violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Arm that diverged.
    pub arm: Arm,
    /// Violation category.
    pub kind: FailureKind,
    /// Human-readable specifics (first diverging line, counts, …).
    pub detail: String,
}

/// Oracle result for one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every arm agreed.
    Pass,
    /// The reference arm itself faulted (resource budget), so the
    /// program is not a usable differential witness. Never produced for
    /// programs straight out of the generator — only for reducer
    /// candidates that broke a generator invariant.
    Skip(String),
    /// An arm violated the oracle.
    Fail(Failure),
}

impl Verdict {
    /// The failure, if this verdict is one.
    pub fn failure(&self) -> Option<&Failure> {
        match self {
            Verdict::Fail(f) => Some(f),
            _ => None,
        }
    }
}

/// Oracle knobs.
#[derive(Debug, Clone)]
pub struct OracleOptions {
    /// VM step budget per execution.
    pub max_steps: u64,
    /// Test hook: corrupt the first `iconst` in `main` of the default
    /// arm after optimization, to verify the oracle catches a planted
    /// miscompile end to end.
    pub sabotage: bool,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            max_steps: DEFAULT_MAX_STEPS,
            sabotage: false,
        }
    }
}

struct ConfiguredArm {
    arm: Arm,
    session: Session,
}

/// The differential oracle; construct once, [`check`](Oracle::check)
/// many programs.
pub struct Oracle {
    reference: Session,
    behavioral: Vec<ConfiguredArm>,
    workers: Vec<ConfiguredArm>,
    classic_pipeline: Session,
    options: OracleOptions,
}

impl Oracle {
    /// Builds every arm's session up front.
    pub fn new(options: OracleOptions) -> Oracle {
        let steps = options.max_steps;
        let single = |b: SessionBuilder| b.threads(Some(1)).max_steps(steps).build();
        let reference = single(
            Session::builder()
                .optimize(false)
                .promote(false)
                .pointer_promote(false)
                .analysis(AnalysisLevel::AddressTaken)
                .regalloc(None),
        );
        let behavioral = vec![
            ConfiguredArm {
                arm: Arm::Default,
                session: single(Session::builder()),
            },
            ConfiguredArm {
                arm: Arm::Pointer,
                session: single(
                    Session::builder()
                        .analysis(AnalysisLevel::PointsTo)
                        .pointer_promote(true),
                ),
            },
            ConfiguredArm {
                arm: Arm::Dense,
                session: single(Session::builder().sparse_dataflow(false)),
            },
            ConfiguredArm {
                arm: Arm::FreshScratch,
                session: single(Session::builder().reuse_scratch(false)),
            },
            ConfiguredArm {
                arm: Arm::FreshFrontend,
                session: single(Session::builder().reuse_frontend(false)),
            },
            ConfiguredArm {
                arm: Arm::TightRegs,
                // Spill-heavy on purpose; the generous round bound keeps
                // the allocator's convergence assert (a safety valve, not
                // an oracle) out of the picture.
                session: single(Session::builder().regalloc(Some(AllocOptions {
                    num_regs: 8,
                    max_rounds: 512,
                }))),
            },
        ];
        let workers = vec![
            ConfiguredArm {
                arm: Arm::Workers2,
                session: Session::builder().threads(Some(2)).max_steps(steps).build(),
            },
            ConfiguredArm {
                arm: Arm::Workers8,
                session: Session::builder().threads(Some(8)).max_steps(steps).build(),
            },
        ];
        let classic_pipeline = single(Session::builder());
        Oracle {
            reference,
            behavioral,
            workers,
            classic_pipeline,
            options,
        }
    }

    /// VM options every arm executes under.
    fn vm(&self) -> VmOptions {
        self.reference.vm_options().clone()
    }

    /// Runs the full matrix over one program.
    pub fn check(&self, src: &str) -> Verdict {
        // Reference arm: compile…
        let ref_comp = match self.reference.compile(src) {
            Ok(c) => c,
            Err(e) => {
                return Verdict::Fail(Failure {
                    arm: Arm::Reference,
                    kind: FailureKind::CompileError,
                    detail: e.to_string(),
                })
            }
        };
        // …and execute. A reference fault means the program is not a
        // usable witness (a reducer candidate broke an invariant).
        let reference = match ref_comp.run(self.vm()) {
            Ok(o) => o,
            Err(e) => return Verdict::Skip(format!("reference arm fault: {e}")),
        };
        let base_traffic = reference.counts.loads + reference.counts.stores;

        // Front-end differential: both front ends must agree on
        // acceptance (the reference arm already compiled via the
        // interned front end).
        let classic_module = match minic::classic::compile(src) {
            Ok(m) => m,
            Err(e) => {
                return Verdict::Fail(Failure {
                    arm: Arm::Classic,
                    kind: FailureKind::CompileError,
                    detail: format!("classic front end rejected what the interned one took: {e}"),
                })
            }
        };

        // Behavioral arms.
        let mut default_il = String::new();
        let mut default_counts = ExecCounts::default();
        for ca in &self.behavioral {
            let mut comp = match ca.session.compile(src) {
                Ok(c) => c,
                Err(e) => {
                    return Verdict::Fail(Failure {
                        arm: ca.arm,
                        kind: FailureKind::CompileError,
                        detail: e.to_string(),
                    })
                }
            };
            if ca.arm == Arm::Default && self.options.sabotage {
                sabotage_first_iconst(&mut comp.module);
            }
            let out = match comp.run(self.vm()) {
                Ok(o) => o,
                Err(e) => {
                    return Verdict::Fail(Failure {
                        arm: ca.arm,
                        kind: FailureKind::VmFault,
                        detail: e.to_string(),
                    })
                }
            };
            if let Some(f) = compare_behavior(ca.arm, &reference, &out) {
                return Verdict::Fail(f);
            }
            // The paper's invariant, on the promoting arms only; spills
            // excuse extra traffic (the `water` anomaly).
            if matches!(ca.arm, Arm::Default | Arm::Pointer) {
                let spilled = comp.report.alloc.as_ref().map_or(0, |a| a.spilled);
                if spilled == 0 {
                    let lifts =
                        comp.report.promotion.scalar.lifts + comp.report.promotion.pointer.lifts;
                    let allowance = (lifts as u64 + 1) * (reference.counts.control + 1);
                    let traffic = out.counts.loads + out.counts.stores;
                    if traffic > base_traffic + allowance {
                        return Verdict::Fail(Failure {
                            arm: ca.arm,
                            kind: FailureKind::TrafficRegression,
                            detail: format!(
                                "optimized loads+stores {traffic} > reference {base_traffic} \
                                 + allowance {allowance} (lifts {lifts}, no spills)"
                            ),
                        });
                    }
                }
            }
            if ca.arm == Arm::Default {
                default_il = comp.module.to_string();
                default_counts = out.counts;
            }
        }

        // Worker determinism arms: same config as Default, more threads;
        // IL and dynamic counts must be bit-identical.
        for ca in &self.workers {
            let comp = match ca.session.compile(src) {
                Ok(c) => c,
                Err(e) => {
                    return Verdict::Fail(Failure {
                        arm: ca.arm,
                        kind: FailureKind::CompileError,
                        detail: e.to_string(),
                    })
                }
            };
            if comp.module.to_string() != default_il {
                return Verdict::Fail(Failure {
                    arm: ca.arm,
                    kind: FailureKind::Determinism,
                    detail: "optimized IL differs from the single-threaded arm".into(),
                });
            }
            let out = match comp.run(self.vm()) {
                Ok(o) => o,
                Err(e) => {
                    return Verdict::Fail(Failure {
                        arm: ca.arm,
                        kind: FailureKind::VmFault,
                        detail: e.to_string(),
                    })
                }
            };
            if out.counts != default_counts {
                return Verdict::Fail(Failure {
                    arm: ca.arm,
                    kind: FailureKind::Determinism,
                    detail: format!(
                        "dynamic counts differ from the single-threaded arm: {:?} vs {:?}",
                        out.counts, default_counts
                    ),
                });
            }
            if let Some(f) = compare_behavior(ca.arm, &reference, &out) {
                return Verdict::Fail(f);
            }
        }

        // Classic-front-end arm: same pipeline, different parser/lowerer.
        let mut classic_module = classic_module;
        match self.classic_pipeline.optimize(&mut classic_module) {
            Ok(_) => {}
            Err(e) => {
                return Verdict::Fail(Failure {
                    arm: Arm::Classic,
                    kind: FailureKind::CompileError,
                    detail: e.to_string(),
                })
            }
        }
        let out = match Vm::run_main(&classic_module, self.vm()) {
            Ok(o) => o,
            Err(e) => {
                return Verdict::Fail(Failure {
                    arm: Arm::Classic,
                    kind: FailureKind::VmFault,
                    detail: e.to_string(),
                })
            }
        };
        if let Some(f) = compare_behavior(Arm::Classic, &reference, &out) {
            return Verdict::Fail(f);
        }

        Verdict::Pass
    }
}

/// The incremental-recompilation differential: one persistent
/// `incremental(true)` session accumulates its per-function cache across
/// every program and edit it sees, and each compile is compared — IL
/// text, rendered remarks, trace JSONL, program output, exit code, and
/// full dynamic [`ExecCounts`] — against a fresh cold [`Session`] of the
/// same configuration. Any divergence means cached splicing changed
/// observable behavior, which the design forbids.
pub struct EditOracle {
    warm: Session,
    max_steps: u64,
}

impl EditOracle {
    /// Builds the persistent warm session.
    pub fn new(options: &OracleOptions) -> EditOracle {
        EditOracle {
            warm: Session::builder()
                .threads(Some(1))
                .trace(true)
                .incremental(true)
                .max_steps(options.max_steps)
                .build(),
            max_steps: options.max_steps,
        }
    }

    /// Compiles `src` on the warm incremental session and on a fresh cold
    /// session, and demands byte-identical artifacts and dynamic counts.
    pub fn check(&self, src: &str) -> Verdict {
        let fail = |kind, detail: String| {
            Verdict::Fail(Failure {
                arm: Arm::Incremental,
                kind,
                detail,
            })
        };
        let cold = Session::builder()
            .threads(Some(1))
            .trace(true)
            .max_steps(self.max_steps)
            .build();
        let warm = match self.warm.compile(src) {
            Ok(c) => c,
            Err(e) => {
                return fail(
                    FailureKind::CompileError,
                    format!("incremental session rejected the program: {e}"),
                )
            }
        };
        let cold = match cold.compile(src) {
            Ok(c) => c,
            Err(e) => {
                return fail(
                    FailureKind::CompileError,
                    format!("cold session rejected what the warm one took: {e}"),
                )
            }
        };
        if warm.module.to_string() != cold.module.to_string() {
            return fail(
                FailureKind::Determinism,
                "optimized IL differs from a cold compile".into(),
            );
        }
        if warm.remarks_text() != cold.remarks_text() {
            return fail(
                FailureKind::Determinism,
                "rendered remarks differ from a cold compile".into(),
            );
        }
        if warm.trace_jsonl() != cold.trace_jsonl() {
            return fail(
                FailureKind::Determinism,
                "trace JSONL differs from a cold compile".into(),
            );
        }
        let vm = VmOptions {
            max_steps: self.max_steps,
            ..VmOptions::default()
        };
        let wout = match warm.run(vm.clone()) {
            Ok(o) => o,
            Err(e) => return Verdict::Skip(format!("warm arm fault: {e}")),
        };
        let cout = match cold.run(vm) {
            Ok(o) => o,
            Err(e) => {
                return fail(
                    FailureKind::VmFault,
                    format!("cold run faulted where the warm run finished: {e}"),
                )
            }
        };
        if let Some(f) = compare_behavior(Arm::Incremental, &cout, &wout) {
            return Verdict::Fail(f);
        }
        // The VM's dynamic operation counts (loads, stores, everything)
        // must match exactly: splicing a cached body may not change what
        // the program executes.
        if wout.counts != cout.counts {
            return fail(
                FailureKind::Determinism,
                format!(
                    "dynamic counts differ from a cold compile: {:?} vs {:?}",
                    wout.counts, cout.counts
                ),
            );
        }
        Verdict::Pass
    }
}

/// Output/exit-code equality against the reference arm.
fn compare_behavior(arm: Arm, reference: &Outcome, out: &Outcome) -> Option<Failure> {
    if out.output != reference.output {
        let at = reference
            .output
            .iter()
            .zip(out.output.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| reference.output.len().min(out.output.len()));
        let expected = reference
            .output
            .get(at)
            .map(String::as_str)
            .unwrap_or("<end>");
        let got = out.output.get(at).map(String::as_str).unwrap_or("<end>");
        return Some(Failure {
            arm,
            kind: FailureKind::OutputMismatch,
            detail: format!(
                "line {at}: expected {expected:?}, got {got:?} \
                 ({} vs {} lines total)",
                reference.output.len(),
                out.output.len()
            ),
        });
    }
    if out.exit_code != reference.exit_code {
        return Some(Failure {
            arm,
            kind: FailureKind::ExitMismatch,
            detail: format!(
                "expected exit {}, got {}",
                reference.exit_code, out.exit_code
            ),
        });
    }
    None
}

/// Bumps the first `iconst` in `main` — a valid-IL miscompile used to
/// prove the oracle and reducer catch real divergence. Returns whether a
/// constant was found.
fn sabotage_first_iconst(module: &mut ir::Module) -> bool {
    let Some(main) = module.main() else {
        return false;
    };
    for block in &mut module.funcs[main.0 as usize].blocks {
        for instr in &mut block.instrs {
            if let Instr::IConst { value, .. } = instr {
                *value = value.wrapping_add(1);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_program_passes_every_arm() {
        let oracle = Oracle::new(OracleOptions::default());
        let verdict = oracle.check(
            r#"
int g = 2;
int main() {
    int i;
    for (i = 0; i < 50; i++) g += i;
    print_int(g);
    return 0;
}
"#,
        );
        assert_eq!(verdict, Verdict::Pass);
    }

    #[test]
    fn sabotage_is_caught_as_default_arm_divergence() {
        let oracle = Oracle::new(OracleOptions {
            sabotage: true,
            ..OracleOptions::default()
        });
        let verdict = oracle.check(
            r#"
int main() {
    print_int(41);
    return 0;
}
"#,
        );
        let failure = verdict.failure().expect("sabotage must be caught");
        assert_eq!(failure.arm, Arm::Default);
        assert_eq!(failure.kind, FailureKind::OutputMismatch);
    }

    #[test]
    fn edit_oracle_matches_cold_across_mutation_sequences() {
        let edit_oracle = EditOracle::new(&OracleOptions::default());
        for seed in [3u64, 11] {
            let mut program = crate::generate(seed);
            assert_eq!(edit_oracle.check(&program.render()), Verdict::Pass);
            for e in 1..=3u64 {
                program = crate::mutate(&program, seed.wrapping_add(e));
                assert_eq!(
                    edit_oracle.check(&program.render()),
                    Verdict::Pass,
                    "seed {seed} edit {e}"
                );
            }
        }
    }

    #[test]
    fn edit_campaign_checks_mutants() {
        let summary = crate::run_campaign(&crate::CampaignOptions {
            count: 3,
            edits: 2,
            ..crate::CampaignOptions::default()
        })
        .unwrap();
        assert_eq!(summary.checked, 3);
        assert_eq!(
            summary.edits_checked,
            2 * summary.passed,
            "every passing seed gets its full edit sequence"
        );
        assert!(summary.failures.is_empty(), "{:?}", summary.failures);
    }

    #[test]
    fn compile_error_is_attributed_to_the_reference_arm() {
        let oracle = Oracle::new(OracleOptions::default());
        let verdict = oracle.check("int main( {");
        let failure = verdict.failure().expect("syntax error must fail");
        assert_eq!(failure.arm, Arm::Reference);
        assert_eq!(failure.kind, FailureKind::CompileError);
    }
}
