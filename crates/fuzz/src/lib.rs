//! Differential fuzzing for the register-promotion pipeline.
//!
//! Three pieces, all deterministic and dependency-free:
//!
//! * [`gen`] — a grammar-directed generator mapping a seed to a closed,
//!   trap-free, terminating MiniC program that leans on the constructs
//!   promotion cares about: globals, pointers, address-taken locals,
//!   arrays, loops, and calls.
//! * [`oracle`] — a differential execution oracle running each program
//!   through the full configuration matrix (unoptimized reference,
//!   default pipeline, points-to + pointer promotion, dense dataflow,
//!   fresh scratch/front end, the classic front end, worker counts 2
//!   and 8, and a register-starved allocator) and comparing outputs,
//!   exit codes, dynamic memory traffic, and IL determinism.
//! * [`mod@reduce`] — a delta-debugging reducer that shrinks a failing
//!   program at statement/expression granularity while the same oracle
//!   violation persists.
//!
//! [`run_campaign`] glues them together and [`corpus`] persists failures
//! as JSONL plus standalone `.c` reproducers. The `promo-fuzz` binary is
//! a thin CLI over this module; CI runs it as a bounded smoke test.

#![warn(missing_docs)]

pub mod ast;
pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod reduce;
pub mod rng;
mod visit;

pub use gen::{generate, mutate, ConstructStats};
pub use oracle::{Arm, EditOracle, Failure, FailureKind, Oracle, OracleOptions, Verdict};
pub use reduce::{reduce, Reduction};

use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Campaign configuration (mirrors the `promo-fuzz` CLI).
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// First seed; program `i` uses `seed + i`.
    pub seed: u64,
    /// Number of programs to check.
    pub count: u64,
    /// Optional wall-clock cap; the campaign stops cleanly when it hits
    /// the budget.
    pub time_budget: Option<Duration>,
    /// Shrink every failure with the reducer.
    pub reduce: bool,
    /// Where to write the failure corpus (`None` keeps it in memory).
    pub out_dir: Option<PathBuf>,
    /// Oracle knobs (step budget, sabotage test hook).
    pub oracle: OracleOptions,
    /// Edit mode: after each passing seed, apply this many cumulative
    /// single-function mutations and hold every mutant to (a) the full
    /// oracle matrix and (b) the [`EditOracle`] — a persistent
    /// incremental session whose output must stay byte-identical to a
    /// cold compile. `0` disables edit mode.
    pub edits: u64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            seed: 0,
            count: 100,
            time_budget: None,
            reduce: false,
            out_dir: None,
            oracle: OracleOptions::default(),
            edits: 0,
        }
    }
}

/// One failing program from a campaign.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// Seed that produced it.
    pub seed: u64,
    /// The oracle violation.
    pub failure: Failure,
    /// The generated source.
    pub source: String,
    /// The reduced source, when reduction ran.
    pub reduced_source: Option<String>,
    /// Statement count of the reduced program.
    pub reduced_statements: Option<usize>,
}

/// What a campaign did.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Programs checked (≤ `count` under a time budget).
    pub checked: u64,
    /// Programs on which every arm agreed.
    pub passed: u64,
    /// Programs whose reference arm faulted (not usable witnesses).
    pub skipped: u64,
    /// Mutated programs checked in edit mode (matrix + incremental
    /// differential each).
    pub edits_checked: u64,
    /// Oracle violations.
    pub failures: Vec<CampaignFailure>,
    /// Aggregate construct coverage across all generated programs.
    pub stats: ConstructStats,
}

/// Runs a fuzzing campaign: generate, check, optionally reduce, and
/// persist failures. Deterministic for a fixed `(seed, count)` — a time
/// budget only ever truncates the sequence.
///
/// # Errors
///
/// Returns an error only for corpus I/O failures; oracle violations are
/// reported in the summary, not as errors.
pub fn run_campaign(options: &CampaignOptions) -> io::Result<CampaignSummary> {
    let oracle = Oracle::new(options.oracle.clone());
    let edit_oracle = (options.edits > 0).then(|| EditOracle::new(&options.oracle));
    let started = Instant::now();
    let mut summary = CampaignSummary::default();
    for i in 0..options.count {
        if let Some(budget) = options.time_budget {
            if started.elapsed() >= budget {
                break;
            }
        }
        let seed = options.seed.wrapping_add(i);
        let program = generate(seed);
        summary.stats.merge(&ConstructStats::of(&program));
        let source = program.render();
        summary.checked += 1;
        match oracle.check(&source) {
            Verdict::Pass => {
                summary.passed += 1;
                if let Some(edit_oracle) = &edit_oracle {
                    run_edits(options, &oracle, edit_oracle, seed, program, &mut summary)?;
                }
            }
            Verdict::Skip(_) => summary.skipped += 1,
            Verdict::Fail(failure) => {
                let reduction = if options.reduce {
                    Some(reduce(&program, &failure, &oracle))
                } else {
                    None
                };
                if let Some(dir) = &options.out_dir {
                    corpus::write_failure(dir, seed, &source, &failure, reduction.as_ref())?;
                }
                summary.failures.push(CampaignFailure {
                    seed,
                    failure,
                    source,
                    reduced_source: reduction.as_ref().map(|r| r.program.render()),
                    reduced_statements: reduction.as_ref().map(|r| r.to_statements),
                });
            }
        }
    }
    Ok(summary)
}

/// Edit mode for one passing seed: warm the incremental session's cache
/// with the base program, then apply `options.edits` cumulative
/// single-function mutations, holding each mutant to the full oracle
/// matrix *and* the incremental-vs-cold differential. Mutant failures
/// are recorded without reduction (the warm cache's state is part of the
/// reproduction recipe, which the reducer cannot replay).
fn run_edits(
    options: &CampaignOptions,
    oracle: &Oracle,
    edit_oracle: &EditOracle,
    seed: u64,
    program: ast::Program,
    summary: &mut CampaignSummary,
) -> io::Result<()> {
    let record =
        |summary: &mut CampaignSummary, edit: u64, src: &str, failure: Failure| -> io::Result<()> {
            if let Some(dir) = &options.out_dir {
                // A distinct pseudo-seed keyed by the edit index keeps
                // mutant reproducers from clobbering the base seed's file.
                corpus::write_failure(dir, seed ^ (0xED17 << 44) ^ edit, src, &failure, None)?;
            }
            summary.failures.push(CampaignFailure {
                seed,
                failure,
                source: src.to_string(),
                reduced_source: None,
                reduced_statements: None,
            });
            Ok(())
        };
    if let Verdict::Fail(f) = edit_oracle.check(&program.render()) {
        record(summary, 0, &program.render(), f)?;
    }
    let mut current = program;
    for e in 1..=options.edits {
        current = mutate(&current, seed.wrapping_add(e));
        let src = current.render();
        summary.edits_checked += 1;
        match oracle.check(&src) {
            Verdict::Pass => {}
            Verdict::Skip(_) => summary.skipped += 1,
            Verdict::Fail(f) => record(summary, e, &src, f)?,
        }
        if let Verdict::Fail(f) = edit_oracle.check(&src) {
            record(summary, e, &src, f)?;
        }
    }
    Ok(())
}
