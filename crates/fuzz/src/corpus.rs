//! Failure corpus: JSONL records plus standalone `.c` reproducers.
//!
//! Every oracle violation lands in `<out>/failures.jsonl` (one record
//! per line, written with the bench harness's shared JSON helpers) next
//! to `seed-<hex>.c` (the generated program) and, when reduction ran,
//! `seed-<hex>.min.c` (the shrunk reproducer). The `.c` files are
//! self-contained MiniC programs: replay any of them with
//! `promo-fuzz --replay <file>`.

use crate::oracle::Failure;
use crate::reduce::Reduction;
use bench_harness::json::JsonObject;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes one failure (and its optional reduction) into `dir`. Returns
/// the path of the reproducer written.
pub fn write_failure(
    dir: &Path,
    seed: u64,
    source: &str,
    failure: &Failure,
    reduction: Option<&Reduction>,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let repro = dir.join(format!("seed-{seed:#018x}.c"));
    fs::write(&repro, source)?;
    let mut record = JsonObject::new();
    record.field_str("seed", &format!("{seed:#x}"));
    record.field_str("arm", failure.arm.label());
    record.field_str("kind", failure.kind.label());
    record.field_str("detail", &failure.detail);
    record.field_str("file", &repro.file_name().unwrap().to_string_lossy());
    if let Some(r) = reduction {
        let min = dir.join(format!("seed-{seed:#018x}.min.c"));
        fs::write(&min, r.program.render())?;
        record.field_str("reduced_file", &min.file_name().unwrap().to_string_lossy());
        record.field_u64("statements_before", r.from_statements as u64);
        record.field_u64("statements_after", r.to_statements as u64);
        record.field_u64("oracle_runs", r.oracle_runs as u64);
    }
    let line = record.finish();
    let jsonl = dir.join("failures.jsonl");
    let mut existing = fs::read_to_string(&jsonl).unwrap_or_default();
    existing.push_str(&line);
    existing.push('\n');
    fs::write(&jsonl, existing)?;
    Ok(repro)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{Arm, FailureKind};

    #[test]
    fn records_are_one_json_line_each() {
        let dir = std::env::temp_dir().join(format!("promo-fuzz-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let failure = Failure {
            arm: Arm::Default,
            kind: FailureKind::OutputMismatch,
            detail: "line 0: expected \"1\", got \"2\"".into(),
        };
        write_failure(&dir, 0xBEEF, "int main() { return 0; }\n", &failure, None).unwrap();
        write_failure(&dir, 0xF00D, "int main() { return 1; }\n", &failure, None).unwrap();
        let jsonl = fs::read_to_string(dir.join("failures.jsonl")).unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seed\":\"0xbeef\""));
        assert!(lines[0].contains("\"kind\":\"output-mismatch\""));
        assert!(lines[0].contains("\\\"1\\\""), "detail quotes escaped");
        assert!(dir.join("seed-0x000000000000beef.c").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
