//! Delta-debugging reduction of oracle failures.
//!
//! Works on the generator's AST, never on source text, so every
//! candidate is syntactically well-formed and the oracle budget is spent
//! on semantics. A candidate is *interesting* when the oracle still
//! fails with the **same arm and failure kind** as the original — which
//! automatically rejects candidates whose reduction broke a generator
//! safety invariant (those skip or fail differently, e.g. with a
//! reference-arm fault or a compile error).
//!
//! Passes, applied to fixpoint in a fixed order (the reducer is fully
//! deterministic):
//!
//! 1. **statement deletion** — ddmin-style chunked removal over every
//!    block, halving chunk sizes down to single statements;
//! 2. **block unwrapping** — replace an `if` by its then-branch, a loop
//!    by its body;
//! 3. **expression simplification** — replace any subexpression with
//!    `0`, `1`, or (for binary nodes) one of its operands;
//! 4. **declaration cleanup** — drop unused globals and helpers.

use crate::ast::{Expr, Program, Stmt};
use crate::oracle::{Failure, Oracle, Verdict};
use crate::visit;

/// Outcome of a reduction run.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The smallest interesting program found.
    pub program: Program,
    /// The failure it still produces.
    pub failure: Failure,
    /// Statement count before reduction.
    pub from_statements: usize,
    /// Statement count after.
    pub to_statements: usize,
    /// Oracle invocations spent.
    pub oracle_runs: usize,
}

struct Reducer<'a> {
    oracle: &'a Oracle,
    arm_kind: (crate::oracle::Arm, crate::oracle::FailureKind),
    runs: usize,
}

impl<'a> Reducer<'a> {
    /// Whether this candidate still exhibits the original failure.
    fn interesting(&mut self, candidate: &Program) -> Option<Failure> {
        self.runs += 1;
        match self.oracle.check(&candidate.render()) {
            Verdict::Fail(f) if (f.arm, f.kind) == self.arm_kind => Some(f),
            _ => None,
        }
    }

    /// ddmin-style chunked statement deletion over every block.
    fn delete_statements(&mut self, p: &mut Program) -> bool {
        let mut changed = false;
        // Block indices shift as statements disappear, so walk by index
        // and re-query the count every iteration.
        let mut block = 0;
        while block < visit::block_count(p) {
            let len = visit::with_block_mut(p, block, |b| b.len()).unwrap_or(0);
            let mut chunk = len.max(1);
            while chunk >= 1 {
                let mut start = 0;
                loop {
                    let len = visit::with_block_mut(p, block, |b| b.len()).unwrap_or(0);
                    if start >= len {
                        break;
                    }
                    let end = (start + chunk).min(len);
                    let mut candidate = p.clone();
                    visit::with_block_mut(&mut candidate, block, |b| {
                        b.drain(start..end);
                    });
                    if self.interesting(&candidate).is_some() {
                        *p = candidate;
                        changed = true;
                        // Same start index now holds the next chunk.
                    } else {
                        start = end;
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
            block += 1;
        }
        changed
    }

    /// Replace an `if` by its then-branch / a loop by its body.
    fn unwrap_blocks(&mut self, p: &mut Program) -> bool {
        let mut changed = false;
        let mut block = 0;
        while block < visit::block_count(p) {
            let mut i = 0;
            while i < visit::with_block_mut(p, block, |b| b.len()).unwrap_or(0) {
                let replacement = visit::with_block_mut(p, block, |b| match &b[i] {
                    Stmt::If { then_s, .. } if !then_s.is_empty() => Some(then_s.clone()),
                    Stmt::Loop { body, .. } if !body.is_empty() => Some(body.clone()),
                    _ => None,
                })
                .flatten();
                if let Some(stmts) = replacement {
                    let mut candidate = p.clone();
                    visit::with_block_mut(&mut candidate, block, |b| {
                        b.splice(i..=i, stmts);
                    });
                    if self.interesting(&candidate).is_some() {
                        *p = candidate;
                        changed = true;
                        continue; // re-examine index i (now the first unwrapped stmt)
                    }
                }
                i += 1;
            }
            block += 1;
        }
        changed
    }

    /// Replace subexpressions with simpler forms.
    fn simplify_exprs(&mut self, p: &mut Program) -> bool {
        let mut changed = false;
        let mut idx = 0;
        while idx < visit::expr_count(p) {
            let current = visit::with_expr_mut(p, idx, |e| e.clone()).expect("index in range");
            let mut candidates: Vec<Expr> = Vec::new();
            match &current {
                Expr::Const(0) => {}
                Expr::Const(1) => candidates.push(Expr::Const(0)),
                Expr::Bin(_, a, b) => {
                    candidates.push(Expr::Const(0));
                    candidates.push(Expr::Const(1));
                    candidates.push((**a).clone());
                    candidates.push((**b).clone());
                }
                _ => {
                    candidates.push(Expr::Const(0));
                    candidates.push(Expr::Const(1));
                }
            }
            let mut replaced = false;
            for cand in candidates {
                if cand == current {
                    continue;
                }
                let mut candidate = p.clone();
                visit::with_expr_mut(&mut candidate, idx, |e| *e = cand);
                if self.interesting(&candidate).is_some() {
                    *p = candidate;
                    changed = true;
                    replaced = true;
                    break;
                }
            }
            // A successful replacement changes the tree under `idx`;
            // re-examining the same index is sound (it now holds the
            // simpler node) and guarantees progress because candidates
            // strictly shrink.
            if !replaced {
                idx += 1;
            }
        }
        changed
    }

    /// Drop unused globals and helpers (oracle-gated: dropping a global
    /// also drops its epilogue print, which may be where the divergence
    /// shows).
    fn drop_unused_decls(&mut self, p: &mut Program) -> bool {
        let mut changed = false;
        let mut i = 0;
        while i < p.helpers.len() {
            if !visit::helper_called(p, i) {
                let mut candidate = p.clone();
                candidate.helpers.remove(i);
                if self.interesting(&candidate).is_some() {
                    *p = candidate;
                    changed = true;
                    continue;
                }
            }
            i += 1;
        }
        let mut i = 0;
        while i < p.globals.len() {
            if !visit::referenced_names(p).contains(p.globals[i].name()) {
                let mut candidate = p.clone();
                candidate.globals.remove(i);
                if self.interesting(&candidate).is_some() {
                    *p = candidate;
                    changed = true;
                    continue;
                }
            }
            i += 1;
        }
        changed
    }
}

/// Shrinks `program` while the oracle keeps failing with the same arm
/// and kind as `original`. Deterministic: identical inputs yield the
/// identical reduced program.
pub fn reduce(program: &Program, original: &Failure, oracle: &Oracle) -> Reduction {
    let mut r = Reducer {
        oracle,
        arm_kind: (original.arm, original.kind),
        runs: 0,
    };
    let mut p = program.clone();
    let from_statements = p.statement_count();
    let mut failure = original.clone();
    loop {
        let mut changed = false;
        changed |= r.delete_statements(&mut p);
        changed |= r.unwrap_blocks(&mut p);
        changed |= r.simplify_exprs(&mut p);
        changed |= r.drop_unused_decls(&mut p);
        if !changed {
            break;
        }
    }
    if let Some(f) = r.interesting(&p) {
        failure = f;
    }
    let to_statements = p.statement_count();
    Reduction {
        program: p,
        failure,
        from_statements,
        to_statements,
        oracle_runs: r.runs,
    }
}
