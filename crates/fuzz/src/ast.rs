//! The generator's program representation.
//!
//! The fuzzer does not emit source text directly: it builds a small
//! structured AST first, renders it to MiniC, and hands the *AST* (not
//! the text) to the delta-debugging reducer. Reduction at the AST level
//! guarantees every candidate is syntactically well-formed, so the
//! reducer spends its oracle budget on semantics, not parse errors.
//!
//! Safety invariants are established **by construction** at generation
//! time (see `gen.rs`): denominators are forced odd with `| 1`, shift
//! amounts are masked, array indices are masked to the power-of-two
//! length, every local is initialized before use, and loops count a
//! dedicated variable the body never assigns. Reduction may *break*
//! these invariants (e.g. simplify a `| 1` away), but a candidate that
//! faults in the unoptimized reference arm is rejected by the
//! interestingness test, so the invariants re-establish themselves.

use std::collections::BTreeSet;
use std::fmt::Write;

/// Binary operators the generator emits (all total under the VM's
/// wrapping/masking semantics except `Div`/`Rem`, which the generator
/// guards with an `| 1` denominator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (wrapping).
    Add,
    /// `-` (wrapping).
    Sub,
    /// `*` (wrapping).
    Mul,
    /// `/` — generator guarantees a nonzero denominator.
    Div,
    /// `%` — generator guarantees a nonzero denominator.
    Rem,
    /// `&`.
    BitAnd,
    /// `|`.
    BitOr,
    /// `^`.
    BitXor,
    /// `<<` — generator masks the shift amount.
    Shl,
    /// `>>` — generator masks the shift amount.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&&` (short-circuit).
    LAnd,
    /// `||` (short-circuit).
    LOr,
}

impl BinOp {
    /// Source token for the operator.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::LAnd => "&&",
            BinOp::LOr => "||",
        }
    }
}

/// Integer-valued expression. Pointer values never appear here — pointer
/// creation and reseating are dedicated statement forms, so every `Expr`
/// is type-correct by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Scalar variable read (local, parameter, or global).
    Var(String),
    /// `*p` — read through an `int *` variable.
    Deref(String),
    /// `a[e]` — array element read (index pre-masked by the generator).
    Index(String, Box<Expr>),
    /// `-e`.
    Neg(Box<Expr>),
    /// `!e`.
    Not(Box<Expr>),
    /// `e1 op e2` — every subexpression fully parenthesized on render.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `f(args…)` — helper call; helpers all return `int`.
    Call(String, Vec<Expr>),
}

/// Assignable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// `*p`.
    Deref(String),
    /// `a[e]`.
    Index(String, Expr),
}

/// Loop flavor. All three render with a dedicated counter the loop body
/// never assigns, so termination is structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `for (c = 0; c < bound; c++) { … }` — the only kind that may
    /// contain `continue` (its step still runs).
    For,
    /// `c = 0; while (c < bound) { …; c = c + 1; }`.
    While,
    /// `c = 0; do { …; c = c + 1; } while (c < bound);`.
    DoWhile,
}

/// Statement. Declarations may appear anywhere in a block (the MiniC
/// grammar allows it), which lets the reducer delete them independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `int name = init;`
    DeclInt {
        /// Variable name.
        name: String,
        /// Initializer (locals are never left uninitialized).
        init: Expr,
    },
    /// `int *name = &target;` — `target` is a scalar local or global, so
    /// this is where address-taken locals come from.
    DeclPtr {
        /// Pointer name.
        name: String,
        /// The variable whose address is taken.
        target: String,
    },
    /// `int *name = malloc(len);` — cells are uninitialized until the
    /// generator's paired init loop runs.
    DeclMalloc {
        /// Pointer name.
        name: String,
        /// Cell count (a power of two, so reads can be masked).
        len: usize,
    },
    /// `int name[len];` — local array; the generator always pairs it with
    /// an init loop before any read.
    DeclArr {
        /// Array name.
        name: String,
        /// Element count (a power of two).
        len: usize,
    },
    /// `lhs = rhs;` or `lhs op= rhs;`
    Assign {
        /// Compound operator (`+=`/`-=`/`*=`), or plain `=` when `None`.
        op: Option<BinOp>,
        /// Destination.
        lhs: LValue,
        /// Source expression.
        rhs: Expr,
    },
    /// `name++;` / `name--;`
    Incr {
        /// Scalar variable to bump.
        name: String,
        /// `--` when true.
        down: bool,
    },
    /// `name = &target;` — reseat an existing pointer.
    PtrAssign {
        /// Pointer name.
        name: String,
        /// New target variable.
        target: String,
    },
    /// `if (cond) { … } else { … }` (else omitted when empty).
    If {
        /// Condition.
        cond: Expr,
        /// Then block.
        then_s: Vec<Stmt>,
        /// Else block.
        else_s: Vec<Stmt>,
    },
    /// A counted loop; see [`LoopKind`] for the rendered shapes.
    Loop {
        /// Rendered shape.
        kind: LoopKind,
        /// Counter variable (declared automatically at function entry;
        /// generated bodies never assign it).
        counter: String,
        /// Iteration count.
        bound: i64,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `print_int(e);` — the observability points the oracle compares.
    Print(Expr),
    /// `e;` — expression statement (used for bare helper calls).
    ExprStmt(Expr),
    /// `break;` (generated only inside loops).
    Break,
    /// `continue;` (generated only inside `for` loops).
    Continue,
}

/// A global variable. Globals are zero-initialized by the VM, so scalars
/// and arrays are always safe to read; pointers must be assigned before
/// their first dereference (the generator seats them at the top of
/// `main`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Global {
    /// `int name = init;`
    Scalar {
        /// Name.
        name: String,
        /// Initializer.
        init: i64,
    },
    /// `int name[len];` (zero-initialized).
    Array {
        /// Name.
        name: String,
        /// Element count (a power of two).
        len: usize,
    },
    /// `int *name;` (null until seated in `main`).
    Ptr {
        /// Name.
        name: String,
    },
}

impl Global {
    /// The global's name.
    pub fn name(&self) -> &str {
        match self {
            Global::Scalar { name, .. } | Global::Array { name, .. } | Global::Ptr { name } => name,
        }
    }
}

/// A helper function. All helpers take `int` parameters and return
/// `int`. A recursive helper's first parameter is its depth counter: the
/// rendered body short-circuits at `<= 0` and recurses with `- 1`, so
/// call depth is bounded by the (small, constant) first argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Helper {
    /// Function name.
    pub name: String,
    /// Parameter names (all `int`).
    pub params: Vec<String>,
    /// Whether the rendered body self-recurses on `params[0] - 1`.
    pub recursive: bool,
    /// Body statements (before the synthesized returns).
    pub body: Vec<Stmt>,
    /// Return expression.
    pub ret: Expr,
}

/// A whole generated program: globals, helper functions, and the body of
/// `main`. Rendering appends an epilogue that prints every scalar global
/// and `return 0`, so silent state divergence still reaches the oracle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variables.
    pub globals: Vec<Global>,
    /// Helper functions (a helper only calls helpers with a smaller
    /// index, plus itself when recursive, so the call graph cannot loop
    /// unboundedly).
    pub helpers: Vec<Helper>,
    /// `main`'s statements.
    pub main_body: Vec<Stmt>,
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Const(v) => {
            // i64::MIN has no literal form; `(-MAX - 1)` avoids it.
            if *v < 0 {
                let _ = write!(out, "(0 - {})", (*v as i128).unsigned_abs());
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::Var(n) => out.push_str(n),
        Expr::Deref(n) => {
            let _ = write!(out, "(*{n})");
        }
        Expr::Index(n, i) => {
            let _ = write!(out, "{n}[");
            render_expr(i, out);
            out.push(']');
        }
        Expr::Neg(e) => {
            out.push_str("(-");
            render_expr(e, out);
            out.push(')');
        }
        Expr::Not(e) => {
            out.push_str("(!");
            render_expr(e, out);
            out.push(')');
        }
        Expr::Bin(op, a, b) => {
            out.push('(');
            render_expr(a, out);
            let _ = write!(out, " {} ", op.token());
            render_expr(b, out);
            out.push(')');
        }
        Expr::Call(f, args) => {
            let _ = write!(out, "{f}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(a, out);
            }
            out.push(')');
        }
    }
}

fn render_lvalue(lv: &LValue, out: &mut String) {
    match lv {
        LValue::Var(n) => out.push_str(n),
        LValue::Deref(n) => {
            let _ = write!(out, "*{n}");
        }
        LValue::Index(n, i) => {
            let _ = write!(out, "{n}[");
            render_expr(i, out);
            out.push(']');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn render_block(stmts: &[Stmt], depth: usize, out: &mut String) {
    for s in stmts {
        render_stmt(s, depth, out);
    }
}

fn render_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(out, depth);
    match s {
        Stmt::DeclInt { name, init } => {
            let _ = write!(out, "int {name} = ");
            render_expr(init, out);
            out.push_str(";\n");
        }
        Stmt::DeclPtr { name, target } => {
            let _ = writeln!(out, "int *{name} = &{target};");
        }
        Stmt::DeclMalloc { name, len } => {
            let _ = writeln!(out, "int *{name} = malloc({len});");
        }
        Stmt::DeclArr { name, len } => {
            let _ = writeln!(out, "int {name}[{len}];");
        }
        Stmt::Assign { op, lhs, rhs } => {
            render_lvalue(lhs, out);
            match op {
                Some(op) => {
                    let _ = write!(out, " {}= ", op.token());
                }
                None => out.push_str(" = "),
            }
            render_expr(rhs, out);
            out.push_str(";\n");
        }
        Stmt::Incr { name, down } => {
            let _ = writeln!(out, "{name}{};", if *down { "--" } else { "++" });
        }
        Stmt::PtrAssign { name, target } => {
            let _ = writeln!(out, "{name} = &{target};");
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            out.push_str("if (");
            render_expr(cond, out);
            out.push_str(") {\n");
            render_block(then_s, depth + 1, out);
            indent(out, depth);
            if else_s.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                render_block(else_s, depth + 1, out);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::Loop {
            kind,
            counter,
            bound,
            body,
        } => match kind {
            LoopKind::For => {
                let _ = write!(
                    out,
                    "for ({counter} = 0; {counter} < {bound}; {counter}++) {{\n"
                );
                render_block(body, depth + 1, out);
                indent(out, depth);
                out.push_str("}\n");
            }
            LoopKind::While => {
                let _ = writeln!(out, "{counter} = 0;");
                indent(out, depth);
                let _ = write!(out, "while ({counter} < {bound}) {{\n");
                render_block(body, depth + 1, out);
                indent(out, depth + 1);
                let _ = writeln!(out, "{counter} = {counter} + 1;");
                indent(out, depth);
                out.push_str("}\n");
            }
            LoopKind::DoWhile => {
                let _ = writeln!(out, "{counter} = 0;");
                indent(out, depth);
                out.push_str("do {\n");
                render_block(body, depth + 1, out);
                indent(out, depth + 1);
                let _ = writeln!(out, "{counter} = {counter} + 1;");
                indent(out, depth);
                let _ = writeln!(out, "}} while ({counter} < {bound});");
            }
        },
        Stmt::Print(e) => {
            out.push_str("print_int(");
            render_expr(e, out);
            out.push_str(");\n");
        }
        Stmt::ExprStmt(e) => {
            render_expr(e, out);
            out.push_str(";\n");
        }
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
    }
}

/// Collects the loop counters used anywhere in a statement tree, in
/// first-appearance order (they are declared once at function entry).
fn collect_counters(stmts: &[Stmt], seen: &mut BTreeSet<String>, order: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Loop { counter, body, .. } => {
                if seen.insert(counter.clone()) {
                    order.push(counter.clone());
                }
                collect_counters(body, seen, order);
            }
            Stmt::If { then_s, else_s, .. } => {
                collect_counters(then_s, seen, order);
                collect_counters(else_s, seen, order);
            }
            _ => {}
        }
    }
}

fn render_body_with_counters(stmts: &[Stmt], depth: usize, out: &mut String) {
    let mut seen = BTreeSet::new();
    let mut order = Vec::new();
    collect_counters(stmts, &mut seen, &mut order);
    for c in &order {
        indent(out, depth);
        let _ = writeln!(out, "int {c} = 0;");
    }
    render_block(stmts, depth, out);
}

impl Program {
    /// Renders the program as MiniC source.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for g in &self.globals {
            match g {
                Global::Scalar { name, init } => {
                    let _ = writeln!(out, "int {name} = {init};");
                }
                Global::Array { name, len } => {
                    let _ = writeln!(out, "int {name}[{len}];");
                }
                Global::Ptr { name } => {
                    let _ = writeln!(out, "int *{name};");
                }
            }
        }
        for h in &self.helpers {
            out.push('\n');
            let params: Vec<String> = h.params.iter().map(|p| format!("int {p}")).collect();
            let _ = writeln!(out, "int {}({}) {{", h.name, params.join(", "));
            if h.recursive {
                let depth_param = &h.params[0];
                indent(&mut out, 1);
                let _ = writeln!(out, "if ({depth_param} <= 0) {{");
                indent(&mut out, 2);
                out.push_str("return ");
                render_expr(&h.ret, &mut out);
                out.push_str(";\n");
                indent(&mut out, 1);
                out.push_str("}\n");
            }
            render_body_with_counters(&h.body, 1, &mut out);
            indent(&mut out, 1);
            if h.recursive {
                let rec_args: Vec<String> = h
                    .params
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        if i == 0 {
                            format!("{p} - 1")
                        } else {
                            p.clone()
                        }
                    })
                    .collect();
                let _ = write!(out, "return {}({}) + (", h.name, rec_args.join(", "));
                render_expr(&h.ret, &mut out);
                out.push_str(");\n");
            } else {
                out.push_str("return ");
                render_expr(&h.ret, &mut out);
                out.push_str(";\n");
            }
            out.push_str("}\n");
        }
        out.push_str("\nint main() {\n");
        render_body_with_counters(&self.main_body, 1, &mut out);
        // Epilogue: make final global state observable no matter what the
        // generated body chose to print.
        for g in &self.globals {
            if let Global::Scalar { name, .. } = g {
                indent(&mut out, 1);
                let _ = writeln!(out, "print_int({name});");
            }
        }
        indent(&mut out, 1);
        out.push_str("return 0;\n}\n");
        out
    }

    /// Number of [`Stmt`] nodes in the program (main + helper bodies,
    /// nested blocks included). The reducer's size metric.
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If { then_s, else_s, .. } => 1 + count(then_s) + count(else_s),
                    Stmt::Loop { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.main_body) + self.helpers.iter().map(|h| count(&h.body)).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_small_program() {
        let p = Program {
            globals: vec![
                Global::Scalar {
                    name: "g0".into(),
                    init: 3,
                },
                Global::Ptr { name: "p0".into() },
            ],
            helpers: vec![Helper {
                name: "f0".into(),
                params: vec!["h0n".into()],
                recursive: true,
                body: vec![],
                ret: Expr::Var("h0n".into()),
            }],
            main_body: vec![
                Stmt::PtrAssign {
                    name: "p0".into(),
                    target: "g0".into(),
                },
                Stmt::Loop {
                    kind: LoopKind::For,
                    counter: "c0".into(),
                    bound: 5,
                    body: vec![Stmt::Assign {
                        op: Some(BinOp::Add),
                        lhs: LValue::Deref("p0".into()),
                        rhs: Expr::Const(2),
                    }],
                },
                Stmt::Print(Expr::Call("f0".into(), vec![Expr::Const(3)])),
            ],
        };
        let src = p.render();
        assert!(src.contains("int *p0;"));
        assert!(src.contains("int c0 = 0;"));
        assert!(src.contains("for (c0 = 0; c0 < 5; c0++) {"));
        assert!(src.contains("*p0 += 2;"));
        assert!(src.contains("if (h0n <= 0) {"));
        assert!(src.contains("return f0(h0n - 1) + (h0n);"));
        assert!(src.contains("print_int(g0);"));
        assert_eq!(p.statement_count(), 4);
    }

    #[test]
    fn negative_constants_render_without_unary_minus_literals() {
        let p = Program {
            globals: vec![],
            helpers: vec![],
            main_body: vec![Stmt::Print(Expr::Const(-7))],
        };
        assert!(p.render().contains("print_int((0 - 7));"));
    }
}
